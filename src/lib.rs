//! Workspace root for the Qurk reproduction (*Human-powered Sorts and
//! Joins*, Marcus et al., VLDB 2011).
//!
//! This crate exists to host the repo-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the engine itself
//! lives in the member crates:
//!
//! * [`qurk`] — query language, planner, operators, `Session` API.
//! * [`qurk_crowd`] — the simulated marketplace.
//! * [`qurk_combine`] — answer combiners (MajorityVote, QualityAdjust).
//! * [`qurk_metrics`] — τ, κ, regression and summary statistics.
//! * [`qurk_data`] — the paper's synthetic datasets.

pub use qurk;
pub use qurk_combine;
pub use qurk_crowd;
pub use qurk_data;
pub use qurk_metrics;
