//! Source-level invariant checks over the workspace tree.
//!
//! Five rules, all motivated by the multi-tenant service:
//!
//! * **marketplace-isolation** — production code must speak
//!   [`CrowdBackend`], never the concrete `Marketplace`. Allowed:
//!   `crates/crowd` itself, test/bench/example code, and the two
//!   boundary files that adapt the marketplace to the trait.
//! * **ops-unwrap** — no `unwrap()`/`expect(` in
//!   `crates/core/src/ops/` production code unless the call site
//!   carries a `// lint:allow(unwrap): <why>` marker (same line or the
//!   line above) justifying why it cannot fire.
//! * **interior-mutability** — no `Rc<`, `RefCell<`, `thread_local!`
//!   or `static mut` in `crates/core`/`crates/crowd` production code,
//!   keeping every backend `Send + Sync`-eligible (the compile-time
//!   probe test in `crates/core/tests/send_sync.rs` asserts the
//!   bounds themselves).
//! * **service-blocking** — inside `crates/core/src/service/` and
//!   `crates/serve/src/` (the listener binary), no `thread::sleep`
//!   (the scheduler owns time; sleeping stalls every tenant's
//!   barrier, and a listener must block in `accept()`/frame reads,
//!   never poll), and no `.lock().unwrap()` / `.read().unwrap()` /
//!   `.write().unwrap()` without a `// lint:allow(lock-poison): <why>`
//!   marker — a poisoned lock would otherwise cascade one query's
//!   panic into the whole service (prefer
//!   `unwrap_or_else(PoisonError::into_inner)`). In `crates/serve/src/`
//!   additionally no unbounded reads (`.read_to_end(` /
//!   `.read_to_string(`): every byte off the wire must go through
//!   `read_frame`, whose bodies are bounded by `MAX_FRAME_BYTES` — a
//!   hostile client must cost at most one frame of memory.
//! * **durable-fs** — no direct filesystem *writes* (`fs::write`,
//!   `fs::rename`, `File::create`, `OpenOptions::new`, …) in
//!   production code outside `crates/core/src/store/`. Durability has
//!   exactly one implementation — the checksummed, crash-tested log in
//!   `qurk::store` — and a stray ad-hoc write would silently escape
//!   its torn-tail recovery and fault-injection coverage. Reading
//!   (`File::open`, `fs::read*`) is unrestricted.
//! * **hot-clone** — in modules that declare `// lint:hot-path` (the
//!   data-layout pass's interning, columnar, EM, metrics, and
//!   candidate-generation modules), no `.clone()` in production code
//!   unless the call site carries a `// lint:allow(hot-clone): <why>`
//!   marker. Those modules were flattened specifically to kill
//!   steady-state allocation; an unexamined clone is how the layout
//!   work silently rots.
//!
//! The scanner is line-based and deliberately simple: comment lines
//! are skipped, and `#[cfg(test)]`-annotated blocks are excluded by
//! brace tracking. That is precise enough for these invariants and
//! keeps xtask dependency-free.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    pub file: PathBuf,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Files where `Marketplace` may appear outside `crates/crowd`: the
/// trait-impl boundary, the deprecated pre-trait shim, and the
/// qurk-serve composition root (which constructs the concrete world
/// the server runs against).
const MARKETPLACE_ALLOWLIST: &[&str] = &[
    "crates/core/src/backend.rs",
    "crates/core/src/exec.rs",
    "crates/serve/src/main.rs",
];

/// Marker that justifies an `unwrap()`/`expect(` in ops code.
const UNWRAP_MARKER: &str = "lint:allow(unwrap)";

/// Marker that justifies a poisoning lock acquisition in service code.
const LOCK_MARKER: &str = "lint:allow(lock-poison)";

/// Files carrying this marker opt in to the hot-clone rule.
const HOT_PATH_MARKER: &str = "lint:hot-path";

/// Marker that justifies a `.clone()` inside a hot-path module.
const HOT_CLONE_MARKER: &str = "lint:allow(hot-clone)";

/// Run every rule over the workspace at `root`.
pub fn lint_workspace(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in rust_sources(&root.join("crates")) {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if !is_production_path(&rel_str) {
            continue;
        }
        let Ok(text) = fs::read_to_string(&file) else {
            continue;
        };
        let lines = production_lines(&text);
        check_marketplace(&rel, &rel_str, &lines, &mut out);
        check_ops_unwrap(&rel, &rel_str, &text, &lines, &mut out);
        check_interior_mutability(&rel, &rel_str, &lines, &mut out);
        check_service_blocking(&rel, &rel_str, &text, &lines, &mut out);
        check_durable_fs(&rel, &rel_str, &lines, &mut out);
        check_hot_clone(&rel, &text, &lines, &mut out);
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// All `.rs` files under `dir`, recursively.
fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            out.extend(rust_sources(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

/// Production code only: skip test/bench/example trees and xtask
/// itself (whose fixtures contain deliberate violations).
fn is_production_path(rel: &str) -> bool {
    let excluded_dirs = ["/tests/", "/benches/", "/examples/", "/fixtures/"];
    if excluded_dirs.iter().any(|d| rel.contains(d)) {
        return false;
    }
    // The bench crate is measurement code — test-adjacent by design.
    if rel.starts_with("crates/bench/") || rel.starts_with("crates/xtask/") {
        return false;
    }
    rel.starts_with("crates/")
}

/// (1-based line number, text) for every line outside comments and
/// `#[cfg(test)]` blocks.
fn production_lines(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    // Depth of the brace-delimited block introduced right after a
    // `#[cfg(test)]` attribute; `None` when not inside one.
    let mut skip_depth: Option<i64> = None;
    let mut pending_test_attr = false;
    for (i, raw) in text.lines().enumerate() {
        let line = strip_line_comment(raw);
        let trimmed = line.trim();
        if let Some(depth) = &mut skip_depth {
            *depth += brace_delta(trimmed);
            if *depth <= 0 {
                skip_depth = None;
            }
            continue;
        }
        if trimmed.starts_with("#[cfg(test)]") {
            pending_test_attr = true;
            continue;
        }
        if pending_test_attr {
            // The attribute applies to the next item; skip its block
            // (or just the line, for single-line items).
            let depth = brace_delta(trimmed);
            if depth > 0 {
                skip_depth = Some(depth);
            }
            pending_test_attr = trimmed.starts_with('#'); // attr stack
            continue;
        }
        if trimmed.is_empty() {
            continue;
        }
        out.push((i + 1, line.to_owned()));
    }
    out
}

/// Net `{`/`}` balance of a line, ignoring braces inside string and
/// char literals.
fn brace_delta(line: &str) -> i64 {
    let mut delta = 0i64;
    let mut in_str = false;
    let mut prev_escape = false;
    for c in line.chars() {
        if in_str {
            if prev_escape {
                prev_escape = false;
            } else if c == '\\' {
                prev_escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => delta += 1,
            '}' => delta -= 1,
            _ => {}
        }
    }
    delta
}

/// Drop a trailing `// ...` comment (string-literal aware).
fn strip_line_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut prev_escape = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            if prev_escape {
                prev_escape = false;
            } else if c == b'\\' {
                prev_escape = true;
            } else if c == b'"' {
                in_str = false;
            }
        } else if c == b'"' {
            in_str = true;
        } else if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
            return &line[..i];
        }
        i += 1;
    }
    line
}

fn check_marketplace(file: &Path, rel: &str, lines: &[(usize, String)], out: &mut Vec<Violation>) {
    if rel.starts_with("crates/crowd/") || MARKETPLACE_ALLOWLIST.contains(&rel) {
        return;
    }
    for (n, line) in lines {
        if line.contains("Marketplace") {
            out.push(Violation {
                rule: "marketplace-isolation",
                file: file.to_path_buf(),
                line: *n,
                message: "`Marketplace` referenced outside crates/crowd and the \
                          backend boundary; depend on the CrowdBackend trait instead"
                    .to_owned(),
            });
        }
    }
}

fn check_ops_unwrap(
    file: &Path,
    rel: &str,
    raw_text: &str,
    lines: &[(usize, String)],
    out: &mut Vec<Violation>,
) {
    if !rel.starts_with("crates/core/src/ops/") {
        return;
    }
    let raw_lines: Vec<&str> = raw_text.lines().collect();
    // Markers live in comments, which production_lines strips —
    // consult the raw line and its predecessor.
    let has_marker = |n: usize| {
        n >= 1
            && raw_lines
                .get(n - 1)
                .is_some_and(|l| l.contains(UNWRAP_MARKER))
    };
    for (n, line) in lines {
        if !(line.contains(".unwrap()") || line.contains(".expect(")) {
            continue;
        }
        if has_marker(*n) || has_marker(n.saturating_sub(1)) {
            continue;
        }
        out.push(Violation {
            rule: "ops-unwrap",
            file: file.to_path_buf(),
            line: *n,
            message: format!(
                "unwrap()/expect( in ops production code without a \
                 `// {UNWRAP_MARKER}: <why>` justification"
            ),
        });
    }
}

fn check_interior_mutability(
    file: &Path,
    rel: &str,
    lines: &[(usize, String)],
    out: &mut Vec<Violation>,
) {
    if !(rel.starts_with("crates/core/src/") || rel.starts_with("crates/crowd/src/")) {
        return;
    }
    const BANNED: &[(&str, &str)] = &[
        (
            "Rc<",
            "Rc is not Send; use Arc if shared ownership is needed",
        ),
        (
            "RefCell<",
            "RefCell is not Sync; use Mutex/RwLock or restructure",
        ),
        (
            "thread_local!",
            "thread-locals break backend portability across executors",
        ),
        (
            "static mut",
            "static mut is unsound under Send+Sync; use atomics or locks",
        ),
    ];
    for (n, line) in lines {
        for (pat, why) in BANNED {
            if line.contains(pat) {
                out.push(Violation {
                    rule: "interior-mutability",
                    file: file.to_path_buf(),
                    line: *n,
                    message: format!("`{pat}` in backend-reachable code: {why}"),
                });
            }
        }
    }
}

fn check_service_blocking(
    file: &Path,
    rel: &str,
    raw_text: &str,
    lines: &[(usize, String)],
    out: &mut Vec<Violation>,
) {
    let service_core = rel.starts_with("crates/core/src/service/");
    let serve_bin = rel.starts_with("crates/serve/src/");
    if !service_core && !serve_bin {
        return;
    }
    let raw_lines: Vec<&str> = raw_text.lines().collect();
    let has_marker = |n: usize| {
        n >= 1
            && raw_lines
                .get(n - 1)
                .is_some_and(|l| l.contains(LOCK_MARKER))
    };
    const POISONING_LOCKS: &[&str] = &[".lock().unwrap()", ".read().unwrap()", ".write().unwrap()"];
    const UNBOUNDED_READS: &[&str] = &[".read_to_end(", ".read_to_string("];
    for (n, line) in lines {
        if line.contains("thread::sleep") {
            out.push(Violation {
                rule: "service-blocking",
                file: file.to_path_buf(),
                line: *n,
                message: "`thread::sleep` in service code: the scheduler owns virtual \
                          time (and a listener blocks in accept()/frame reads, never \
                          polls); a sleeping thread stalls every tenant's barrier"
                    .to_owned(),
            });
        }
        if POISONING_LOCKS.iter().any(|p| line.contains(p))
            && !has_marker(*n)
            && !has_marker(n.saturating_sub(1))
        {
            out.push(Violation {
                rule: "service-blocking",
                file: file.to_path_buf(),
                line: *n,
                message: format!(
                    "poisoning lock acquisition in service code without a \
                     `// {LOCK_MARKER}: <why>` justification; one panicked query \
                     would poison the shared market for every tenant — prefer \
                     `unwrap_or_else(PoisonError::into_inner)`"
                ),
            });
        }
        if serve_bin {
            if let Some(pat) = UNBOUNDED_READS.iter().find(|p| line.contains(*p)) {
                out.push(Violation {
                    rule: "service-blocking",
                    file: file.to_path_buf(),
                    line: *n,
                    message: format!(
                        "`{pat}` in the listener binary: wire input must go \
                         through read_frame, whose bodies are bounded by \
                         MAX_FRAME_BYTES — an unbounded read lets one client \
                         exhaust memory"
                    ),
                });
            }
        }
    }
}

/// Filesystem-write APIs that only `crates/core/src/store/` may call.
/// Read-side APIs (`File::open`, `fs::read_to_string`, …) are fine —
/// qurk-serve reads script files, for instance.
fn check_durable_fs(file: &Path, rel: &str, lines: &[(usize, String)], out: &mut Vec<Violation>) {
    if rel.starts_with("crates/core/src/store/") {
        return;
    }
    const WRITE_APIS: &[&str] = &[
        "fs::write(",
        "fs::rename(",
        "fs::remove_file(",
        "fs::remove_dir",
        "fs::create_dir",
        "fs::copy(",
        "fs::set_permissions(",
        "File::create(",
        "OpenOptions::new(",
    ];
    for (n, line) in lines {
        if let Some(pat) = WRITE_APIS.iter().find(|p| line.contains(*p)) {
            out.push(Violation {
                rule: "durable-fs",
                file: file.to_path_buf(),
                line: *n,
                message: format!(
                    "`{pat}` outside crates/core/src/store/: all durable writes \
                     must go through the crash-tested qurk::store log, not \
                     ad-hoc filesystem calls"
                ),
            });
        }
    }
}

/// `.clone()` is banned in modules that declared themselves hot paths
/// (via `// lint:hot-path`, anywhere in the file) unless the call site
/// carries a justification marker.
fn check_hot_clone(
    file: &Path,
    raw_text: &str,
    lines: &[(usize, String)],
    out: &mut Vec<Violation>,
) {
    if !raw_text.contains(HOT_PATH_MARKER) {
        return;
    }
    let raw_lines: Vec<&str> = raw_text.lines().collect();
    // Markers live in comments, which production_lines strips —
    // consult the raw line and its predecessor.
    let has_marker = |n: usize| {
        n >= 1
            && raw_lines
                .get(n - 1)
                .is_some_and(|l| l.contains(HOT_CLONE_MARKER))
    };
    for (n, line) in lines {
        if !line.contains(".clone()") {
            continue;
        }
        if has_marker(*n) || has_marker(n.saturating_sub(1)) {
            continue;
        }
        out.push(Violation {
            rule: "hot-clone",
            file: file.to_path_buf(),
            line: *n,
            message: format!(
                ".clone() in a `// {HOT_PATH_MARKER}` module without a \
                 `// {HOT_CLONE_MARKER}: <why>` justification; hot paths \
                 reuse flat scratch buffers instead of allocating"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
    }

    fn real_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf()
    }

    #[test]
    fn real_tree_is_clean() {
        let violations = lint_workspace(&real_root());
        assert!(
            violations.is_empty(),
            "workspace should lint clean:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn seeded_fixture_violations_fire() {
        let violations = lint_workspace(&fixture_root());
        let rules: Vec<&str> = violations.iter().map(|v| v.rule).collect();
        assert!(
            rules.contains(&"marketplace-isolation"),
            "expected marketplace violation, got {violations:?}"
        );
        assert!(
            rules.contains(&"ops-unwrap"),
            "expected unwrap violation, got {violations:?}"
        );
        assert!(
            rules.contains(&"interior-mutability"),
            "expected interior-mutability violation, got {violations:?}"
        );
        assert!(
            rules.contains(&"service-blocking"),
            "expected service-blocking violation, got {violations:?}"
        );
        assert!(
            rules.contains(&"durable-fs"),
            "expected durable-fs violation, got {violations:?}"
        );
        assert!(
            rules.contains(&"hot-clone"),
            "expected hot-clone violation, got {violations:?}"
        );
    }

    #[test]
    fn fixture_allowances_are_respected() {
        let violations = lint_workspace(&fixture_root());
        // Each rule fires a known number of times: the marked
        // unwraps, the cfg(test) Marketplace use, and the
        // commented-out mentions must all be skipped.
        // service-blocking fires three times: the service fixture's
        // sleep plus the listener fixture's sleep-poll and
        // read_to_end.
        for (rule, expected) in [
            ("ops-unwrap", 1),
            ("marketplace-isolation", 1),
            ("interior-mutability", 1),
            ("service-blocking", 3),
            ("durable-fs", 1),
            ("hot-clone", 1),
        ] {
            let count = violations.iter().filter(|v| v.rule == rule).count();
            assert_eq!(count, expected, "rule {rule}: {violations:?}");
        }
    }

    #[test]
    fn comment_and_test_stripping() {
        let lines = production_lines(
            "fn a() {}\n\
             // Marketplace in a comment\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 use qurk_crowd::Marketplace;\n\
             }\n\
             fn b() {}\n",
        );
        let text: Vec<&str> = lines.iter().map(|(_, l)| l.as_str()).collect();
        assert_eq!(text, vec!["fn a() {}", "fn b() {}"]);
    }

    #[test]
    fn brace_delta_ignores_strings() {
        assert_eq!(brace_delta("mod t { \"}\" }"), 0);
        assert_eq!(brace_delta("fn f() {"), 1);
        assert_eq!(brace_delta("}"), -1);
    }
}
