//! Workspace maintenance tasks. Currently one: `lint`, the invariant
//! linter CI runs on every push (`cargo run -p xtask -- lint`).

mod lint;

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- lint [--root <dir>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {}
        _ => return usage(),
    }
    let root = match (args.next().as_deref(), args.next()) {
        (Some("--root"), Some(dir)) => PathBuf::from(dir),
        (None, _) => workspace_root(),
        _ => return usage(),
    };

    let violations = lint::lint_workspace(&root);
    if violations.is_empty() {
        println!("xtask lint: ok");
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("{v}");
    }
    eprintln!("xtask lint: {} violation(s)", violations.len());
    ExitCode::FAILURE
}

/// The workspace root, resolved from this crate's manifest dir so the
/// linter works from any cwd.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/xtask has a workspace two levels up")
        .to_path_buf()
}
