//! Seeded fixture for the `service-blocking` rule's listener arm:
//! exactly TWO violations must fire in this file — the sleep-based
//! accept poll and the unbounded `read_to_end` — while the comment
//! mentions and the cfg(test) block are allowed.

use std::io::Read;
use std::net::TcpStream;
use std::time::Duration;

pub fn polls_instead_of_blocking() {
    // VIOLATION: a listener blocks in accept()/frame reads; sleeping
    // in a poll loop adds latency for every client.
    std::thread::sleep(Duration::from_millis(50));
}

pub fn slurps_the_whole_stream(conn: &mut TcpStream) -> Vec<u8> {
    let mut buf = Vec::new();
    // VIOLATION: unbounded read off the wire; read_frame bounds every
    // body by MAX_FRAME_BYTES.
    let _ = conn.read_to_end(&mut buf);
    buf
}

// .read_to_end( in a comment is fine, as is thread::sleep here.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_slurp_their_own_streams() {
        let mut data: &[u8] = b"3\nRUN";
        let mut buf = String::new();
        let _ = data.read_to_string(&mut buf);
        std::thread::sleep(Duration::from_millis(1));
    }
}
