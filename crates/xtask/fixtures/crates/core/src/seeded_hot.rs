//! Lint fixture: deliberately violates the hot-clone rule once.
//! Not compiled — scanned by `lint::tests` only.
// lint:hot-path

fn unmarked() -> Vec<u32> {
    let v: Vec<u32> = vec![1, 2, 3];
    v.clone()
}

fn marked() -> Vec<u32> {
    let v: Vec<u32> = vec![1, 2, 3];
    // lint:allow(hot-clone): should-not-fire — one-time setup copy
    v.clone()
}

fn marked_inline() -> Vec<u32> {
    let v: Vec<u32> = vec![1, 2, 3];
    v.clone() // lint:allow(hot-clone): should-not-fire — one-time setup copy
}

// A clone mentioned in a comment must not fire: v.clone()

#[cfg(test)]
mod tests {
    #[test]
    fn clone_in_tests_is_fine() {
        let v: Vec<u32> = vec![1];
        let _ = v.clone();
    }
}
