//! Lint fixture: filesystem writes *inside* the store module are the
//! sanctioned durability path and must not fire durable-fs.
//! Not compiled — scanned by `lint::tests` only.

fn rewrite_segment(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("compact.tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

fn append_segment(path: &std::path::Path) -> std::io::Result<std::fs::File> {
    std::fs::OpenOptions::new().append(true).create(true).open(path)
}
