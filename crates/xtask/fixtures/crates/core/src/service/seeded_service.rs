//! Seeded fixture for the `service-blocking` rule: exactly ONE
//! violation must fire in this file (the bare `thread::sleep`); the
//! marked lock, the cfg(test) block and the comment mentions are all
//! allowed.

use std::sync::Mutex;
use std::time::Duration;

pub fn stalls_every_tenant() {
    // VIOLATION: sleeping on a query thread blocks the rendezvous.
    std::thread::sleep(Duration::from_millis(5));
}

pub fn marked_lock_is_allowed(m: &Mutex<u32>) -> u32 {
    // lint:allow(lock-poison): fixture demonstrates the marker form.
    *m.lock().unwrap()
}

// thread::sleep in a comment is fine, as is .lock().unwrap() here.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleeps_in_tests_are_fine() {
        std::thread::sleep(std::time::Duration::from_millis(1));
        let m = Mutex::new(1);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
