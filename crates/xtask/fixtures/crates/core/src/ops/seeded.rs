//! Lint fixture: deliberately violates the ops-unwrap rule once.
//! Not compiled — scanned by `lint::tests` only.

fn unmarked() -> usize {
    let v: Option<usize> = Some(1);
    v.unwrap()
}

fn marked() -> usize {
    let v: Option<usize> = Some(1);
    // lint:allow(unwrap): should-not-fire — constructed Some above
    v.unwrap()
}

fn marked_inline() -> usize {
    let v: Option<usize> = Some(1);
    v.unwrap() // lint:allow(unwrap): should-not-fire — constructed Some above
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(3usize).unwrap();
    }
}
