//! Lint fixture: deliberately violates marketplace-isolation and
//! interior-mutability once each. Not compiled — scanned by
//! `lint::tests` only.

// A comment mentioning Marketplace should-not-fire.

use qurk_crowd::Marketplace;

struct Holder {
    cell: std::cell::RefCell<u32>,
}

// std::cell::RefCell in this comment should-not-fire.

#[cfg(test)]
mod tests {
    use qurk_crowd::Marketplace; // should-not-fire: test code
}
