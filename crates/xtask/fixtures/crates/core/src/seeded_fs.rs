//! Lint fixture: deliberately violates durable-fs exactly once.
//! Not compiled — scanned by `lint::tests` only.

// fs::write( in a comment should-not-fire.

fn sneaky_persist(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)
}

fn reading_is_fine(path: &std::path::Path) -> std::io::Result<String> {
    // File::open and fs::read_to_string are read-side: should-not-fire.
    let _ = std::fs::File::open(path)?;
    std::fs::read_to_string(path)
}

#[cfg(test)]
mod tests {
    fn test_writes_are_fine() {
        std::fs::write("scratch", b"x").unwrap(); // should-not-fire: test code
    }
}
