//! Golden wire-protocol edge cases: each malformed-input script must
//! produce byte-identical output to its committed expectation, and the
//! server must degrade the way `qurk::service::protocol::Frame`
//! documents — close on lost frame sync, keep serving after a
//! recoverable body error.

use std::process::{Command, Stdio};

fn data(name: &str) -> String {
    format!("{}/tests/data/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Run the binary over a script and byte-diff stdout against the
/// committed golden file. Returns stdout for extra semantic checks.
fn golden(stem: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_qurk-serve"))
        .args(["--script", &data(&format!("{stem}.qsh"))])
        .stdin(Stdio::null())
        .output()
        .expect("qurk-serve runs");
    assert!(
        out.status.success(),
        "{stem}: qurk-serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let expected = std::fs::read(data(&format!("{stem}.expected"))).expect("golden file exists");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&expected),
        "{stem}: output diverged from the committed golden transcript"
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A length prefix above `MAX_FRAME_BYTES` is a framing error, not an
/// allocation: the server answers ERR and closes (frame sync is lost,
/// so no BYE — nothing after the bad prefix is trusted).
#[test]
fn oversized_length_prefix_is_rejected_and_fatal() {
    let out = golden("wire_oversized");
    assert!(out.contains("ERR frame length 1048577 exceeds limit"));
    assert!(!out.contains("BYE"), "server must not keep parsing");
    assert!(
        !out.contains("never read"),
        "the oversized body must not be echoed or executed"
    );
}

/// A stream that ends inside a counted body is reported as truncation
/// and the connection closes without a BYE.
#[test]
fn truncated_body_is_reported_and_fatal() {
    let out = golden("wire_truncated");
    assert!(out.contains("ERR truncated frame: stream ended inside a 500-byte body"));
    assert!(!out.contains("BYE"));
}

/// A well-framed body that is not UTF-8 consumes exactly its counted
/// bytes: the server answers ERR and the *next* frames parse normally
/// (TENANT, STATS, QUIT all still work).
#[test]
fn invalid_utf8_body_is_recoverable() {
    let out = golden("wire_badutf8");
    assert!(out.contains("ERR frame body is not UTF-8"));
    assert!(
        out.contains("OK tenant alice"),
        "stream stays frame-aligned"
    );
    assert!(out.contains("STATS 0 posted"));
    assert!(out.contains("BYE"), "session still closes cleanly");
}

/// STATS interleaved between TENANT/QUERY/RUN frames reads consistent
/// totals at every point: zeros before anything runs, and shared-cache
/// dedup visible afterwards (bob's identical filter cost $0.000).
#[test]
fn interleaved_stats_frames_are_byte_stable() {
    let out = golden("wire_stats_interleaved");
    assert_eq!(
        out.matches("STATS 0 posted 0/0 cache $0.000").count(),
        2,
        "both pre-RUN STATS snapshots are zero"
    );
    assert!(out.contains("RESULT bob 5 rows $0.000 saved $0.150"));
    assert!(out.contains("STATS 2 posted 2/2 cache $0.150"));
}
