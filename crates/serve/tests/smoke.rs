//! Golden smoke test: a scripted three-tenant session produces
//! byte-identical output to the committed expectation. The CI smoke
//! job pipes the same script through the binary and diffs the same
//! file from the shell.

use std::process::{Command, Stdio};

const SCRIPT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/smoke_3tenants.qsh");
const EXPECTED: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/smoke_3tenants.expected"
);

#[test]
fn three_tenant_script_is_byte_stable() {
    let out = Command::new(env!("CARGO_BIN_EXE_qurk-serve"))
        .args(["--script", SCRIPT])
        .stdin(Stdio::null())
        .output()
        .expect("qurk-serve runs");
    assert!(
        out.status.success(),
        "qurk-serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let expected = std::fs::read(EXPECTED).expect("expected file exists");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&expected),
        "scripted session diverged from the committed golden output"
    );
}

#[test]
fn stdin_and_script_modes_agree() {
    let script = std::fs::read(SCRIPT).expect("script file exists");
    let mut child = Command::new(env!("CARGO_BIN_EXE_qurk-serve"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("qurk-serve runs");
    {
        use std::io::Write;
        child
            .stdin
            .take()
            .expect("piped stdin")
            .write_all(&script)
            .expect("script fits in the pipe");
    }
    let out = child.wait_with_output().expect("qurk-serve exits");
    assert!(out.status.success());
    let expected = std::fs::read(EXPECTED).expect("expected file exists");
    assert_eq!(out.stdout, expected);
}

#[test]
fn malformed_frames_get_err_responses_not_crashes() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_qurk-serve"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("qurk-serve runs");
    {
        use std::io::Write;
        let mut stdin = child.stdin.take().expect("piped stdin");
        // Unknown verb, unknown tenant, then a clean QUIT.
        for body in ["EXPLODE now", "QUERY ghost SELECT 1", "QUIT"] {
            write!(stdin, "{}\n{}", body.len(), body).unwrap();
        }
    }
    let out = child.wait_with_output().expect("qurk-serve exits");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ERR unknown request"));
    assert!(text.contains("ERR unknown tenant"));
    assert!(text.contains("BYE"));
}
