//! The golden three-tenant transcript, served over a **real TCP
//! socket** instead of stdin/stdout, must produce byte-identical
//! responses (the CI `serve-socket` job runs this test). Also covers
//! the listener lifecycle: sequential connections each get a fresh
//! deterministic world, and `SHUTDOWN` stops the accept loop.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const SCRIPT: &[u8] = include_bytes!("data/smoke_3tenants.qsh");
const EXPECTED: &str = include_str!("data/smoke_3tenants.expected");

/// Start `qurk-serve --listen 127.0.0.1:0` and return the child plus
/// the address it announced on stdout.
fn spawn_server(extra: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_qurk-serve"));
    cmd.args(["--seed", "42", "--listen", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    let mut child = cmd.spawn().expect("qurk-serve starts");
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().expect("stdout is piped"))
        .read_line(&mut line)
        .expect("server announces its address");
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
        .to_owned();
    (child, addr)
}

fn connect(addr: &str) -> TcpStream {
    let conn = TcpStream::connect(addr).expect("connect to qurk-serve");
    conn.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout set");
    conn
}

/// Drive one full protocol session and return every response byte.
fn drive(addr: &str, request_bytes: &[u8]) -> String {
    let mut conn = connect(addr);
    conn.write_all(request_bytes).expect("send script");
    let mut got = String::new();
    conn.read_to_string(&mut got)
        .expect("server closes the connection after QUIT/SHUTDOWN");
    got
}

#[test]
fn golden_transcript_over_a_real_socket() {
    let (mut child, addr) = spawn_server(&[]);

    // Two sequential connections: each gets a fresh world with the
    // same seed, so both transcripts are byte-identical to the
    // stdin-mode golden file.
    for round in 0..2 {
        let got = drive(&addr, SCRIPT);
        assert_eq!(
            got, EXPECTED,
            "socket transcript (connection {round}) diverged from the golden file"
        );
    }

    // SHUTDOWN ends its session and the listener.
    let bye = drive(&addr, b"8\nSHUTDOWN");
    assert_eq!(bye, "3\nBYE");
    let status = child.wait().expect("server exits after SHUTDOWN");
    assert!(status.success(), "server exit: {status:?}");
}

#[test]
fn max_conns_bounds_the_accept_loop() {
    let (mut child, addr) = spawn_server(&["--max-conns", "1"]);
    let bye = drive(&addr, b"4\nQUIT");
    assert_eq!(bye, "3\nBYE");
    let status = child.wait().expect("server exits at the connection cap");
    assert!(status.success(), "server exit: {status:?}");
}
