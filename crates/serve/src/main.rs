//! `qurk-serve` — a multi-tenant query server over one shared
//! simulated marketplace.
//!
//! Reads length-prefixed request frames (see `qurk::service::protocol`)
//! from a script file (`--script FILE`) or stdin, and writes one
//! response frame per request to stdout. Queries queued by several
//! tenants between `RUN` frames execute **concurrently** on the shared
//! marketplace clock; identical HIT specs across tenants are posted
//! (and paid for) once.
//!
//! ```text
//! qurk-serve [--seed N] [--script FILE] [--store FILE] [--crash POINT[:N]]
//! ```
//!
//! With `--store FILE` the service journals every paid round, tenant
//! ledger, and in-flight query checkpoint to a durable log (see
//! `qurk::store`); after a crash, restarting with the same `--store`
//! and sending `RECOVER` resumes unfinished queries from their
//! checkpoints, replaying already-paid work instead of re-posting it.
//! `--crash POINT[:N]` arms a deterministic fault (testing aid): the
//! process's store dies at the N-th occurrence of the named crash
//! point, exactly as in the fault-injection harness.
//!
//! The served world is fixed and deterministic for a given seed: a
//! `people` table (10 rows, `isTall` filter + `byHeight` rank) and a
//! `squares` table (6 squares from the paper's §4.2.1 dataset,
//! `byArea` rank), so scripted sessions can be diffed byte-for-byte
//! (the CI smoke job does exactly that).

use std::io::{self, BufRead, BufReader, Write};
use std::process::ExitCode;

use std::sync::Arc;

use qurk::service::protocol::{fmt_dollars, read_frame, write_frame, Frame, Request};
use qurk::service::QueryService;
use qurk::store::{CrashPoint, DurableStore, FaultPlan};
use qurk::{Catalog, ExecConfig, Relation, Schema, Value, ValueType};
use qurk_crowd::truth::{DimensionParams, PredicateTruth};
use qurk_crowd::{CrowdConfig, EntityId, GroundTruth, Marketplace};
use qurk_data::squares::{squares_dataset, AREA};

/// The served catalog + marketplace: `people` and `squares`.
fn world(seed: u64) -> (Catalog, Marketplace) {
    let mut gt = GroundTruth::new();

    // people: heights 0..10, the tallest five are "tall".
    gt.define_dimension("height", DimensionParams::crisp(0.02));
    let people = gt.new_items(10);
    for (i, &it) in people.iter().enumerate() {
        gt.set_predicate(
            it,
            "isTall",
            PredicateTruth {
                value: i >= 5,
                error_rate: 0.03,
            },
        );
        gt.set_score(it, "height", i as f64);
        gt.set_entity(it, EntityId(i as u64));
    }

    // squares: §4.2.1, six squares sorted by area.
    let squares = squares_dataset(&mut gt, 6);

    let market = Marketplace::new(&CrowdConfig::default().with_seed(seed), gt);

    let mut catalog = Catalog::new();
    let mut people_rel = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for (i, &it) in people.iter().enumerate() {
        people_rel
            .push(vec![Value::Int(i as i64), Value::Item(it)])
            .expect("people row matches schema");
    }
    catalog.register_table("people", people_rel);

    let mut squares_rel = Relation::new(Schema::new(&[
        ("label", ValueType::Text),
        ("img", ValueType::Item),
    ]));
    for (i, &it) in squares.items.iter().enumerate() {
        squares_rel
            .push(vec![
                Value::text(squares.labels[i].clone()),
                Value::Item(it),
            ])
            .expect("squares row matches schema");
    }
    catalog.register_table("squares", squares_rel);

    catalog
        .define_tasks(&format!(
            r#"TASK isTall(field) TYPE Filter:
                Prompt: "<img src='%s'> Tall?", tuple[field]
               TASK byHeight(field) TYPE Rank:
                OrderDimensionName: "height"
                Html: "<img src='%s'>", tuple[field]
               TASK byArea(field) TYPE Rank:
                OrderDimensionName: "{AREA}"
                Html: "<img src='%s'>", tuple[field]
            "#
        ))
        .expect("builtin task definitions parse");
    (catalog, market)
}

struct Args {
    seed: u64,
    script: Option<String>,
    store: Option<String>,
    crash: Option<FaultPlan>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 7,
        script: None,
        store: None,
        crash: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed requires a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--script" => {
                args.script = Some(it.next().ok_or("--script requires a path")?);
            }
            "--store" => {
                args.store = Some(it.next().ok_or("--store requires a path")?);
            }
            "--crash" => {
                let v = it.next().ok_or("--crash requires a crash point")?;
                let (point, occurrence) = match v.split_once(':') {
                    Some((p, n)) => (
                        p,
                        n.parse::<u32>()
                            .map_err(|_| format!("bad crash occurrence {n:?}"))?,
                    ),
                    None => (v.as_str(), 1),
                };
                let point = CrashPoint::parse(point)
                    .ok_or_else(|| format!("unknown crash point {point:?}"))?;
                args.crash = Some(FaultPlan::at(point).on_occurrence(occurrence));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: qurk-serve [--seed N] [--script FILE] [--store FILE] [--crash POINT[:N]]"
                        .to_owned(),
                );
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.crash.is_some() && args.store.is_none() {
        return Err("--crash requires --store".to_owned());
    }
    Ok(args)
}

fn serve<R: BufRead, W: Write>(
    seed: u64,
    store: Option<Arc<DurableStore>>,
    input: &mut R,
    out: &mut W,
) -> io::Result<()> {
    let (catalog, market) = world(seed);
    let mut svc = match store {
        Some(store) => QueryService::with_store(&catalog, market, ExecConfig::default(), store),
        None => QueryService::new(&catalog, market),
    };
    // Tenant names of queued queries, in submission order.
    let mut queued: Vec<String> = Vec::new();

    loop {
        let body = match read_frame(input)? {
            Frame::Body(body) => body,
            Frame::Malformed { reason, resync } => {
                write_frame(out, &format!("ERR {reason}"))?;
                if resync {
                    continue;
                }
                // Frame sync is lost; anything further would be
                // misparsed garbage.
                break;
            }
            Frame::Eof => break,
        };
        let request = match Request::parse(&body) {
            Ok(r) => r,
            Err(e) => {
                write_frame(out, &format!("ERR {e}"))?;
                continue;
            }
        };
        match request {
            Request::Tenant { name, budget } => {
                svc.register_tenant(&name, budget);
                match budget {
                    Some(b) => {
                        write_frame(out, &format!("OK tenant {name} budget {}", fmt_dollars(b)))?
                    }
                    None => write_frame(out, &format!("OK tenant {name}"))?,
                }
            }
            Request::Query { tenant, sql } => match svc.submit(&tenant, &sql) {
                Ok(n) => {
                    queued.push(tenant);
                    write_frame(out, &format!("OK queued #{n}"))?;
                }
                Err(e) => write_frame(out, &format!("ERR {e}"))?,
            },
            Request::Run => {
                let reports = svc.run_pending();
                let n = reports.len();
                for (tenant, report) in queued.drain(..).zip(reports) {
                    match report {
                        Ok(r) => {
                            let svc_stats = r.service.as_ref();
                            let saved = svc_stats.map(|s| s.saved_dollars).unwrap_or_default();
                            let resumed = if svc_stats.is_some_and(|s| s.resumed) {
                                " resumed"
                            } else {
                                ""
                            };
                            write_frame(
                                out,
                                &format!(
                                    "RESULT {tenant} {} rows {} saved {}{resumed}",
                                    r.relation.len(),
                                    fmt_dollars(r.cost_dollars),
                                    fmt_dollars(saved),
                                ),
                            )?;
                        }
                        Err(e) => write_frame(out, &format!("ERR {tenant}: {e}"))?,
                    }
                }
                write_frame(out, &format!("OK ran {n}"))?;
            }
            Request::Stats => {
                let (hits, misses) = svc.market().cache_stats();
                write_frame(
                    out,
                    &format!(
                        "STATS {} posted {hits}/{misses} cache {}",
                        svc.market().total_hits_posted(),
                        fmt_dollars(svc.market().total_spend()),
                    ),
                )?;
            }
            Request::Recover => {
                if svc.store().is_none() {
                    write_frame(out, "ERR RECOVER requires --store")?;
                } else {
                    // Recovered queries join the pending queue; remember
                    // their tenants so RUN's RESULT frames line up.
                    let resumed_tenants: Vec<String> = svc
                        .store()
                        .map(|s| s.live_checkpoints().into_iter().map(|c| c.tenant).collect())
                        .unwrap_or_default();
                    let n = svc.recover();
                    queued.extend(resumed_tenants.into_iter().take(n));
                    write_frame(out, &format!("OK recovered {n}"))?;
                }
            }
            Request::Quit => {
                write_frame(out, "BYE")?;
                break;
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let store = match &args.store {
        Some(path) => {
            let opened = match args.crash.clone() {
                Some(plan) => DurableStore::open_with_faults(path, plan),
                None => DurableStore::open(path),
            };
            match opened {
                Ok(store) => Some(Arc::new(store)),
                Err(e) => {
                    eprintln!("cannot open store {path:?}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let result = match &args.script {
        Some(path) => match std::fs::File::open(path) {
            Ok(f) => serve(args.seed, store, &mut BufReader::new(f), &mut out),
            Err(e) => {
                eprintln!("cannot open {path:?}: {e}");
                return ExitCode::from(2);
            }
        },
        None => serve(args.seed, store, &mut io::stdin().lock(), &mut out),
    };
    if let Err(e) = result {
        eprintln!("i/o error: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
