//! `qurk-serve` — a multi-tenant query server over one shared
//! simulated marketplace.
//!
//! Reads length-prefixed request frames (see `qurk::service::protocol`)
//! from a script file (`--script FILE`), stdin, or — with
//! `--listen ADDR` — a real TCP socket, and writes one response frame
//! per request. Queries queued by several tenants between `RUN`
//! frames execute **concurrently** on the shared marketplace clock
//! (real OS-thread parallelism for the machine phase); identical HIT
//! specs across tenants are posted (and paid for) once.
//!
//! ```text
//! qurk-serve [--seed N] [--script FILE] [--store FILE] [--crash POINT[:N]]
//!            [--listen ADDR] [--max-conns N] [--cache-max N]
//! ```
//!
//! `--listen ADDR` binds a TCP listener (use port 0 to auto-pick; the
//! resolved address is announced as `LISTENING <addr>` on stdout) and
//! serves one protocol session per connection, sequentially — see
//! `listener`. `QUIT` ends a connection; `SHUTDOWN` also stops the
//! listener. `--max-conns N` stops after N connections. `--cache-max
//! N` bounds the shared task cache to N recorded specs (LRU eviction
//! at batch boundaries; evicted specs are re-paid if re-posted).
//!
//! With `--store FILE` the service journals every paid round, tenant
//! ledger, and in-flight query checkpoint to a durable log (see
//! `qurk::store`); after a crash, restarting with the same `--store`
//! and sending `RECOVER` resumes unfinished queries from their
//! checkpoints, replaying already-paid work instead of re-posting it.
//! `--crash POINT[:N]` arms a deterministic fault (testing aid): the
//! process's store dies at the N-th occurrence of the named crash
//! point, exactly as in the fault-injection harness.
//!
//! The served world is fixed and deterministic for a given seed: a
//! `people` table (10 rows, `isTall` filter + `byHeight` rank) and a
//! `squares` table (6 squares from the paper's §4.2.1 dataset,
//! `byArea` rank), so scripted sessions can be diffed byte-for-byte
//! (the CI smoke job does exactly that).

mod listener;

use std::io::{self, BufRead, BufReader, Write};
use std::process::ExitCode;

use std::sync::Arc;

use qurk::service::protocol::{fmt_dollars, read_frame, write_frame, Frame, Request};
use qurk::service::QueryService;
use qurk::store::{CrashPoint, DurableStore, FaultPlan};
use qurk::{Catalog, ExecConfig, Relation, Schema, Value, ValueType};
use qurk_crowd::truth::{DimensionParams, PredicateTruth};
use qurk_crowd::{CrowdConfig, EntityId, GroundTruth, Marketplace};
use qurk_data::squares::{squares_dataset, AREA};

/// The served catalog + marketplace: `people` and `squares`.
fn world(seed: u64) -> (Catalog, Marketplace) {
    let mut gt = GroundTruth::new();

    // people: heights 0..10, the tallest five are "tall".
    gt.define_dimension("height", DimensionParams::crisp(0.02));
    let people = gt.new_items(10);
    for (i, &it) in people.iter().enumerate() {
        gt.set_predicate(
            it,
            "isTall",
            PredicateTruth {
                value: i >= 5,
                error_rate: 0.03,
            },
        );
        gt.set_score(it, "height", i as f64);
        gt.set_entity(it, EntityId(i as u64));
    }

    // squares: §4.2.1, six squares sorted by area.
    let squares = squares_dataset(&mut gt, 6);

    let market = Marketplace::new(&CrowdConfig::default().with_seed(seed), gt);

    let mut catalog = Catalog::new();
    let mut people_rel = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for (i, &it) in people.iter().enumerate() {
        people_rel
            .push(vec![Value::Int(i as i64), Value::Item(it)])
            .expect("people row matches schema");
    }
    catalog.register_table("people", people_rel);

    let mut squares_rel = Relation::new(Schema::new(&[
        ("label", ValueType::Text),
        ("img", ValueType::Item),
    ]));
    for (i, &it) in squares.items.iter().enumerate() {
        squares_rel
            .push(vec![
                Value::text(squares.labels[i].clone()),
                Value::Item(it),
            ])
            .expect("squares row matches schema");
    }
    catalog.register_table("squares", squares_rel);

    catalog
        .define_tasks(&format!(
            r#"TASK isTall(field) TYPE Filter:
                Prompt: "<img src='%s'> Tall?", tuple[field]
               TASK byHeight(field) TYPE Rank:
                OrderDimensionName: "height"
                Html: "<img src='%s'>", tuple[field]
               TASK byArea(field) TYPE Rank:
                OrderDimensionName: "{AREA}"
                Html: "<img src='%s'>", tuple[field]
            "#
        ))
        .expect("builtin task definitions parse");
    (catalog, market)
}

/// How a protocol session ended — the listener uses this to decide
/// whether to keep accepting connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// Input ran out (or frame sync was lost): the session is over.
    Eof,
    /// The client sent `QUIT`: close this session only.
    Quit,
    /// The client sent `SHUTDOWN`: close this session and stop the
    /// listener, if any.
    Shutdown,
}

struct Args {
    seed: u64,
    script: Option<String>,
    store: Option<String>,
    crash: Option<FaultPlan>,
    listen: Option<String>,
    max_conns: Option<usize>,
    cache_max: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 7,
        script: None,
        store: None,
        crash: None,
        listen: None,
        max_conns: None,
        cache_max: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed requires a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--script" => {
                args.script = Some(it.next().ok_or("--script requires a path")?);
            }
            "--store" => {
                args.store = Some(it.next().ok_or("--store requires a path")?);
            }
            "--crash" => {
                let v = it.next().ok_or("--crash requires a crash point")?;
                let (point, occurrence) = match v.split_once(':') {
                    Some((p, n)) => (
                        p,
                        n.parse::<u32>()
                            .map_err(|_| format!("bad crash occurrence {n:?}"))?,
                    ),
                    None => (v.as_str(), 1),
                };
                let point = CrashPoint::parse(point)
                    .ok_or_else(|| format!("unknown crash point {point:?}"))?;
                args.crash = Some(FaultPlan::at(point).on_occurrence(occurrence));
            }
            "--listen" => {
                args.listen = Some(it.next().ok_or("--listen requires an address")?);
            }
            "--max-conns" => {
                let v = it.next().ok_or("--max-conns requires a count")?;
                args.max_conns = Some(v.parse().map_err(|_| format!("bad count {v:?}"))?);
            }
            "--cache-max" => {
                let v = it.next().ok_or("--cache-max requires a count")?;
                args.cache_max = Some(v.parse().map_err(|_| format!("bad count {v:?}"))?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: qurk-serve [--seed N] [--script FILE] [--store FILE] [--crash POINT[:N]] \
                     [--listen ADDR] [--max-conns N] [--cache-max N]"
                        .to_owned(),
                );
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.crash.is_some() && args.store.is_none() {
        return Err("--crash requires --store".to_owned());
    }
    if args.listen.is_some() && args.script.is_some() {
        return Err("--listen and --script are mutually exclusive".to_owned());
    }
    if args.max_conns.is_some() && args.listen.is_none() {
        return Err("--max-conns requires --listen".to_owned());
    }
    Ok(args)
}

fn serve<R: BufRead + ?Sized, W: Write + ?Sized>(
    seed: u64,
    store: Option<Arc<DurableStore>>,
    cache_max: Option<usize>,
    input: &mut R,
    out: &mut W,
) -> io::Result<SessionEnd> {
    let (catalog, market) = world(seed);
    let mut svc = match store {
        Some(store) => QueryService::with_store(&catalog, market, ExecConfig::default(), store),
        None => QueryService::new(&catalog, market),
    };
    svc.set_cache_max_entries(cache_max);
    // Tenant names of queued queries, in submission order.
    let mut queued: Vec<String> = Vec::new();
    let mut end = SessionEnd::Eof;

    loop {
        let body = match read_frame(input)? {
            Frame::Body(body) => body,
            Frame::Malformed { reason, resync } => {
                write_frame(out, &format!("ERR {reason}"))?;
                if resync {
                    continue;
                }
                // Frame sync is lost; anything further would be
                // misparsed garbage.
                break;
            }
            Frame::Eof => break,
        };
        let request = match Request::parse(&body) {
            Ok(r) => r,
            Err(e) => {
                write_frame(out, &format!("ERR {e}"))?;
                continue;
            }
        };
        match request {
            Request::Tenant { name, budget } => {
                svc.register_tenant(&name, budget);
                match budget {
                    Some(b) => {
                        write_frame(out, &format!("OK tenant {name} budget {}", fmt_dollars(b)))?
                    }
                    None => write_frame(out, &format!("OK tenant {name}"))?,
                }
            }
            Request::Query { tenant, sql } => match svc.submit(&tenant, &sql) {
                Ok(n) => {
                    queued.push(tenant);
                    write_frame(out, &format!("OK queued #{n}"))?;
                }
                Err(e) => write_frame(out, &format!("ERR {e}"))?,
            },
            Request::Run => {
                let reports = svc.run_pending();
                let n = reports.len();
                for (tenant, report) in queued.drain(..).zip(reports) {
                    match report {
                        Ok(r) => {
                            let svc_stats = r.service.as_ref();
                            let saved = svc_stats.map(|s| s.saved_dollars).unwrap_or_default();
                            let resumed = if svc_stats.is_some_and(|s| s.resumed) {
                                " resumed"
                            } else {
                                ""
                            };
                            write_frame(
                                out,
                                &format!(
                                    "RESULT {tenant} {} rows {} saved {}{resumed}",
                                    r.relation.len(),
                                    fmt_dollars(r.cost_dollars),
                                    fmt_dollars(saved),
                                ),
                            )?;
                        }
                        Err(e) => write_frame(out, &format!("ERR {tenant}: {e}"))?,
                    }
                }
                write_frame(out, &format!("OK ran {n}"))?;
            }
            Request::Stats => {
                let (hits, misses) = svc.market().cache_stats();
                write_frame(
                    out,
                    &format!(
                        "STATS {} posted {hits}/{misses} cache {}",
                        svc.market().total_hits_posted(),
                        fmt_dollars(svc.market().total_spend()),
                    ),
                )?;
            }
            Request::Recover => {
                if svc.store().is_none() {
                    write_frame(out, "ERR RECOVER requires --store")?;
                } else {
                    // Recovered queries join the pending queue. The
                    // gate may retire checkpoints that no longer pass
                    // admission, so list the live ones *after*
                    // recovery — exactly the re-queued set, in
                    // submission order — so RUN's RESULT frames line
                    // up.
                    let n = svc.recover();
                    let resumed_tenants: Vec<String> = svc
                        .store()
                        .map(|s| s.live_checkpoints().into_iter().map(|c| c.tenant).collect())
                        .unwrap_or_default();
                    debug_assert_eq!(resumed_tenants.len(), n);
                    queued.extend(resumed_tenants);
                    write_frame(out, &format!("OK recovered {n}"))?;
                }
            }
            Request::Quit => {
                write_frame(out, "BYE")?;
                end = SessionEnd::Quit;
                break;
            }
            Request::Shutdown => {
                write_frame(out, "BYE")?;
                end = SessionEnd::Shutdown;
                break;
            }
        }
    }
    Ok(end)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let store = match &args.store {
        Some(path) => {
            let opened = match args.crash.clone() {
                Some(plan) => DurableStore::open_with_faults(path, plan),
                None => DurableStore::open(path),
            };
            match opened {
                Ok(store) => Some(Arc::new(store)),
                Err(e) => {
                    eprintln!("cannot open store {path:?}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };
    if let Some(addr) = &args.listen {
        // Each connection gets a fresh world (same seed) and a fresh
        // service; a shared --store carries the durable cache and
        // checkpoints across connections.
        let result = listener::listen(addr, args.max_conns, |input, out| {
            serve(args.seed, store.clone(), args.cache_max, input, out)
        });
        if let Err(e) = result {
            eprintln!("listener error: {e}");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let result = match &args.script {
        Some(path) => match std::fs::File::open(path) {
            Ok(f) => serve(
                args.seed,
                store,
                args.cache_max,
                &mut BufReader::new(f),
                &mut out,
            ),
            Err(e) => {
                eprintln!("cannot open {path:?}: {e}");
                return ExitCode::from(2);
            }
        },
        None => serve(
            args.seed,
            store,
            args.cache_max,
            &mut io::stdin().lock(),
            &mut out,
        ),
    };
    if let Err(e) = result {
        eprintln!("i/o error: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
