//! TCP deployment of the `qurk-serve` protocol.
//!
//! `--listen ADDR` binds a [`TcpListener`] and serves **one protocol
//! session per connection**, sequentially: the accept loop hands each
//! connection to the session callback and only accepts the next one
//! after the previous session ends. Sequential serving is what keeps
//! scripted transcripts byte-diffable over a real socket — connections
//! never interleave on the marketplace clock, and there is no
//! polling: the loop blocks in `accept()` and in frame reads.
//!
//! The resolved address is announced on stdout as `LISTENING <addr>`
//! (bind to port 0 to let the OS pick — the CI socket smoke test does
//! exactly that). A `SHUTDOWN` frame ends its session *and* the
//! accept loop; `QUIT` or EOF ends only its own connection. Frame
//! reads go through `qurk::service::protocol::read_frame`, which
//! bounds every body by `MAX_FRAME_BYTES` — a garbage length prefix
//! from the network is a framing error, not an allocation.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;

use crate::SessionEnd;

/// Bind `addr` and serve connections until a session asks for
/// shutdown, `max_conns` connections have been served, or the
/// listener itself fails. Per-connection I/O errors end that session
/// only; the loop keeps accepting.
pub fn listen(
    addr: &str,
    max_conns: Option<usize>,
    mut session: impl FnMut(&mut dyn BufRead, &mut dyn Write) -> io::Result<SessionEnd>,
) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    {
        let stdout = io::stdout();
        let mut out = stdout.lock();
        writeln!(out, "LISTENING {local}")?;
        out.flush()?;
    }
    for (already_served, conn) in listener.incoming().enumerate() {
        let stream = conn?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        let end = match session(&mut reader, &mut writer) {
            Ok(end) => end,
            Err(e) => {
                // A dropped client mid-frame is that client's problem.
                eprintln!("connection error: {e}");
                SessionEnd::Eof
            }
        };
        let _ = writer.flush();
        if matches!(end, SessionEnd::Shutdown) {
            break;
        }
        if max_conns.is_some_and(|m| already_served + 1 >= m) {
            break;
        }
    }
    Ok(())
}
