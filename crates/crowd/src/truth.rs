//! The hidden ground-truth oracle.
//!
//! Datasets register *items* (the analogue of the paper's images) with
//! latent properties that workers perceive noisily:
//!
//! * **scores** along named sort dimensions (square area, animal adult
//!   size, dangerousness, …) together with a per-dimension *ambiguity*
//!   controlling how discriminable neighbouring items are. The paper's
//!   Q4 ("belongs on Saturn") is a dimension with ambiguity so high the
//!   signal nearly vanishes; Q5 is pure noise.
//! * **entities** for join questions: two items match iff they denote
//!   the same entity. A pairwise *similarity* in `[0,1]` drives false
//!   positives between lookalikes.
//! * **categorical features** (gender, hair color, skin color) with
//!   per-item confusion distributions — a dyed-hair celebrity has
//!   probability mass spread over several hair colors, which is what
//!   drags Fleiss' κ down in Table 4.
//! * **filter predicates** (bool) with per-item error rates.
//! * **generative fields**: a distribution over raw strings workers
//!   type (case/spacing variants normalize to the canonical answer).
//!
//! The oracle is append-only and shared read-only by worker models.

use std::collections::HashMap;

/// Opaque item identifier (an image/tuple in the paper's datasets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemId(pub u64);

/// Opaque entity identifier for join ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u64);

/// Latent per-dimension sort information.
#[derive(Debug, Clone, Copy)]
struct ScoreEntry {
    score: f64,
}

/// Per-dimension perception parameters.
#[derive(Debug, Clone, Copy)]
pub struct DimensionParams {
    /// Standard deviation of the perceptual noise a median worker adds
    /// to an item's (normalized) score when comparing items
    /// side-by-side. 0 = perfectly crisp (squares); large = ambiguous
    /// (Saturn).
    pub ambiguity: f64,
    /// Multiplier on `ambiguity` for *absolute* judgments (Likert
    /// ratings). Psychophysically, rating an item in isolation is much
    /// noisier than comparing two items side by side; this gap is what
    /// makes `Rate` cheaper but less accurate than `Compare` (§4.2).
    pub rating_noise_mult: f64,
    /// If true the dimension carries no signal at all: workers perceive
    /// pure noise (the paper's Q5 "random responses" control).
    pub pure_noise: bool,
}

impl Default for DimensionParams {
    fn default() -> Self {
        DimensionParams {
            ambiguity: 0.05,
            rating_noise_mult: 4.0,
            pure_noise: false,
        }
    }
}

impl DimensionParams {
    /// A crisp, objectively sortable dimension (e.g. square area).
    pub fn crisp(ambiguity: f64) -> Self {
        DimensionParams {
            ambiguity,
            ..Default::default()
        }
    }

    /// Fully ambiguous: workers perceive pure noise.
    pub fn pure_noise() -> Self {
        DimensionParams {
            ambiguity: 1.0,
            rating_noise_mult: 1.0,
            pure_noise: true,
        }
    }
}

/// Categorical feature truth for one item.
#[derive(Debug, Clone)]
pub struct FeatureTruth {
    /// Index of the true category within the feature's option list.
    pub value: usize,
    /// Probability a careful worker reports each category; must sum to
    /// ~1 over `options.len()` entries. An extra final entry, if
    /// present, is the probability of answering `UNKNOWN`.
    pub report_probs: Vec<f64>,
}

/// Boolean predicate truth for one item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredicateTruth {
    pub value: bool,
    /// Probability a careful worker answers incorrectly.
    pub error_rate: f64,
}

/// Generative field truth: raw strings a worker might type and their
/// probabilities (normalizing should collapse them to a canonical form).
#[derive(Debug, Clone)]
pub struct TextTruth {
    pub variants: Vec<(String, f64)>,
}

/// The oracle. Keys are `(item, name)` pairs; names are interned by the
/// datasets layer (they are tiny and few, so plain `String` keys are
/// simpler than an interner and nowhere near hot).
#[derive(Debug, Default, Clone)]
pub struct GroundTruth {
    scores: HashMap<(ItemId, String), ScoreEntry>,
    dimensions: HashMap<String, DimensionParams>,
    entities: HashMap<ItemId, EntityId>,
    /// Similarity between *different* entities, keyed with the smaller
    /// entity id first. Missing = `default_similarity`.
    similarities: HashMap<(EntityId, EntityId), f64>,
    default_similarity: f64,
    features: HashMap<(ItemId, String), FeatureTruth>,
    /// Override distributions used when the feature is asked in the
    /// combined (all-features-at-once) interface; falls back to
    /// `features`. Captures the paper's §3.3.4 finding that the
    /// combined interface changes answer quality per feature.
    features_combined: HashMap<(ItemId, String), FeatureTruth>,
    feature_options: HashMap<String, Vec<String>>,
    predicates: HashMap<(ItemId, String), PredicateTruth>,
    texts: HashMap<(ItemId, String), TextTruth>,
    next_item: u64,
}

impl GroundTruth {
    pub fn new() -> Self {
        GroundTruth {
            default_similarity: 0.1,
            ..Default::default()
        }
    }

    /// Allocate a fresh item id.
    pub fn new_item(&mut self) -> ItemId {
        let id = ItemId(self.next_item);
        self.next_item += 1;
        id
    }

    /// Allocate `n` fresh item ids.
    pub fn new_items(&mut self, n: usize) -> Vec<ItemId> {
        (0..n).map(|_| self.new_item()).collect()
    }

    // ---- sort dimensions ----

    /// Register a sort dimension with perception parameters.
    pub fn define_dimension(&mut self, name: &str, params: DimensionParams) {
        self.dimensions.insert(name.to_owned(), params);
    }

    pub fn dimension_params(&self, name: &str) -> DimensionParams {
        self.dimensions.get(name).copied().unwrap_or_default()
    }

    /// Set an item's latent score on a dimension.
    pub fn set_score(&mut self, item: ItemId, dimension: &str, score: f64) {
        self.scores
            .insert((item, dimension.to_owned()), ScoreEntry { score });
    }

    /// Latent score, if registered.
    pub fn score(&self, item: ItemId, dimension: &str) -> Option<f64> {
        self.scores
            .get(&(item, dimension.to_owned()))
            .map(|e| e.score)
    }

    /// Min/max score over all items registered on a dimension; used to
    /// normalize perception noise and to calibrate Likert mapping.
    pub fn score_range(&self, dimension: &str) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut any = false;
        for ((_, d), e) in &self.scores {
            if d == dimension {
                lo = lo.min(e.score);
                hi = hi.max(e.score);
                any = true;
            }
        }
        if any {
            Some((lo, hi))
        } else {
            None
        }
    }

    /// Ground-truth best-to-worst ordering of `items` on `dimension`
    /// (higher score first). Items without a score sort last, stably.
    pub fn true_order(&self, items: &[ItemId], dimension: &str) -> Vec<ItemId> {
        let mut v: Vec<ItemId> = items.to_vec();
        v.sort_by(|&a, &b| {
            let sa = self.score(a, dimension).unwrap_or(f64::NEG_INFINITY);
            let sb = self.score(b, dimension).unwrap_or(f64::NEG_INFINITY);
            sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
        });
        v
    }

    // ---- entities / joins ----

    /// Mark an item as depicting an entity.
    pub fn set_entity(&mut self, item: ItemId, entity: EntityId) {
        self.entities.insert(item, entity);
    }

    pub fn entity(&self, item: ItemId) -> Option<EntityId> {
        self.entities.get(&item).copied()
    }

    /// Do two items depict the same entity? Items without entity
    /// registration never match anything.
    pub fn same_entity(&self, a: ItemId, b: ItemId) -> bool {
        match (self.entity(a), self.entity(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Baseline similarity used for unregistered entity pairs.
    pub fn set_default_similarity(&mut self, s: f64) {
        self.default_similarity = s.clamp(0.0, 1.0);
    }

    /// Record how visually similar two distinct entities are (drives
    /// false-positive join votes between lookalikes).
    pub fn set_similarity(&mut self, a: EntityId, b: EntityId, s: f64) {
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.similarities.insert(key, s.clamp(0.0, 1.0));
    }

    /// Similarity between the entities behind two items (1.0 if same).
    pub fn similarity(&self, a: ItemId, b: ItemId) -> f64 {
        match (self.entity(a), self.entity(b)) {
            (Some(x), Some(y)) if x == y => 1.0,
            (Some(x), Some(y)) => {
                let key = if x.0 <= y.0 { (x, y) } else { (y, x) };
                self.similarities
                    .get(&key)
                    .copied()
                    .unwrap_or(self.default_similarity)
            }
            _ => self.default_similarity,
        }
    }

    // ---- categorical features ----

    /// Register a feature and its option labels (e.g. `hairColor`:
    /// black/brown/blond/white). `UNKNOWN` is implicit and not listed.
    pub fn define_feature(&mut self, name: &str, options: &[&str]) {
        self.feature_options.insert(
            name.to_owned(),
            options.iter().map(|s| s.to_string()).collect(),
        );
    }

    pub fn feature_options(&self, name: &str) -> Option<&[String]> {
        self.feature_options.get(name).map(|v| v.as_slice())
    }

    /// Set an item's feature truth. `report_probs` may include one
    /// trailing entry beyond the option count for `UNKNOWN`.
    ///
    /// # Panics
    /// Panics if the feature is undefined or the probability vector has
    /// the wrong arity.
    pub fn set_feature(&mut self, item: ItemId, feature: &str, truth: FeatureTruth) {
        let opts = self
            .feature_options
            .get(feature)
            .unwrap_or_else(|| panic!("feature {feature} not defined"));
        assert!(
            truth.report_probs.len() == opts.len() || truth.report_probs.len() == opts.len() + 1,
            "report_probs arity {} does not match {} options (+1 optional UNKNOWN)",
            truth.report_probs.len(),
            opts.len()
        );
        assert!(truth.value < opts.len(), "true value out of range");
        self.features.insert((item, feature.to_owned()), truth);
    }

    /// Convenience: a crisp feature where a careful worker answers the
    /// true category with probability `1 - confusion` and spreads the
    /// remainder uniformly over the other categories.
    pub fn set_feature_simple(
        &mut self,
        item: ItemId,
        feature: &str,
        value: usize,
        confusion: f64,
    ) {
        let k = self
            .feature_options
            .get(feature)
            .unwrap_or_else(|| panic!("feature {feature} not defined"))
            .len();
        let mut probs = vec![confusion / (k.max(2) - 1) as f64; k];
        probs[value] = 1.0 - confusion;
        self.set_feature(
            item,
            feature,
            FeatureTruth {
                value,
                report_probs: probs,
            },
        );
    }

    pub fn feature(&self, item: ItemId, feature: &str) -> Option<&FeatureTruth> {
        self.features.get(&(item, feature.to_owned()))
    }

    /// Set the distribution used when the feature is asked in the
    /// combined interface (same validation as [`Self::set_feature`]).
    pub fn set_feature_for_combined(&mut self, item: ItemId, feature: &str, truth: FeatureTruth) {
        let opts = self
            .feature_options
            .get(feature)
            .unwrap_or_else(|| panic!("feature {feature} not defined"));
        assert!(
            truth.report_probs.len() == opts.len() || truth.report_probs.len() == opts.len() + 1,
            "report_probs arity mismatch"
        );
        self.features_combined
            .insert((item, feature.to_owned()), truth);
    }

    /// Feature truth as perceived through the combined interface,
    /// falling back to the single-feature distribution.
    pub fn feature_combined(&self, item: ItemId, feature: &str) -> Option<&FeatureTruth> {
        self.features_combined
            .get(&(item, feature.to_owned()))
            .or_else(|| self.features.get(&(item, feature.to_owned())))
    }

    // ---- predicates ----

    pub fn set_predicate(&mut self, item: ItemId, predicate: &str, truth: PredicateTruth) {
        self.predicates.insert((item, predicate.to_owned()), truth);
    }

    pub fn predicate(&self, item: ItemId, predicate: &str) -> Option<PredicateTruth> {
        self.predicates.get(&(item, predicate.to_owned())).copied()
    }

    // ---- generative text ----

    pub fn set_text(&mut self, item: ItemId, field: &str, truth: TextTruth) {
        self.texts.insert((item, field.to_owned()), truth);
    }

    pub fn text(&self, item: ItemId, field: &str) -> Option<&TextTruth> {
        self.texts.get(&(item, field.to_owned()))
    }

    /// Number of items allocated so far.
    pub fn item_count(&self) -> u64 {
        self.next_item
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_allocation_is_sequential() {
        let mut gt = GroundTruth::new();
        let a = gt.new_item();
        let b = gt.new_item();
        assert_ne!(a, b);
        assert_eq!(gt.item_count(), 2);
        assert_eq!(gt.new_items(3).len(), 3);
        assert_eq!(gt.item_count(), 5);
    }

    #[test]
    fn scores_and_ranges() {
        let mut gt = GroundTruth::new();
        let items = gt.new_items(3);
        gt.set_score(items[0], "area", 400.0);
        gt.set_score(items[1], "area", 529.0);
        gt.set_score(items[2], "area", 676.0);
        assert_eq!(gt.score(items[1], "area"), Some(529.0));
        assert_eq!(gt.score(items[1], "height"), None);
        assert_eq!(gt.score_range("area"), Some((400.0, 676.0)));
        assert_eq!(gt.score_range("nope"), None);
    }

    #[test]
    fn true_order_is_descending() {
        let mut gt = GroundTruth::new();
        let items = gt.new_items(3);
        gt.set_score(items[0], "size", 1.0);
        gt.set_score(items[1], "size", 3.0);
        gt.set_score(items[2], "size", 2.0);
        let order = gt.true_order(&items, "size");
        assert_eq!(order, vec![items[1], items[2], items[0]]);
    }

    #[test]
    fn entities_and_similarity() {
        let mut gt = GroundTruth::new();
        let a = gt.new_item();
        let b = gt.new_item();
        let c = gt.new_item();
        gt.set_entity(a, EntityId(1));
        gt.set_entity(b, EntityId(1));
        gt.set_entity(c, EntityId(2));
        assert!(gt.same_entity(a, b));
        assert!(!gt.same_entity(a, c));
        assert_eq!(gt.similarity(a, b), 1.0);
        gt.set_similarity(EntityId(1), EntityId(2), 0.8);
        assert_eq!(gt.similarity(a, c), 0.8);
        // symmetric key
        assert_eq!(gt.similarity(c, a), 0.8);
    }

    #[test]
    fn unregistered_items_never_match() {
        let mut gt = GroundTruth::new();
        let a = gt.new_item();
        let b = gt.new_item();
        assert!(!gt.same_entity(a, b));
        assert_eq!(gt.similarity(a, b), 0.1); // default
        gt.set_default_similarity(0.3);
        assert_eq!(gt.similarity(a, b), 0.3);
    }

    #[test]
    fn features_roundtrip() {
        let mut gt = GroundTruth::new();
        let a = gt.new_item();
        gt.define_feature("gender", &["male", "female"]);
        gt.set_feature_simple(a, "gender", 1, 0.02);
        let f = gt.feature(a, "gender").unwrap();
        assert_eq!(f.value, 1);
        assert!((f.report_probs[1] - 0.98).abs() < 1e-12);
        assert_eq!(gt.feature_options("gender").unwrap().len(), 2);
    }

    #[test]
    fn feature_with_unknown_tail() {
        let mut gt = GroundTruth::new();
        let a = gt.new_item();
        gt.define_feature("hair", &["black", "brown", "blond", "white"]);
        gt.set_feature(
            a,
            "hair",
            FeatureTruth {
                value: 2,
                report_probs: vec![0.05, 0.1, 0.5, 0.3, 0.05], // last = UNKNOWN
            },
        );
        assert_eq!(gt.feature(a, "hair").unwrap().report_probs.len(), 5);
    }

    #[test]
    #[should_panic(expected = "not defined")]
    fn feature_requires_definition() {
        let mut gt = GroundTruth::new();
        let a = gt.new_item();
        gt.set_feature_simple(a, "undefined", 0, 0.0);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn feature_probs_arity_checked() {
        let mut gt = GroundTruth::new();
        let a = gt.new_item();
        gt.define_feature("gender", &["male", "female"]);
        gt.set_feature(
            a,
            "gender",
            FeatureTruth {
                value: 0,
                report_probs: vec![0.2; 5],
            },
        );
    }

    #[test]
    fn predicates_roundtrip() {
        let mut gt = GroundTruth::new();
        let a = gt.new_item();
        gt.set_predicate(
            a,
            "isFemale",
            PredicateTruth {
                value: true,
                error_rate: 0.05,
            },
        );
        let p = gt.predicate(a, "isFemale").unwrap();
        assert!(p.value);
        assert_eq!(gt.predicate(a, "other"), None);
    }

    #[test]
    fn texts_roundtrip() {
        let mut gt = GroundTruth::new();
        let a = gt.new_item();
        gt.set_text(
            a,
            "common",
            TextTruth {
                variants: vec![
                    ("Humpback Whale".into(), 0.6),
                    ("humpback  whale".into(), 0.4),
                ],
            },
        );
        assert_eq!(gt.text(a, "common").unwrap().variants.len(), 2);
    }

    #[test]
    fn dimension_params_default_and_override() {
        let mut gt = GroundTruth::new();
        assert!(!gt.dimension_params("x").pure_noise);
        gt.define_dimension("saturn", DimensionParams::crisp(3.0));
        assert_eq!(gt.dimension_params("saturn").ambiguity, 3.0);
    }
}
