//! The marketplace: HIT lifecycle and the event loop tying workers,
//! questions and time together.
//!
//! Operators interact with the marketplace the way Qurk interacted with
//! MTurk (§2.6): they post *HIT groups* (batches of HITs sharing an
//! interface), let the crowd work, and collect completed assignments.
//! Each HIT requests a number of assignments (default 5, §2.1), each of
//! which must come from a distinct worker — MTurk's own rule.
//!
//! Dynamics reproduced from the paper:
//!
//! * Workers "gravitate toward HIT groups with more tasks available in
//!   them" — group engagement scales with remaining work, so the last
//!   few assignments of a group linger (§3.3.2: "the last 50% of wait
//!   time is spent completing the last 5% of tasks").
//! * "Some Turkers pick up and then abandon tasks, which temporarily
//!   blocks other Turkers from starting them."
//! * Oversized batches are refused outright (§4.2.2: group-size-20
//!   comparison HITs sat uncompleted for hours).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::config::CrowdConfig;
use crate::pricing::{Ledger, Price};
use crate::question::{Answer, HitContext, HitKind, Question};
use crate::rng::{exponential, normal};
use crate::sim::{EventQueue, SimConfig, SimTime};
use crate::truth::GroundTruth;
use crate::worker::{WorkerId, WorkerPool};

/// HIT identifier (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HitId(pub usize);

/// HIT-group identifier (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HitGroupId(pub usize);

/// Assignment identifier (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AssignmentId(pub usize);

/// Specification of one HIT to post.
#[derive(Debug, Clone)]
pub struct HitSpec {
    pub questions: Vec<Question>,
    pub kind: HitKind,
}

impl HitSpec {
    pub fn new(questions: Vec<Question>, kind: HitKind) -> Self {
        HitSpec { questions, kind }
    }

    pub fn work_units(&self) -> f64 {
        crate::question::hit_work_units(self.kind, &self.questions)
    }
}

/// A posted HIT.
#[derive(Debug, Clone)]
pub struct Hit {
    pub id: HitId,
    pub group: HitGroupId,
    pub questions: Vec<Question>,
    pub kind: HitKind,
    pub assignments_requested: u32,
    pub posted_at: SimTime,
    completed: u32,
    in_flight: u32,
    touched_by: HashSet<WorkerId>,
}

impl Hit {
    pub fn work_units(&self) -> f64 {
        crate::question::hit_work_units(self.kind, &self.questions)
    }

    fn needs_worker(&self, w: WorkerId) -> bool {
        self.completed + self.in_flight < self.assignments_requested
            && !self.touched_by.contains(&w)
    }

    fn outstanding(&self) -> u32 {
        self.assignments_requested - self.completed.min(self.assignments_requested)
    }
}

/// One completed assignment.
#[derive(Debug, Clone)]
pub struct Assignment {
    pub id: AssignmentId,
    pub hit: HitId,
    pub group: HitGroupId,
    pub worker: WorkerId,
    pub answers: Vec<Answer>,
    pub accepted_at: SimTime,
    pub submitted_at: SimTime,
}

#[derive(Debug)]
struct GroupState {
    hits: Vec<HitId>,
    posted_at: SimTime,
}

#[derive(Debug)]
enum SimEvent {
    Arrival,
    Finish {
        worker: WorkerId,
        hit: HitId,
        accepted_at: SimTime,
        session_left: u32,
    },
    LockExpires {
        worker: WorkerId,
        hit: HitId,
    },
}

/// Outcome of running the event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// All posted assignments completed.
    Completed,
    /// The time limit elapsed with work outstanding (e.g. a batch too
    /// large for anyone to accept).
    TimedOut,
}

/// The simulated marketplace.
pub struct Marketplace {
    truth: GroundTruth,
    pool: WorkerPool,
    sim: SimConfig,
    price: Price,
    pub ledger: Ledger,
    default_assignments: u32,
    hits: Vec<Hit>,
    groups: Vec<GroupState>,
    completed: Vec<Assignment>,
    collected_mark: usize,
    queue: EventQueue<SimEvent>,
    now: SimTime,
    rng: StdRng,
    arrival_scheduled: bool,
    banned: HashSet<WorkerId>,
}

impl Marketplace {
    /// Build a marketplace from a full configuration and ground truth.
    pub fn new(config: &CrowdConfig, truth: GroundTruth) -> Self {
        Marketplace {
            truth,
            pool: WorkerPool::generate(&config.workers, config.seed),
            sim: config.sim.clone(),
            price: config.price,
            ledger: Ledger::new(),
            default_assignments: config.assignments_per_hit,
            hits: Vec::new(),
            groups: Vec::new(),
            completed: Vec::new(),
            collected_mark: 0,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(config.seed ^ 0x00AA_55EE),
            arrival_scheduled: false,
            banned: HashSet::new(),
        }
    }

    /// Hidden ground truth (read-only; for evaluation harnesses).
    pub fn truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// Mutable truth access for dataset construction before posting.
    pub fn truth_mut(&mut self) -> &mut GroundTruth {
        &mut self.truth
    }

    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of HITs ever posted.
    pub fn hits_posted(&self) -> usize {
        self.hits.len()
    }

    /// Assignments requested per HIT when [`Self::post_group`] is used
    /// (from [`crate::CrowdConfig::assignments_per_hit`]).
    pub fn default_assignments(&self) -> u32 {
        self.default_assignments
    }

    /// Post a group of HITs with the default assignment count.
    pub fn post_group(&mut self, specs: Vec<HitSpec>) -> HitGroupId {
        let n = self.default_assignments;
        self.post_group_with_assignments(specs, n)
    }

    /// Post a group of HITs requesting `assignments` per HIT.
    pub fn post_group_with_assignments(
        &mut self,
        specs: Vec<HitSpec>,
        assignments: u32,
    ) -> HitGroupId {
        assert!(assignments > 0, "assignments must be positive");
        assert!(
            (assignments as usize) <= self.pool.len(),
            "cannot request more assignments than workers"
        );
        let group = HitGroupId(self.groups.len());
        let mut hit_ids = Vec::with_capacity(specs.len());
        for spec in specs {
            assert!(!spec.questions.is_empty(), "HIT must contain questions");
            let id = HitId(self.hits.len());
            self.hits.push(Hit {
                id,
                group,
                questions: spec.questions,
                kind: spec.kind,
                assignments_requested: assignments,
                posted_at: self.now,
                completed: 0,
                in_flight: 0,
                touched_by: HashSet::new(),
            });
            hit_ids.push(id);
        }
        self.groups.push(GroupState {
            hits: hit_ids,
            posted_at: self.now,
        });
        group
    }

    /// Run the event loop until every posted assignment completes, or
    /// `limit_secs` of virtual time elapse (measured from now).
    pub fn run(&mut self, limit_secs: f64) -> RunOutcome {
        let deadline = self.now.plus_secs(limit_secs);
        if !self.arrival_scheduled {
            self.schedule_next_arrival();
        }
        while !self.all_done() {
            let Some(ev) = self.queue.pop() else {
                // No events can only happen if arrivals stopped; resume.
                self.schedule_next_arrival();
                continue;
            };
            if ev.at.secs() > deadline.secs() {
                // Push it back for a later run() call and stop.
                self.queue.push(ev.at, ev.payload);
                self.now = deadline;
                return RunOutcome::TimedOut;
            }
            self.now = ev.at;
            match ev.payload {
                SimEvent::Arrival => {
                    self.schedule_next_arrival();
                    self.handle_arrival();
                }
                SimEvent::Finish {
                    worker,
                    hit,
                    accepted_at,
                    session_left,
                } => self.handle_finish(worker, hit, accepted_at, session_left),
                SimEvent::LockExpires { worker, hit } => {
                    let h = &mut self.hits[hit.0];
                    h.in_flight = h.in_flight.saturating_sub(1);
                    h.touched_by.remove(&worker);
                }
            }
        }
        RunOutcome::Completed
    }

    /// Convenience: run with a generous default limit (30 virtual days).
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run(30.0 * 24.0 * 3600.0)
    }

    /// All assignments completed across every posted HIT?
    pub fn all_done(&self) -> bool {
        self.hits
            .iter()
            .all(|h| h.completed >= h.assignments_requested)
    }

    /// Completed assignments for a group (all of them, in completion
    /// order).
    pub fn assignments(&self, group: HitGroupId) -> impl Iterator<Item = &Assignment> {
        self.completed.iter().filter(move |a| a.group == group)
    }

    /// Drain all assignments completed since the last drain.
    pub fn drain_new_assignments(&mut self) -> Vec<Assignment> {
        let out = self.completed[self.collected_mark..].to_vec();
        self.collected_mark = self.completed.len();
        out
    }

    /// Per-assignment completion latencies (seconds since the group was
    /// posted) for Figure 4's percentile reporting.
    pub fn group_latencies(&self, group: HitGroupId) -> Vec<f64> {
        let posted = self.groups[group.0].posted_at;
        self.assignments(group)
            .map(|a| a.submitted_at.secs() - posted.secs())
            .collect()
    }

    /// The HITs of a group, in the order their specs were posted.
    pub fn group_hits(&self, group: HitGroupId) -> Vec<HitId> {
        self.groups[group.0].hits.clone()
    }

    /// Number of outstanding assignments in a group.
    pub fn group_outstanding(&self, group: HitGroupId) -> u32 {
        self.groups[group.0]
            .hits
            .iter()
            .map(|&h| self.hits[h.0].outstanding())
            .sum()
    }

    pub fn hit(&self, id: HitId) -> &Hit {
        &self.hits[id.0]
    }

    // ---- event handlers ----

    fn schedule_next_arrival(&mut self) {
        let mult = self.sim.rate_multiplier(self.now).max(0.05);
        let rate_per_sec = self.sim.arrivals_per_hour * mult / 3600.0;
        let dt = exponential(&mut self.rng, rate_per_sec.max(1e-9));
        self.queue.push(self.now.plus_secs(dt), SimEvent::Arrival);
        self.arrival_scheduled = true;
    }

    /// Ban workers from future assignments (§6: "one could use the
    /// output of the QA algorithm to ban Turkers found to produce poor
    /// results, reducing future costs"). In-flight work is unaffected.
    pub fn ban_workers(&mut self, workers: impl IntoIterator<Item = WorkerId>) {
        self.banned.extend(workers);
    }

    /// Number of currently banned workers.
    pub fn banned_count(&self) -> usize {
        self.banned.len()
    }

    fn handle_arrival(&mut self) {
        let worker_id = self.pool.sample_arrival(&mut self.rng);
        if self.banned.contains(&worker_id) {
            return; // requester rejected this Turker's future work
        }

        // Engagement: total remaining work across groups this worker
        // could contribute to.
        let candidate_groups: Vec<(usize, u32)> = self
            .groups
            .iter()
            .enumerate()
            .map(|(gi, g)| {
                let avail: u32 = g
                    .hits
                    .iter()
                    .filter(|&&h| self.hits[h.0].needs_worker(worker_id))
                    .count() as u32;
                (gi, avail)
            })
            .filter(|&(_, avail)| avail > 0)
            .collect();
        let total_avail: u32 = candidate_groups.iter().map(|&(_, a)| a).sum();
        if total_avail == 0 {
            return;
        }
        let engage_p =
            total_avail as f64 / (total_avail as f64 + self.sim.engagement_half_saturation);
        if self.rng.random::<f64>() >= engage_p {
            return;
        }

        // Browse groups weighted by available work; a worker who
        // refuses one group's batch size keeps browsing (up to three
        // listings) before leaving — a stalled oversized group must not
        // starve the rest of the marketplace.
        let mut remaining = candidate_groups;
        for _ in 0..3 {
            let total: u32 = remaining.iter().map(|&(_, a)| a).sum();
            if total == 0 {
                return;
            }
            let mut pick = self.rng.random_range(0..total);
            let mut chosen = 0usize;
            for (k, &(_, avail)) in remaining.iter().enumerate() {
                if pick < avail {
                    chosen = k;
                    break;
                }
                pick -= avail;
            }
            let (group_idx, _) = remaining.swap_remove(chosen);

            let Some(&first_hit) = self.groups[group_idx]
                .hits
                .iter()
                .find(|&&h| self.hits[h.0].needs_worker(worker_id))
            else {
                continue;
            };
            let wu = self.hits[first_hit.0].work_units();
            let w = self.pool.get(worker_id);
            // Spammers chase throughput: big batches mean more pay per
            // click-through, so their acceptance *rises* with batch
            // size — §3.3.2: "these larger, batched schemes are more
            // attractive to workers that quickly and inaccurately
            // complete the tasks."
            let accept_p = if matches!(w.archetype, crate::worker::WorkerArchetype::Spammer(_)) {
                // ...but even spammers walk away from marathon HITs: a
                // 20-item comparison (~76 work units) pays the same cent.
                (0.35 + 0.6 * logistic((wu - 4.0) / 3.0)) * logistic((28.0 - wu) / 4.0)
            } else {
                logistic((w.max_work_units - wu) / self.sim.acceptance_softness)
            };
            if self.rng.random::<f64>() >= accept_p {
                continue; // keep browsing
            }

            // Session length (Zipf-ish heavy tail).
            let session = crate::rng::zipf(
                &mut self.rng,
                self.sim.session_zipf_n,
                self.sim.session_zipf_s,
            ) as u32;
            self.start_assignment(worker_id, first_hit, session.saturating_sub(1));
            return;
        }
    }

    fn start_assignment(&mut self, worker: WorkerId, hit: HitId, session_left: u32) {
        let h = &mut self.hits[hit.0];
        h.in_flight += 1;
        h.touched_by.insert(worker);
        let wu = h.work_units();

        if self.rng.random::<f64>() < self.sim.abandon_probability {
            let at = self.now.plus_secs(self.sim.abandon_lock_secs);
            self.queue.push(at, SimEvent::LockExpires { worker, hit });
            return;
        }

        let w = self.pool.get(worker);
        let noise = normal(&mut self.rng, 1.0, 0.25).clamp(0.4, 2.5);
        let duration = (self.sim.per_hit_overhead_secs + wu * w.secs_per_unit) * noise;
        let at = self.now.plus_secs(duration.max(1.0));
        self.queue.push(
            at,
            SimEvent::Finish {
                worker,
                hit,
                accepted_at: self.now,
                session_left,
            },
        );
    }

    fn handle_finish(
        &mut self,
        worker: WorkerId,
        hit: HitId,
        accepted_at: SimTime,
        session_left: u32,
    ) {
        // Produce the answers at submission time.
        let (questions, kind, group, wu) = {
            let h = &self.hits[hit.0];
            (h.questions.clone(), h.kind, h.group, h.work_units())
        };
        let ctx = HitContext {
            kind,
            total_work_units: wu,
        };
        let answers = {
            let w = self.pool.get(worker).clone();
            w.answer_hit(&questions, ctx, &self.truth, &mut self.rng)
        };
        {
            let h = &mut self.hits[hit.0];
            h.in_flight = h.in_flight.saturating_sub(1);
            h.completed += 1;
        }
        self.pool.get_mut(worker).completed += 1;
        self.ledger.charge(self.price);
        let id = AssignmentId(self.completed.len());
        self.completed.push(Assignment {
            id,
            hit,
            group,
            worker,
            answers,
            accepted_at,
            submitted_at: self.now,
        });

        // Continue the session within the same group if possible.
        if session_left > 0 {
            if let Some(&next) = self.groups[group.0]
                .hits
                .iter()
                .find(|&&h| self.hits[h.0].needs_worker(worker))
            {
                self.start_assignment(worker, next, session_left - 1);
            }
        }
    }
}

#[inline]
fn logistic(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::question::Question;
    use crate::truth::PredicateTruth;

    fn small_market(num_items: usize) -> (Marketplace, Vec<crate::truth::ItemId>) {
        let mut truth = GroundTruth::new();
        let items = truth.new_items(num_items);
        for &it in &items {
            truth.set_predicate(
                it,
                "p",
                PredicateTruth {
                    value: it.0 % 2 == 0,
                    error_rate: 0.05,
                },
            );
        }
        let cfg = CrowdConfig::default();
        (Marketplace::new(&cfg, truth), items)
    }

    fn filter_specs(items: &[crate::truth::ItemId]) -> Vec<HitSpec> {
        items
            .iter()
            .map(|&it| {
                HitSpec::new(
                    vec![Question::Filter {
                        item: it,
                        predicate: "p".into(),
                    }],
                    HitKind::Filter,
                )
            })
            .collect()
    }

    #[test]
    fn completes_simple_group_and_charges() {
        let (mut m, items) = small_market(10);
        let g = m.post_group(filter_specs(&items));
        assert_eq!(m.group_outstanding(g), 50); // 10 hits x 5 assignments
        let outcome = m.run_to_completion();
        assert_eq!(outcome, RunOutcome::Completed);
        assert_eq!(m.assignments(g).count(), 50);
        assert_eq!(m.ledger.assignments_paid, 50);
        assert!((m.ledger.total() - 50.0 * 0.015).abs() < 1e-9);
    }

    #[test]
    fn distinct_workers_per_hit() {
        let (mut m, items) = small_market(6);
        let g = m.post_group(filter_specs(&items));
        m.run_to_completion();
        use std::collections::HashMap;
        let mut per_hit: HashMap<HitId, Vec<WorkerId>> = HashMap::new();
        for a in m.assignments(g) {
            per_hit.entry(a.hit).or_default().push(a.worker);
        }
        for (hit, workers) in per_hit {
            let set: HashSet<_> = workers.iter().collect();
            assert_eq!(set.len(), workers.len(), "repeat worker on {hit:?}");
        }
    }

    #[test]
    fn answers_are_mostly_correct() {
        let (mut m, items) = small_market(20);
        let g = m.post_group(filter_specs(&items));
        m.run_to_completion();
        let mut correct = 0usize;
        let mut total = 0usize;
        for a in m.assignments(g) {
            let truth_val = items[a.hit.0].0 % 2 == 0;
            if a.answers[0].as_bool().unwrap() == truth_val {
                correct += 1;
            }
            total += 1;
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.8, "accuracy={acc}");
    }

    #[test]
    fn determinism_same_seed_same_timeline() {
        let run = || {
            let (mut m, items) = small_market(8);
            let g = m.post_group(filter_specs(&items));
            m.run_to_completion();
            let lat = m.group_latencies(g);
            (m.now().secs(), lat)
        };
        let (t1, l1) = run();
        let (t2, l2) = run();
        assert_eq!(t1, t2);
        assert_eq!(l1, l2);
    }

    #[test]
    fn oversized_hits_time_out() {
        // A comparison group of 20 items = ~76 work units; nobody
        // accepts that for $0.01 (§4.2.2's stalled experiment).
        let mut truth = GroundTruth::new();
        let items = truth.new_items(20);
        for (i, &it) in items.iter().enumerate() {
            truth.set_score(it, "size", i as f64);
        }
        let cfg = CrowdConfig::default();
        let mut m = Marketplace::new(&cfg, truth);
        let g = m.post_group(vec![HitSpec::new(
            vec![Question::CompareGroup {
                items,
                dimension: "size".into(),
            }],
            HitKind::SortCompare,
        )]);
        let outcome = m.run(4.0 * 3600.0); // four virtual hours
        assert_eq!(outcome, RunOutcome::TimedOut);
        assert!(m.group_outstanding(g) > 0);
    }

    #[test]
    fn fewer_hits_complete_faster() {
        // 200 single-question HITs vs 20 ten-question HITs: the batched
        // group has 10x fewer HITs and should finish sooner (Figure 4).
        let elapsed = |batch: usize| {
            let mut truth = GroundTruth::new();
            let items = truth.new_items(200);
            for &it in &items {
                truth.set_predicate(
                    it,
                    "p",
                    PredicateTruth {
                        value: true,
                        error_rate: 0.05,
                    },
                );
            }
            let cfg = CrowdConfig::default();
            let mut m = Marketplace::new(&cfg, truth);
            let specs: Vec<HitSpec> = items
                .chunks(batch)
                .map(|chunk| {
                    HitSpec::new(
                        chunk
                            .iter()
                            .map(|&it| Question::Filter {
                                item: it,
                                predicate: "p".into(),
                            })
                            .collect(),
                        HitKind::Filter,
                    )
                })
                .collect();
            let g = m.post_group(specs);
            assert_eq!(m.run_to_completion(), RunOutcome::Completed);
            let lats = m.group_latencies(g);
            lats.iter().cloned().fold(0.0, f64::max)
        };
        let unbatched = elapsed(1);
        let batched = elapsed(10);
        assert!(
            batched < unbatched,
            "batched={batched} unbatched={unbatched}"
        );
    }

    #[test]
    fn latency_tail_is_disproportionate() {
        // Figure 4's "last 5% of tasks take the last ~half of the wait"
        // effect: p100 should sit well above p50.
        let (mut m, items) = small_market(60);
        let g = m.post_group(filter_specs(&items));
        m.run_to_completion();
        let lats = m.group_latencies(g);
        let p50 = qurk_metrics_percentile(&lats, 50.0);
        let p100 = qurk_metrics_percentile(&lats, 100.0);
        assert!(p100 > p50 * 1.5, "p50={p50} p100={p100}");
    }

    // Local percentile to avoid a dev-dependency cycle with qurk-metrics.
    fn qurk_metrics_percentile(xs: &[f64], p: f64) -> f64 {
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = (p / 100.0 * (v.len() - 1) as f64).round() as usize;
        v[rank.min(v.len() - 1)]
    }

    #[test]
    fn drain_returns_only_new() {
        let (mut m, items) = small_market(4);
        let _ = m.post_group(filter_specs(&items));
        m.run_to_completion();
        let first = m.drain_new_assignments();
        assert_eq!(first.len(), 20);
        assert!(m.drain_new_assignments().is_empty());
    }

    #[test]
    #[should_panic(expected = "assignments must be positive")]
    fn zero_assignments_rejected() {
        let (mut m, items) = small_market(1);
        m.post_group_with_assignments(filter_specs(&items), 0);
    }

    #[test]
    #[should_panic(expected = "HIT must contain questions")]
    fn empty_hit_rejected() {
        let (mut m, _) = small_market(1);
        m.post_group(vec![HitSpec::new(vec![], HitKind::Filter)]);
    }

    #[test]
    fn evening_runs_differ_from_morning() {
        let latency_at = |start: f64| {
            let mut truth = GroundTruth::new();
            let items = truth.new_items(30);
            for &it in &items {
                truth.set_predicate(
                    it,
                    "p",
                    PredicateTruth {
                        value: true,
                        error_rate: 0.05,
                    },
                );
            }
            let mut cfg = CrowdConfig::default();
            cfg.sim.start_hour = start;
            let mut m = Marketplace::new(&cfg, truth);
            let g = m.post_group(
                items
                    .iter()
                    .map(|&it| {
                        HitSpec::new(
                            vec![Question::Filter {
                                item: it,
                                predicate: "p".into(),
                            }],
                            HitKind::Filter,
                        )
                    })
                    .collect(),
            );
            m.run_to_completion();
            let l = m.group_latencies(g);
            l.iter().sum::<f64>() / l.len() as f64
        };
        // 4 AM has much lower arrival rates than noon; latency higher.
        let night = latency_at(3.0);
        let noon = latency_at(11.0);
        assert!(night > noon, "night={night} noon={noon}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::question::Question;
    use crate::truth::PredicateTruth;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Marketplace invariants hold for arbitrary small workloads:
        /// exact assignment counts, distinct workers per HIT, ledger
        /// consistency, monotone virtual time, non-negative latencies.
        #[test]
        fn marketplace_invariants(
            num_items in 1usize..12,
            batch in 1usize..4,
            assignments in 1u32..7,
            seed in 0u64..1000,
        ) {
            let mut truth = GroundTruth::new();
            let items = truth.new_items(num_items);
            for (i, &it) in items.iter().enumerate() {
                truth.set_predicate(it, "p", PredicateTruth {
                    value: i % 2 == 0,
                    error_rate: 0.1,
                });
            }
            let cfg = CrowdConfig::default().with_seed(seed);
            let mut m = Marketplace::new(&cfg, truth);
            let specs: Vec<HitSpec> = items
                .chunks(batch)
                .map(|chunk| HitSpec::new(
                    chunk.iter().map(|&it| Question::Filter {
                        item: it,
                        predicate: "p".into(),
                    }).collect(),
                    HitKind::Filter,
                ))
                .collect();
            let num_hits = specs.len();
            let g = m.post_group_with_assignments(specs, assignments);
            prop_assert_eq!(m.run_to_completion(), RunOutcome::Completed);

            // Exact assignment counts.
            let collected: Vec<_> = m.assignments(g).collect();
            prop_assert_eq!(collected.len(), num_hits * assignments as usize);

            // Distinct workers per HIT; answers arity matches questions.
            use std::collections::HashMap;
            let mut per_hit: HashMap<HitId, Vec<WorkerId>> = HashMap::new();
            for a in &collected {
                per_hit.entry(a.hit).or_default().push(a.worker);
                prop_assert_eq!(a.answers.len(), m.hit(a.hit).questions.len());
                prop_assert!(a.submitted_at.secs() >= a.accepted_at.secs());
            }
            for workers in per_hit.values() {
                let set: HashSet<_> = workers.iter().collect();
                prop_assert_eq!(set.len(), workers.len());
            }

            // Ledger arithmetic.
            prop_assert_eq!(m.ledger.assignments_paid, collected.len() as u64);
            let expect = collected.len() as f64 * 0.015;
            prop_assert!((m.ledger.total() - expect).abs() < 1e-9);

            // Latencies non-negative.
            for l in m.group_latencies(g) {
                prop_assert!(l >= 0.0);
            }
        }
    }
}
