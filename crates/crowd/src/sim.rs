//! Discrete-event scaffolding: virtual time, event queue, and the
//! marketplace dynamics configuration.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time in seconds since the simulation epoch.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0.0);

    pub fn secs(self) -> f64 {
        self.0
    }

    pub fn hours(self) -> f64 {
        self.0 / 3600.0
    }

    pub fn plus_secs(self, secs: f64) -> SimTime {
        SimTime(self.0 + secs)
    }
}

/// Marketplace dynamics knobs.
///
/// Defaults are calibrated so that the paper-scale workloads complete in
/// fractions of an hour to a couple of hours of virtual time, matching
/// the magnitudes in Figure 4, and so that under-batched workloads with
/// many HITs take longer end-to-end than batched ones.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Mean worker arrivals per hour at the daily baseline.
    pub arrivals_per_hour: f64,
    /// Multiplier applied on top of the baseline by virtual time of day;
    /// index = hour of day 0..24. Models the paper's morning-vs-evening
    /// trial variance.
    pub time_of_day: [f64; 24],
    /// Hour of virtual day at which the simulation starts.
    pub start_hour: f64,
    /// Saturation constant for group engagement: a group with `r`
    /// remaining assignments attracts an arriving worker with
    /// probability `r / (r + half_saturation)`. Small remainders make
    /// groups unattractive — producing the paper's observation that
    /// "the last 50% of wait time is spent completing the last 5% of
    /// tasks".
    pub engagement_half_saturation: f64,
    /// Probability an accepted assignment is abandoned; it stays locked
    /// (blocking other workers) until the lock expires.
    pub abandon_probability: f64,
    /// Lock duration for abandoned assignments, seconds.
    pub abandon_lock_secs: f64,
    /// Zipf support/exponent for per-session assignment counts.
    pub session_zipf_n: u64,
    pub session_zipf_s: f64,
    /// Fixed per-HIT overhead seconds (reading instructions, submit).
    pub per_hit_overhead_secs: f64,
    /// Sharpness of the work-unit acceptance threshold: P(accept) is a
    /// logistic in (max_work_units − hit_work_units) / softness.
    pub acceptance_softness: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            arrivals_per_hour: 140.0,
            time_of_day: [
                0.5, 0.4, 0.35, 0.3, 0.3, 0.4, 0.6, 0.8, 1.0, 1.1, 1.15, 1.2, //
                1.2, 1.15, 1.1, 1.05, 1.0, 1.0, 1.1, 1.2, 1.15, 1.0, 0.8, 0.6,
            ],
            start_hour: 9.0,
            engagement_half_saturation: 6.0,
            abandon_probability: 0.03,
            abandon_lock_secs: 600.0,
            session_zipf_n: 120,
            session_zipf_s: 1.05,
            per_hit_overhead_secs: 6.0,
            acceptance_softness: 2.5,
        }
    }
}

impl SimConfig {
    /// Arrival-rate multiplier at virtual time `t`.
    pub fn rate_multiplier(&self, t: SimTime) -> f64 {
        let hour = (self.start_hour + t.hours()) % 24.0;
        let idx = (hour.floor() as usize) % 24;
        self.time_of_day[idx]
    }

    /// Evening preset: the paper ran one trial before 11 AM EST and one
    /// after 7 PM EST to measure time-of-day latency variance.
    pub fn evening(mut self) -> Self {
        self.start_hour = 19.0;
        self
    }

    /// Morning preset.
    pub fn morning(mut self) -> Self {
        self.start_hour = 9.0;
        self
    }
}

/// An event in the queue. Ordered by time (earliest first) with a
/// sequence number tie-break so ordering is total and deterministic.
#[derive(Debug, Clone)]
pub struct Event<P> {
    pub at: SimTime,
    pub seq: u64,
    pub payload: P,
}

impl<P> PartialEq for Event<P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<P> Eq for Event<P> {}

impl<P> PartialOrd for Event<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> Ord for Event<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .partial_cmp(&self.at)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic earliest-first event queue.
#[derive(Debug)]
pub struct EventQueue<P> {
    heap: BinaryHeap<Event<P>>,
    next_seq: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<P> EventQueue<P> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, at: SimTime, payload: P) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, payload });
    }

    pub fn pop(&mut self) -> Option<Event<P>> {
        self.heap.pop()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_arithmetic() {
        let t = SimTime::ZERO.plus_secs(7200.0);
        assert_eq!(t.hours(), 2.0);
        assert_eq!(t.secs(), 7200.0);
    }

    #[test]
    fn queue_pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(5.0), "c");
        q.push(SimTime(1.0), "a");
        q.push(SimTime(3.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(1.0), 1);
        q.push(SimTime(1.0), 2);
        q.push(SimTime(1.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn rate_multiplier_wraps_around_midnight() {
        let cfg = SimConfig::default();
        // Start 9am; +20h = 5am next day.
        let m = cfg.rate_multiplier(SimTime(20.0 * 3600.0));
        assert_eq!(m, cfg.time_of_day[5]);
    }

    #[test]
    fn evening_preset_changes_start() {
        let cfg = SimConfig::default().evening();
        assert_eq!(cfg.start_hour, 19.0);
        let m = cfg.rate_multiplier(SimTime::ZERO);
        assert_eq!(m, cfg.time_of_day[19]);
    }

    #[test]
    fn queue_len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(1.0), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
