//! Top-level crowd configuration.

use crate::pricing::Price;
use crate::sim::SimConfig;
use crate::worker::WorkerPoolConfig;

/// Everything needed to instantiate a [`crate::Marketplace`].
#[derive(Debug, Clone)]
pub struct CrowdConfig {
    pub workers: WorkerPoolConfig,
    pub sim: SimConfig,
    pub price: Price,
    /// Default assignments requested per HIT (the paper uses 5, and 10
    /// for the two-trial aggregates).
    pub assignments_per_hit: u32,
    /// Master seed for population generation and the event loop.
    pub seed: u64,
}

impl Default for CrowdConfig {
    fn default() -> Self {
        CrowdConfig {
            workers: WorkerPoolConfig::default(),
            sim: SimConfig::default(),
            price: Price::PAPER,
            assignments_per_hit: 5,
            seed: 0x9E37_79B9,
        }
    }
}

impl CrowdConfig {
    /// Same configuration, different seed (for repeated trials).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the assignments requested per HIT.
    pub fn with_assignments(mut self, n: u32) -> Self {
        self.assignments_per_hit = n;
        self
    }

    /// A clean-room population with no spammers or sloppy workers —
    /// useful for isolating algorithmic behaviour in tests.
    pub fn honest(mut self) -> Self {
        self.workers.spammer_fraction = 0.0;
        self.workers.sloppy_fraction = 0.0;
        self.workers.biased_fraction = 0.0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = CrowdConfig::default();
        assert_eq!(c.assignments_per_hit, 5);
        assert!((c.price.per_assignment() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn builders_compose() {
        let c = CrowdConfig::default()
            .with_seed(7)
            .with_assignments(10)
            .honest();
        assert_eq!(c.seed, 7);
        assert_eq!(c.assignments_per_hit, 10);
        assert_eq!(c.workers.spammer_fraction, 0.0);
    }
}
