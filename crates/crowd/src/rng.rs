//! Distribution samplers.
//!
//! The simulator needs Normal, Exponential, Poisson and Zipf draws. The
//! offline dependency set includes `rand` but not `rand_distr`, so the
//! handful of samplers required are implemented here with classic
//! algorithms (Box–Muller, inversion, Knuth, and a power-law inversion
//! for Zipf) and verified by moment tests.

use rand::{Rng, RngExt};

/// Standard normal draw via Box–Muller (polar-free form; two uniforms).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal draw with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Exponential draw with the given rate (mean `1/rate`) by inversion.
///
/// # Panics
/// Panics if `rate <= 0`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive, got {rate}");
    let u: f64 = rng.random::<f64>().max(1e-300);
    -u.ln() / rate
}

/// Poisson draw.
///
/// Knuth's multiplication method for small `lambda`; for large `lambda`
/// a rounded normal approximation (error negligible at the scales the
/// simulator uses it for — arrival counts per interval).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "lambda must be non-negative, got {lambda}");
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = normal(rng, lambda, lambda.sqrt());
        x.round().max(0.0) as u64
    }
}

/// Zipf draw over `1..=n` with exponent `s` by inversion over the
/// precomputed CDF. For repeated sampling prefer [`ZipfSampler`].
pub fn zipf<R: Rng + ?Sized>(rng: &mut R, n: u64, s: f64) -> u64 {
    ZipfSampler::new(n, s).sample(rng)
}

/// Precomputed Zipf sampler: `P(k) ∝ k^(−s)` for `k ∈ 1..=n`.
///
/// Used for per-worker session lengths: the paper observes "the number
/// of tasks completed by each worker is roughly Zipfian, with a small
/// number of workers completing a large fraction of the work" (§3.3.3).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf support must be non-empty");
        assert!(s.is_finite(), "zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in cdf.iter_mut() {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).unwrap())
        {
            Ok(i) => i as u64 + 1,
            Err(i) => (i as u64 + 1).min(self.cdf.len() as u64),
        }
    }
}

/// Sample `k` distinct indices from `0..n` (Floyd's algorithm). Order is
/// not specified but deterministic for a given RNG state.
pub fn sample_distinct<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n);
    let mut chosen = std::collections::HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.random_range(0..=j);
        let v = if chosen.contains(&t) { j } else { t };
        chosen.insert(v);
        out.push(v);
    }
    out
}

/// Fisher–Yates shuffle.
pub fn shuffle<R: Rng + ?Sized, T>(rng: &mut R, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn exponential_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| exponential(&mut r, 0.5)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_bad_rate() {
        exponential(&mut rng(), 0.0);
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut r = rng();
        let xs: Vec<u64> = (0..20_000).map(|_| poisson(&mut r, 4.0)).collect();
        let mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let mut r = rng();
        let xs: Vec<u64> = (0..5_000).map(|_| poisson(&mut r, 200.0)).collect();
        let mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
        assert!((mean - 200.0).abs() < 1.5, "mean={mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        assert_eq!(poisson(&mut rng(), 0.0), 0);
    }

    #[test]
    fn zipf_is_heavy_headed() {
        let mut r = rng();
        let sampler = ZipfSampler::new(100, 1.2);
        let xs: Vec<u64> = (0..20_000).map(|_| sampler.sample(&mut r)).collect();
        let ones = xs.iter().filter(|&&x| x == 1).count() as f64 / xs.len() as f64;
        let tens = xs.iter().filter(|&&x| x == 10).count() as f64 / xs.len() as f64;
        // P(1)/P(10) = 10^1.2 ~ 15.8
        assert!(ones > 5.0 * tens, "ones={ones} tens={tens}");
        assert!(xs.iter().all(|&x| (1..=100).contains(&x)));
    }

    #[test]
    fn sample_distinct_no_duplicates() {
        let mut r = rng();
        for _ in 0..100 {
            let s = sample_distinct(&mut r, 20, 10);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), 10);
            assert!(s.iter().all(|&x| x < 20));
        }
    }

    #[test]
    fn sample_distinct_k_clamped_to_n() {
        let mut r = rng();
        let s = sample_distinct(&mut r, 3, 10);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = rng();
        let mut xs: Vec<u32> = (0..50).collect();
        shuffle(&mut r, &mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn determinism_under_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(poisson(&mut a, 5.0), poisson(&mut b, 5.0));
        }
    }
}
