//! Pricing and accounting.
//!
//! The paper pays a fixed $0.01 per assignment, plus Amazon's half-cent
//! commission, "which costs $0.015 per assignment" (§3.3.2). The
//! system's objective function is to minimize the number of HITs
//! subject to queries actually completing (§2.6).

/// A per-assignment price in dollars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Price {
    /// Paid to the worker per assignment.
    pub reward: f64,
    /// Platform commission per assignment.
    pub commission: f64,
}

impl Price {
    /// The paper's pricing: $0.01 reward + $0.005 commission.
    pub const PAPER: Price = Price {
        reward: 0.01,
        commission: 0.005,
    };

    /// Total cost per assignment.
    pub fn per_assignment(&self) -> f64 {
        self.reward + self.commission
    }
}

impl Default for Price {
    fn default() -> Self {
        Price::PAPER
    }
}

/// Running account of marketplace spending.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Ledger {
    pub assignments_paid: u64,
    pub worker_payout: f64,
    pub commission: f64,
}

impl Ledger {
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Record payment for one completed assignment.
    pub fn charge(&mut self, price: Price) {
        self.assignments_paid += 1;
        self.worker_payout += price.reward;
        self.commission += price.commission;
    }

    /// Total dollars spent.
    pub fn total(&self) -> f64 {
        self.worker_payout + self.commission
    }
}

/// Cost of running `hits` HITs at `assignments_per_hit` assignments
/// under `price` — the arithmetic behind every cost figure in the paper
/// (e.g. 900 × 10 × $0.015 = $135 for the unbatched 30×30 join).
pub fn query_cost(hits: u64, assignments_per_hit: u64, price: Price) -> f64 {
    (hits * assignments_per_hit) as f64 * price.per_assignment()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_price_is_1_5_cents() {
        assert!((Price::PAPER.per_assignment() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn ledger_accumulates() {
        let mut l = Ledger::new();
        for _ in 0..10 {
            l.charge(Price::PAPER);
        }
        assert_eq!(l.assignments_paid, 10);
        assert!((l.worker_payout - 0.10).abs() < 1e-12);
        assert!((l.commission - 0.05).abs() < 1e-12);
        assert!((l.total() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn paper_naive_join_costs_135_dollars() {
        // §3.3.2: 900 comparisons, 10 assignments per pair, $0.015 each.
        let cost = query_cost(900, 10, Price::PAPER);
        assert!((cost - 135.0).abs() < 1e-9);
    }

    #[test]
    fn paper_celebrity_join_5_assignments_costs_67_50() {
        // §3.3.4: "without feature filters the cost would be $67.50 for
        // 5 assignments per HIT" (900 pairs).
        let cost = query_cost(900, 5, Price::PAPER);
        assert!((cost - 67.5).abs() < 1e-9);
    }
}
