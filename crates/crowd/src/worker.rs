//! Worker population and per-archetype answer models.
//!
//! The simulator's workers are a mixture of archetypes calibrated
//! against the aggregate behaviours the paper reports:
//!
//! * **Diligent** — low-noise perception; the majority of assignments.
//! * **Sloppy** — higher perceptual noise and more skipped grid pairs;
//!   "workers … attempt to game the marketplace by doing a minimal
//!   amount of work" (§1) sits between Sloppy and Spammer.
//! * **Spammer** — answers carry no information: constant or random
//!   buttons, no clicks in grid interfaces, constant ratings. The
//!   QualityAdjust combiner must identify these (§3.3.2: "QA includes
//!   filters for identifying spammers and sloppy workers, and these
//!   larger, batched schemes are more attractive to workers that
//!   quickly and inaccurately complete the tasks").
//! * **Biased** — systematically shifted answers (Likert offset, a
//!   tendency toward "No"); informative once the EM bias correction
//!   decodes them.
//!
//! All randomness flows through the caller's RNG so runs are
//! reproducible.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::question::{Answer, HitContext, HitKind, Question, UNKNOWN};
use crate::rng::{normal, shuffle, ZipfSampler};
use crate::truth::{GroundTruth, ItemId};

/// Worker identifier (dense index into the pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub usize);

/// How a spammer fills out forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpamStrategy {
    /// Clicks the affirmative button everywhere.
    AlwaysYes,
    /// Clicks the negative button everywhere (in grid interfaces this
    /// is the "no matches" checkbox — the laziest possible submit).
    AlwaysNo,
    /// Uniformly random buttons.
    Random,
    /// The same Likert value / category every time.
    Constant,
}

/// Behavioural class of a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerArchetype {
    Diligent,
    Sloppy,
    Spammer(SpamStrategy),
    /// Informative but systematically biased.
    Biased,
}

/// A simulated worker.
#[derive(Debug, Clone)]
pub struct Worker {
    pub id: WorkerId,
    pub archetype: WorkerArchetype,
    /// Perceptual noise multiplier (1.0 = median careful worker).
    pub noise: f64,
    /// Additive Likert bias in scale points.
    pub rating_bias: f64,
    /// Seconds of work per work-unit (speed).
    pub secs_per_unit: f64,
    /// Largest HIT (in work units) this worker will accept for the
    /// fixed $0.01 price. §4.2.2: acceptance collapses for comparison
    /// groups above size 10.
    pub max_work_units: f64,
    /// Number of assignments completed so far (for §3.3.3 analysis).
    pub completed: usize,
}

impl Worker {
    /// Answer every question in a HIT.
    pub fn answer_hit(
        &self,
        questions: &[Question],
        ctx: HitContext,
        truth: &GroundTruth,
        rng: &mut StdRng,
    ) -> Vec<Answer> {
        questions
            .iter()
            .map(|q| self.answer(q, ctx, truth, rng))
            .collect()
    }

    /// Answer a single question.
    pub fn answer(
        &self,
        question: &Question,
        ctx: HitContext,
        truth: &GroundTruth,
        rng: &mut StdRng,
    ) -> Answer {
        match question {
            Question::Filter { item, predicate } => {
                Answer::Bool(self.answer_filter(*item, predicate, truth, rng))
            }
            Question::Feature {
                item,
                feature,
                num_options,
            } => {
                Answer::Category(self.answer_feature(*item, feature, *num_options, ctx, truth, rng))
            }
            Question::Generative { item, field } => {
                Answer::Text(self.answer_generative(*item, field, truth, rng))
            }
            Question::JoinPair { left, right } => {
                Answer::Bool(self.answer_join(*left, *right, ctx, truth, rng))
            }
            Question::CompareGroup { items, dimension } => {
                Answer::Ordering(self.answer_compare(items, dimension, truth, rng))
            }
            Question::Rate {
                item,
                dimension,
                scale,
                ..
            } => Answer::Rating(self.answer_rate(*item, dimension, *scale, truth, rng)),
            Question::PickBest {
                items,
                dimension,
                want_max,
            } => Answer::Pick(self.answer_pick(items, dimension, *want_max, truth, rng)),
        }
    }

    // ---- per-question models ----

    fn answer_filter(
        &self,
        item: ItemId,
        predicate: &str,
        truth: &GroundTruth,
        rng: &mut StdRng,
    ) -> bool {
        let t = truth.predicate(item, predicate);
        let (value, base_err) = match t {
            Some(p) => (p.value, p.error_rate),
            None => (false, 0.5), // unregistered predicate: coin flip
        };
        match self.archetype {
            WorkerArchetype::Spammer(s) => spam_bool(s, rng),
            WorkerArchetype::Biased => {
                // Leans "No": flips positive answers 15% of the time on
                // top of the base error.
                let err = (base_err * self.noise).min(0.45);
                let mut v = flip(value, err, rng);
                if v && rng.random::<f64>() < 0.15 {
                    v = false;
                }
                v
            }
            _ => {
                let err = (base_err * self.noise).min(0.45);
                flip(value, err, rng)
            }
        }
    }

    fn answer_feature(
        &self,
        item: ItemId,
        feature: &str,
        num_options: usize,
        ctx: HitContext,
        truth: &GroundTruth,
        rng: &mut StdRng,
    ) -> usize {
        match self.archetype {
            WorkerArchetype::Spammer(SpamStrategy::Constant) => 0,
            WorkerArchetype::Spammer(_) => rng.random_range(0..num_options.max(1)),
            _ => {
                let ft = if matches!(ctx.kind, HitKind::FeatureCombined) {
                    truth.feature_combined(item, feature)
                } else {
                    truth.feature(item, feature)
                };
                let Some(ft) = ft else {
                    return rng.random_range(0..num_options.max(1));
                };
                // Sloppy workers blend the careful distribution with
                // uniform noise; diligent use it as-is.
                let uniform_mix = match self.archetype {
                    WorkerArchetype::Sloppy => 0.12,
                    WorkerArchetype::Biased => 0.06,
                    _ => 0.0,
                };
                let k = num_options.max(1);
                let u: f64 = rng.random();
                if u < uniform_mix {
                    return rng.random_range(0..k);
                }
                let draw: f64 = rng.random();
                let mut acc = 0.0;
                for (i, &p) in ft.report_probs.iter().enumerate() {
                    acc += p;
                    if draw < acc {
                        return if i >= k { UNKNOWN } else { i };
                    }
                }
                ft.value
            }
        }
    }

    fn answer_generative(
        &self,
        item: ItemId,
        field: &str,
        truth: &GroundTruth,
        rng: &mut StdRng,
    ) -> String {
        if let WorkerArchetype::Spammer(_) = self.archetype {
            return "asdf".to_owned();
        }
        let Some(tt) = truth.text(item, field) else {
            return String::new();
        };
        let draw: f64 = rng.random();
        let mut acc = 0.0;
        for (s, p) in &tt.variants {
            acc += p;
            if draw < acc {
                return s.clone();
            }
        }
        tt.variants
            .first()
            .map(|(s, _)| s.clone())
            .unwrap_or_default()
    }

    fn answer_join(
        &self,
        left: ItemId,
        right: ItemId,
        ctx: HitContext,
        truth: &GroundTruth,
        rng: &mut StdRng,
    ) -> bool {
        let same = truth.same_entity(left, right);
        if let WorkerArchetype::Spammer(s) = self.archetype {
            // In grid interfaces the lazy submit is "no matches".
            if matches!(ctx.kind, HitKind::JoinSmart { .. }) {
                return false;
            }
            return spam_bool(s, rng);
        }

        // Interface-driven miss model. Grid interfaces cause genuine
        // workers to overlook matching pairs as the grid grows; stacked
        // batches cause mild fatigue.
        let miss_mult = match ctx.kind {
            HitKind::JoinSmart { rows, cols } => {
                // Grows with grid size but saturates: 2x2 behaves like
                // Simple, 3x3 roughly doubles the miss rate (the
                // paper's 53% per-vote TP), and 5x5 degrades only a
                // little further (workers scan columns, not cells —
                // §5.2 found 5x5 acceptable).
                let cells = (rows * cols) as f64;
                1.0 + (0.2 * (cells - 4.0).max(0.0)).min(1.4)
            }
            HitKind::JoinNaive => 1.0 + 0.02 * ctx.total_work_units,
            _ => 1.0,
        };

        // Calibrated to the paper's measured per-vote rates: the average
        // worker answered matching pairs correctly 78% of the time in
        // the Simple interface and 53% in Smart 3x3 (§3.3.2).
        let base_miss = match self.archetype {
            WorkerArchetype::Diligent => 0.15,
            WorkerArchetype::Sloppy => 0.35,
            WorkerArchetype::Biased => 0.20,
            WorkerArchetype::Spammer(_) => unreachable!(),
        } * self.noise
            * miss_mult;

        if same {
            flip(true, base_miss.min(0.85), rng)
        } else {
            // False positives scale with entity similarity; nearly zero
            // for dissimilar pairs (Table 1: 376–380/380 true negatives).
            let sim = truth.similarity(left, right);
            let fp = (0.004 + 0.10 * sim * sim) * self.noise;
            rng.random::<f64>() < fp.min(0.5)
        }
    }

    fn answer_compare(
        &self,
        items: &[ItemId],
        dimension: &str,
        truth: &GroundTruth,
        rng: &mut StdRng,
    ) -> Vec<ItemId> {
        if let WorkerArchetype::Spammer(_) = self.archetype {
            let mut v = items.to_vec();
            shuffle(rng, &mut v);
            return v;
        }
        let mut scored: Vec<(ItemId, f64)> = items
            .iter()
            .map(|&i| (i, self.perceive(i, dimension, truth, rng)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.into_iter().map(|(i, _)| i).collect()
    }

    fn answer_rate(
        &self,
        item: ItemId,
        dimension: &str,
        scale: u8,
        truth: &GroundTruth,
        rng: &mut StdRng,
    ) -> u8 {
        if let WorkerArchetype::Spammer(s) = self.archetype {
            return match s {
                SpamStrategy::Constant | SpamStrategy::AlwaysYes => scale,
                SpamStrategy::AlwaysNo => 1,
                SpamStrategy::Random => rng.random_range(1..=scale),
            };
        }
        let mult = truth.dimension_params(dimension).rating_noise_mult;
        let perceived = self.perceive_with(item, dimension, mult, truth, rng);
        // Map [0,1] perception onto the Likert scale with the worker's
        // personal bias; quantization is the Rate operator's fundamental
        // granularity limit (§4.2.2).
        let raw = 1.0 + perceived.clamp(0.0, 1.0) * (scale as f64 - 1.0) + self.rating_bias;
        raw.round().clamp(1.0, scale as f64) as u8
    }

    fn answer_pick(
        &self,
        items: &[ItemId],
        dimension: &str,
        want_max: bool,
        truth: &GroundTruth,
        rng: &mut StdRng,
    ) -> ItemId {
        if let WorkerArchetype::Spammer(_) = self.archetype {
            return items[rng.random_range(0..items.len())];
        }
        let scored = items
            .iter()
            .map(|&i| (i, self.perceive(i, dimension, truth, rng)));
        let pick = if want_max {
            scored.max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        } else {
            scored.min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        };
        pick.map(|(i, _)| i).expect("non-empty pick batch")
    }

    /// Thurstonian perception: the item's range-normalized latent score
    /// plus Gaussian noise scaled by dimension ambiguity and worker
    /// skill. Pure-noise dimensions (Q5) carry no signal at all.
    fn perceive(
        &self,
        item: ItemId,
        dimension: &str,
        truth: &GroundTruth,
        rng: &mut StdRng,
    ) -> f64 {
        self.perceive_with(item, dimension, 1.0, truth, rng)
    }

    /// [`Self::perceive`] with an extra noise multiplier (used for
    /// absolute judgments, which are noisier than comparisons).
    fn perceive_with(
        &self,
        item: ItemId,
        dimension: &str,
        noise_mult: f64,
        truth: &GroundTruth,
        rng: &mut StdRng,
    ) -> f64 {
        let params = truth.dimension_params(dimension);
        if params.pure_noise {
            return rng.random::<f64>();
        }
        let score = truth.score(item, dimension).unwrap_or(0.5);
        let (lo, hi) = truth.score_range(dimension).unwrap_or((0.0, 1.0));
        let norm = if hi > lo {
            (score - lo) / (hi - lo)
        } else {
            0.5
        };
        let sloppy_mult = match self.archetype {
            WorkerArchetype::Sloppy => 2.5,
            _ => 1.0,
        };
        norm + normal(
            rng,
            0.0,
            params.ambiguity * self.noise * sloppy_mult * noise_mult,
        )
    }
}

fn flip(value: bool, err: f64, rng: &mut StdRng) -> bool {
    if rng.random::<f64>() < err {
        !value
    } else {
        value
    }
}

fn spam_bool(s: SpamStrategy, rng: &mut StdRng) -> bool {
    match s {
        SpamStrategy::AlwaysYes | SpamStrategy::Constant => true,
        SpamStrategy::AlwaysNo => false,
        SpamStrategy::Random => rng.random(),
    }
}

/// Mixture proportions and trait distributions for a worker population.
#[derive(Debug, Clone)]
pub struct WorkerPoolConfig {
    pub num_workers: usize,
    /// Fraction of the population per archetype; must sum to ≤ 1, the
    /// remainder becomes Diligent.
    pub sloppy_fraction: f64,
    pub spammer_fraction: f64,
    pub biased_fraction: f64,
    /// Zipf exponent for how often individual workers show up (§3.3.3:
    /// task counts per worker are roughly Zipfian).
    pub arrival_zipf_exponent: f64,
    /// Median seconds per work unit.
    pub median_secs_per_unit: f64,
    /// Median largest acceptable HIT size in work units at $0.01.
    pub median_max_work_units: f64,
}

impl Default for WorkerPoolConfig {
    fn default() -> Self {
        WorkerPoolConfig {
            num_workers: 150,
            sloppy_fraction: 0.22,
            spammer_fraction: 0.10,
            biased_fraction: 0.08,
            arrival_zipf_exponent: 1.05,
            median_secs_per_unit: 12.0,
            median_max_work_units: 13.0,
        }
    }
}

/// The worker population plus the arrival-propensity sampler.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    workers: Vec<Worker>,
    arrival_sampler: ZipfSampler,
    /// Permutation mapping Zipf rank -> worker index, so heavy workers
    /// are not always the low archetype indices.
    rank_to_worker: Vec<usize>,
}

impl WorkerPool {
    /// Generate a population deterministically from a seed.
    pub fn generate(config: &WorkerPoolConfig, seed: u64) -> Self {
        assert!(config.num_workers > 0, "empty worker pool");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0001);
        let n = config.num_workers;
        let mut workers = Vec::with_capacity(n);
        // Integer archetype boundaries (rounded) avoid float-sum drift.
        let spam_end = (config.spammer_fraction * n as f64).round() as usize;
        let sloppy_end = spam_end + (config.sloppy_fraction * n as f64).round() as usize;
        let biased_end = sloppy_end + (config.biased_fraction * n as f64).round() as usize;
        for i in 0..n {
            let archetype = if i < spam_end {
                let strat = match i % 4 {
                    0 => SpamStrategy::AlwaysYes,
                    1 => SpamStrategy::AlwaysNo,
                    2 => SpamStrategy::Constant,
                    _ => SpamStrategy::Random,
                };
                WorkerArchetype::Spammer(strat)
            } else if i < sloppy_end {
                WorkerArchetype::Sloppy
            } else if i < biased_end {
                WorkerArchetype::Biased
            } else {
                WorkerArchetype::Diligent
            };
            let noise = (normal(&mut rng, 1.0, 0.25)).clamp(0.4, 2.5);
            let rating_bias = normal(&mut rng, 0.0, 0.5);
            let secs = (config.median_secs_per_unit * normal(&mut rng, 1.0, 0.3)).clamp(3.0, 60.0);
            let max_wu = (config.median_max_work_units * normal(&mut rng, 1.0, 0.35)).max(2.0);
            workers.push(Worker {
                id: WorkerId(i),
                archetype,
                noise,
                rating_bias,
                secs_per_unit: secs,
                max_work_units: max_wu,
                completed: 0,
            });
        }
        let mut rank_to_worker: Vec<usize> = (0..n).collect();
        shuffle(&mut rng, &mut rank_to_worker);
        // Diligent workers are disproportionately prolific: fill the
        // head ranks (the heavy end of the Zipf) with diligent workers,
        // lowest-noise first. This produces the small positive
        // accuracy-vs-volume slope of §3.3.3 (R² = 0.028, p < .05 in
        // the paper) — prolific workers are *slightly* better, not
        // because practice helps but because careful workers stick
        // around.
        let head = (n / 4).max(1);
        for r in 0..head {
            if let Some(pos) = rank_to_worker[r..]
                .iter()
                .position(|&w| matches!(workers[w].archetype, WorkerArchetype::Diligent))
            {
                rank_to_worker.swap(r, r + pos);
            }
        }
        rank_to_worker[..head].sort_by(|&a, &b| {
            workers[a]
                .noise
                .partial_cmp(&workers[b].noise)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        WorkerPool {
            workers,
            arrival_sampler: ZipfSampler::new(n as u64, config.arrival_zipf_exponent),
            rank_to_worker,
        }
    }

    /// Pick the next arriving worker (Zipf-weighted).
    pub fn sample_arrival(&self, rng: &mut StdRng) -> WorkerId {
        let rank = self.arrival_sampler.sample(rng) as usize - 1;
        WorkerId(self.rank_to_worker[rank])
    }

    pub fn get(&self, id: WorkerId) -> &Worker {
        &self.workers[id.0]
    }

    pub fn get_mut(&mut self, id: WorkerId) -> &mut Worker {
        &mut self.workers[id.0]
    }

    pub fn len(&self) -> usize {
        self.workers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::{DimensionParams, PredicateTruth};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn diligent() -> Worker {
        Worker {
            id: WorkerId(0),
            archetype: WorkerArchetype::Diligent,
            noise: 1.0,
            rating_bias: 0.0,
            secs_per_unit: 10.0,
            max_work_units: 10.0,
            completed: 0,
        }
    }

    fn ctx(kind: HitKind) -> HitContext {
        HitContext {
            kind,
            total_work_units: 1.0,
        }
    }

    #[test]
    fn pool_generation_is_deterministic() {
        let cfg = WorkerPoolConfig::default();
        let a = WorkerPool::generate(&cfg, 7);
        let b = WorkerPool::generate(&cfg, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.workers().iter().zip(b.workers()) {
            assert_eq!(x.archetype, y.archetype);
            assert_eq!(x.noise, y.noise);
        }
    }

    #[test]
    fn pool_mixture_fractions_respected() {
        let cfg = WorkerPoolConfig {
            num_workers: 200,
            spammer_fraction: 0.10,
            sloppy_fraction: 0.20,
            biased_fraction: 0.05,
            ..Default::default()
        };
        let pool = WorkerPool::generate(&cfg, 1);
        let spam = pool
            .workers()
            .iter()
            .filter(|w| matches!(w.archetype, WorkerArchetype::Spammer(_)))
            .count();
        assert_eq!(spam, 20);
        let sloppy = pool
            .workers()
            .iter()
            .filter(|w| matches!(w.archetype, WorkerArchetype::Sloppy))
            .count();
        assert_eq!(sloppy, 40);
    }

    #[test]
    fn zipf_arrivals_concentrate() {
        let pool = WorkerPool::generate(&WorkerPoolConfig::default(), 3);
        let mut r = rng();
        let mut counts = vec![0usize; pool.len()];
        for _ in 0..20_000 {
            counts[pool.sample_arrival(&mut r).0] += 1;
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = sorted[..15].iter().sum();
        // Top 10% of workers should take a large share (Zipfian).
        assert!(
            top10 as f64 > 0.35 * 20_000.0,
            "top-15 share {} too small",
            top10
        );
    }

    #[test]
    fn filter_answers_track_truth() {
        let mut gt = GroundTruth::new();
        let item = gt.new_item();
        gt.set_predicate(
            item,
            "isFemale",
            PredicateTruth {
                value: true,
                error_rate: 0.05,
            },
        );
        let w = diligent();
        let mut r = rng();
        let yes = (0..2000)
            .filter(|_| {
                w.answer(
                    &Question::Filter {
                        item,
                        predicate: "isFemale".into(),
                    },
                    ctx(HitKind::Filter),
                    &gt,
                    &mut r,
                )
                .as_bool()
                .unwrap()
            })
            .count();
        let rate = yes as f64 / 2000.0;
        assert!((rate - 0.95).abs() < 0.03, "rate={rate}");
    }

    #[test]
    fn join_same_entity_mostly_yes_diff_mostly_no() {
        let mut gt = GroundTruth::new();
        let a = gt.new_item();
        let b = gt.new_item();
        let c = gt.new_item();
        gt.set_entity(a, crate::truth::EntityId(1));
        gt.set_entity(b, crate::truth::EntityId(1));
        gt.set_entity(c, crate::truth::EntityId(2));
        gt.set_default_similarity(0.1);
        let w = diligent();
        let mut r = rng();
        let mut same_yes = 0;
        let mut diff_yes = 0;
        for _ in 0..2000 {
            if w.answer(
                &Question::JoinPair { left: a, right: b },
                ctx(HitKind::JoinSimple),
                &gt,
                &mut r,
            )
            .as_bool()
            .unwrap()
            {
                same_yes += 1;
            }
            if w.answer(
                &Question::JoinPair { left: a, right: c },
                ctx(HitKind::JoinSimple),
                &gt,
                &mut r,
            )
            .as_bool()
            .unwrap()
            {
                diff_yes += 1;
            }
        }
        // A diligent worker matches ~85% of true pairs (the paper's
        // population-wide average is 78%) and rarely claims false ones.
        assert!(same_yes > 1600, "same_yes={same_yes}");
        assert!(diff_yes < 60, "diff_yes={diff_yes}");
    }

    #[test]
    fn smart_grid_increases_misses() {
        let mut gt = GroundTruth::new();
        let a = gt.new_item();
        let b = gt.new_item();
        gt.set_entity(a, crate::truth::EntityId(1));
        gt.set_entity(b, crate::truth::EntityId(1));
        let w = diligent();
        let mut r = rng();
        let count_yes = |kind: HitKind, r: &mut StdRng| {
            (0..3000)
                .filter(|_| {
                    w.answer(&Question::JoinPair { left: a, right: b }, ctx(kind), &gt, r)
                        .as_bool()
                        .unwrap()
                })
                .count()
        };
        let simple = count_yes(HitKind::JoinSimple, &mut r);
        let smart2 = count_yes(HitKind::JoinSmart { rows: 2, cols: 2 }, &mut r);
        let smart3 = count_yes(HitKind::JoinSmart { rows: 3, cols: 3 }, &mut r);
        assert!(smart2 <= simple + 60, "smart2={smart2} simple={simple}");
        assert!(smart3 < smart2, "smart3={smart3} smart2={smart2}");
    }

    #[test]
    fn spammers_are_uninformative() {
        let mut gt = GroundTruth::new();
        let a = gt.new_item();
        let b = gt.new_item();
        gt.set_entity(a, crate::truth::EntityId(1));
        gt.set_entity(b, crate::truth::EntityId(2));
        let w = Worker {
            archetype: WorkerArchetype::Spammer(SpamStrategy::AlwaysYes),
            ..diligent()
        };
        let mut r = rng();
        let ans = w.answer(
            &Question::JoinPair { left: a, right: b },
            ctx(HitKind::JoinSimple),
            &gt,
            &mut r,
        );
        assert_eq!(ans, Answer::Bool(true));
        // In smart grids spammers submit "no matches".
        let ans = w.answer(
            &Question::JoinPair { left: a, right: b },
            ctx(HitKind::JoinSmart { rows: 3, cols: 3 }),
            &gt,
            &mut r,
        );
        assert_eq!(ans, Answer::Bool(false));
    }

    #[test]
    fn compare_orders_crisp_dimension_correctly() {
        let mut gt = GroundTruth::new();
        let items = gt.new_items(5);
        gt.define_dimension("area", DimensionParams::crisp(0.02));
        for (i, &it) in items.iter().enumerate() {
            gt.set_score(it, "area", i as f64);
        }
        let w = diligent();
        let mut r = rng();
        let q = Question::CompareGroup {
            items: items.clone(),
            dimension: "area".into(),
        };
        let mut correct = 0;
        for _ in 0..200 {
            let ord = w.answer(&q, ctx(HitKind::SortCompare), &gt, &mut r);
            let ord = ord.as_ordering().unwrap().to_vec();
            let want: Vec<ItemId> = items.iter().rev().copied().collect();
            if ord == want {
                correct += 1;
            }
        }
        assert!(correct > 180, "correct={correct}");
    }

    #[test]
    fn ambiguous_dimension_orders_noisily() {
        let mut gt = GroundTruth::new();
        let items = gt.new_items(5);
        gt.define_dimension("saturn", DimensionParams::crisp(1.5));
        for (i, &it) in items.iter().enumerate() {
            gt.set_score(it, "saturn", i as f64);
        }
        let w = diligent();
        let mut r = rng();
        let q = Question::CompareGroup {
            items: items.clone(),
            dimension: "saturn".into(),
        };
        let mut exact = 0;
        for _ in 0..200 {
            let ord = w.answer(&q, ctx(HitKind::SortCompare), &gt, &mut r);
            let want: Vec<ItemId> = items.iter().rev().copied().collect();
            if ord.as_ordering().unwrap() == want.as_slice() {
                exact += 1;
            }
        }
        assert!(exact < 100, "too deterministic for ambiguous dim: {exact}");
    }

    #[test]
    fn ratings_monotone_in_truth() {
        let mut gt = GroundTruth::new();
        let items = gt.new_items(10);
        gt.define_dimension("size", DimensionParams::crisp(0.05));
        for (i, &it) in items.iter().enumerate() {
            gt.set_score(it, "size", i as f64);
        }
        let w = diligent();
        let mut r = rng();
        let avg = |it: ItemId, r: &mut StdRng| -> f64 {
            let q = Question::Rate {
                item: it,
                dimension: "size".into(),
                scale: 7,
                context: vec![],
            };
            (0..300)
                .map(|_| {
                    w.answer(&q, ctx(HitKind::SortRate), &gt, r)
                        .as_rating()
                        .unwrap() as f64
                })
                .sum::<f64>()
                / 300.0
        };
        let lo = avg(items[0], &mut r);
        let hi = avg(items[9], &mut r);
        assert!(lo < 2.0, "lo={lo}");
        assert!(hi > 6.0, "hi={hi}");
    }

    #[test]
    fn rating_quantizes_nearby_items_together() {
        // 50 items on a 7-point scale: adjacent items frequently collide
        // (the granularity ceiling of §4.2.2).
        let mut gt = GroundTruth::new();
        let items = gt.new_items(50);
        gt.define_dimension("size", DimensionParams::crisp(0.01));
        for (i, &it) in items.iter().enumerate() {
            gt.set_score(it, "size", i as f64);
        }
        let w = diligent();
        let mut r = rng();
        let q0 = Question::Rate {
            item: items[20],
            dimension: "size".into(),
            scale: 7,
            context: vec![],
        };
        let q1 = Question::Rate {
            item: items[21],
            dimension: "size".into(),
            scale: 7,
            context: vec![],
        };
        let a = w
            .answer(&q0, ctx(HitKind::SortRate), &gt, &mut r)
            .as_rating()
            .unwrap();
        let b = w
            .answer(&q1, ctx(HitKind::SortRate), &gt, &mut r)
            .as_rating()
            .unwrap();
        assert!((a as i16 - b as i16).abs() <= 1);
    }

    #[test]
    fn pick_best_finds_max() {
        let mut gt = GroundTruth::new();
        let items = gt.new_items(5);
        gt.define_dimension("size", DimensionParams::crisp(0.02));
        for (i, &it) in items.iter().enumerate() {
            gt.set_score(it, "size", i as f64);
        }
        let w = diligent();
        let mut r = rng();
        let q = Question::PickBest {
            items: items.clone(),
            dimension: "size".into(),
            want_max: true,
        };
        let picks = (0..100)
            .filter(|_| {
                w.answer(&q, ctx(HitKind::PickBest), &gt, &mut r).as_pick() == Some(items[4])
            })
            .count();
        assert!(picks > 90, "picks={picks}");
        let q = Question::PickBest {
            items: items.clone(),
            dimension: "size".into(),
            want_max: false,
        };
        let picks_min = (0..100)
            .filter(|_| {
                w.answer(&q, ctx(HitKind::PickBest), &gt, &mut r).as_pick() == Some(items[0])
            })
            .count();
        assert!(picks_min > 90, "picks_min={picks_min}");
    }

    #[test]
    fn generative_text_draws_variants() {
        let mut gt = GroundTruth::new();
        let item = gt.new_item();
        gt.set_text(
            item,
            "common",
            crate::truth::TextTruth {
                variants: vec![("Whale".into(), 0.7), ("WHALE ".into(), 0.3)],
            },
        );
        let w = diligent();
        let mut r = rng();
        let q = Question::Generative {
            item,
            field: "common".into(),
        };
        let mut saw_primary = false;
        let mut saw_alt = false;
        for _ in 0..200 {
            match w.answer(&q, ctx(HitKind::Generative), &gt, &mut r) {
                Answer::Text(t) if t == "Whale" => saw_primary = true,
                Answer::Text(t) if t == "WHALE " => saw_alt = true,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_primary && saw_alt);
    }

    #[test]
    fn pure_noise_dimension_is_random() {
        let mut gt = GroundTruth::new();
        let items = gt.new_items(4);
        gt.define_dimension("rand", DimensionParams::pure_noise());
        for (i, &it) in items.iter().enumerate() {
            gt.set_score(it, "rand", i as f64);
        }
        let w = diligent();
        let mut r = rng();
        let q = Question::CompareGroup {
            items: items.clone(),
            dimension: "rand".into(),
        };
        let mut firsts = std::collections::HashSet::new();
        for _ in 0..100 {
            let ord = w.answer(&q, ctx(HitKind::SortCompare), &gt, &mut r);
            firsts.insert(ord.as_ordering().unwrap()[0]);
        }
        assert!(
            firsts.len() >= 3,
            "pure noise should vary: {}",
            firsts.len()
        );
    }
}
