//! # qurk-crowd
//!
//! A discrete-event simulator of a crowdsourcing marketplace, standing
//! in for Amazon Mechanical Turk in the reproduction of *Human-powered
//! Sorts and Joins* (Marcus et al., VLDB 2011).
//!
//! ## Why a simulator
//!
//! The paper's experiments ran live HITs against MTurk's 2011 worker
//! population. That population is unavailable (and non-replayable), so
//! this crate provides a *generative model* of the behaviours the paper
//! measures:
//!
//! * **Worker quality** — a mixture of diligent, sloppy, biased and
//!   spammer archetypes ([`worker`]); per-question answer models are
//!   grounded in a hidden [`truth::GroundTruth`] oracle (Thurstonian
//!   comparisons, noisy Likert ratings, similarity-driven join
//!   confusion, per-item categorical confusion with `UNKNOWN`).
//! * **Marketplace dynamics** — Poisson worker arrivals modulated by
//!   time of day, HIT-group attractiveness proportional to remaining
//!   work (Turkers "gravitate toward HIT groups with more tasks", §2.6),
//!   Zipfian per-worker session lengths (§3.3.3), batch-size acceptance
//!   (workers refuse oversized $0.01 HITs, §4.2.2/§6), and abandonment
//!   that temporarily blocks tasks (§3.3.2) — all in a deterministic
//!   seeded event loop ([`sim`]).
//! * **Economics** — fixed price per HIT plus Amazon's half-cent
//!   commission ([`pricing`]), the quantity the paper's optimizations
//!   minimize.
//!
//! The operators in the `qurk` crate talk to this marketplace through
//! the [`market::Marketplace`] API exactly as Qurk talked to MTurk:
//! post HIT groups, wait, collect assignments.

pub mod config;
pub mod market;
pub mod pricing;
pub mod question;
pub mod rng;
pub mod sim;
pub mod truth;
pub mod worker;

pub use config::CrowdConfig;
pub use market::{Assignment, AssignmentId, Hit, HitGroupId, HitId, HitSpec, Marketplace};
pub use pricing::{Ledger, Price};
pub use question::{Answer, Question, UNKNOWN};
pub use sim::{SimConfig, SimTime};
pub use truth::{EntityId, GroundTruth, ItemId};
pub use worker::{Worker, WorkerArchetype, WorkerId, WorkerPool, WorkerPoolConfig};
