//! Questions posed to workers and their answers.
//!
//! Each HIT contains one or more questions; the question enum mirrors
//! the interfaces in the paper: filter buttons (§2.1), generative text
//! (§2.2), join pair Yes/No (§3.1.1–3.1.3), comparison groups and
//! Likert ratings (§4.1), and best-of-batch extraction for MAX/MIN
//! aggregates (§2.3).

use crate::truth::ItemId;

/// Sentinel category index for the `UNKNOWN` answer of feature
/// extraction tasks (§2.4): "This special value is equal to any other
/// value, so that an UNKNOWN value does not remove potential join
/// candidates."
pub const UNKNOWN: usize = usize::MAX;

/// A single question within a HIT.
///
/// No variant carries floats, so the enum is `Eq + Hash`: backends key
/// their Task Cache on hashed question content directly instead of
/// going through a rendered `Debug` string.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Question {
    /// Yes/No predicate about one item (Filter task).
    Filter { item: ItemId, predicate: String },
    /// Categorical feature of one item; `num_options` excludes UNKNOWN.
    Feature {
        item: ItemId,
        feature: String,
        num_options: usize,
    },
    /// Free-text field for one item (Generative task).
    Generative { item: ItemId, field: String },
    /// Does this pair satisfy the join predicate?
    JoinPair { left: ItemId, right: ItemId },
    /// Order this group of items along `dimension`, best first.
    CompareGroup {
        items: Vec<ItemId>,
        dimension: String,
    },
    /// Rate one item on a 1..=scale Likert scale; `context` items are
    /// shown for calibration (§4.1.2 shows 10 random samples).
    Rate {
        item: ItemId,
        dimension: String,
        scale: u8,
        context: Vec<ItemId>,
    },
    /// Pick the best (or worst, for MIN aggregates) item of a batch
    /// (the MAX/MIN interface of §2.3).
    PickBest {
        items: Vec<ItemId>,
        dimension: String,
        /// true = pick the maximum ("largest"), false = the minimum.
        want_max: bool,
    },
}

impl Question {
    /// Approximate worker effort, in "simple question" units. Drives
    /// batch-size acceptance and per-HIT completion time in the
    /// simulator. Comparison groups cost roughly the number of induced
    /// pairwise judgements scaled down (workers scan, not enumerate).
    pub fn work_units(&self) -> f64 {
        match self {
            Question::Filter { .. } => 1.0,
            Question::Feature { .. } => 1.0,
            Question::Generative { .. } => 2.0,
            Question::JoinPair { .. } => 1.0,
            Question::CompareGroup { items, .. } => {
                let s = items.len() as f64;
                // C(S,2) judgements, discounted: ordering 5 items is
                // much cheaper than 10 independent pair HITs.
                (s * (s - 1.0) / 2.0) * 0.4
            }
            Question::Rate { .. } => 1.0,
            Question::PickBest { items, .. } => items.len() as f64 * 0.3,
        }
    }

    /// Items referenced by this question (context items excluded — the
    /// worker only glances at them).
    pub fn items(&self) -> Vec<ItemId> {
        match self {
            Question::Filter { item, .. }
            | Question::Feature { item, .. }
            | Question::Generative { item, .. }
            | Question::Rate { item, .. } => vec![*item],
            Question::JoinPair { left, right } => vec![*left, *right],
            Question::CompareGroup { items, .. } | Question::PickBest { items, .. } => {
                items.clone()
            }
        }
    }
}

/// The user interface a HIT was compiled to. Worker behaviour depends
/// on the interface, not just the questions: the paper finds e.g. that
/// large SmartBatch grids induce missed pairs (§3.3.2) and that asking
/// all features at once improves answers (§3.3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitKind {
    /// One join pair with Yes/No buttons (Figure 2a).
    JoinSimple,
    /// b pairs stacked vertically with radio buttons (Figure 2b).
    JoinNaive,
    /// r×s grid of images; workers click matching pairs (Figure 2c).
    JoinSmart { rows: usize, cols: usize },
    /// One feature question per item.
    FeatureSingle,
    /// All features of an item asked together ("demographic survey"
    /// framing, which the paper found reduces hair-color errors).
    FeatureCombined,
    /// Comparison sort interface (Figure 5a).
    SortCompare,
    /// Likert rating interface (Figure 5b).
    SortRate,
    /// Batched filter questions.
    Filter,
    /// Free-text generative form.
    Generative,
    /// Best-of-batch extraction (MAX/MIN).
    PickBest,
}

/// Context the worker sees when answering: the interface and the total
/// effort of the HIT (batching more work into one HIT for the same pay
/// degrades care and attracts spammers — §3.3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitContext {
    pub kind: HitKind,
    pub total_work_units: f64,
}

/// Effective worker effort for a whole HIT, accounting for the
/// interface. A SmartBatch grid of r×s images costs roughly r+s image
/// scans, *not* r·s independent pair judgements — which is why the
/// paper's workers accepted 5×5 grids (§5.2) while refusing equivalent
/// stacks of 25 pairs.
pub fn hit_work_units(kind: HitKind, questions: &[Question]) -> f64 {
    match kind {
        HitKind::JoinSmart { rows, cols } => {
            // Scanning two image columns plus a few click decisions.
            (rows + cols) as f64 * 0.8 + 1.0
        }
        _ => questions.iter().map(Question::work_units).sum(),
    }
}

/// A worker's answer to one [`Question`]. Variants correspond 1:1.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    Bool(bool),
    /// Category index, or [`UNKNOWN`].
    Category(usize),
    Text(String),
    /// Best-to-worst ordering of the group's items.
    Ordering(Vec<ItemId>),
    /// 1-based Likert rating.
    Rating(u8),
    Pick(ItemId),
}

impl Answer {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Answer::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_category(&self) -> Option<usize> {
        match self {
            Answer::Category(c) => Some(*c),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Answer::Text(t) => Some(t),
            _ => None,
        }
    }

    pub fn as_ordering(&self) -> Option<&[ItemId]> {
        match self {
            Answer::Ordering(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_rating(&self) -> Option<u8> {
        match self {
            Answer::Rating(r) => Some(*r),
            _ => None,
        }
    }

    pub fn as_pick(&self) -> Option<ItemId> {
        match self {
            Answer::Pick(i) => Some(*i),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(n: u64) -> ItemId {
        ItemId(n)
    }

    #[test]
    fn work_units_scale_with_group_size() {
        let small = Question::CompareGroup {
            items: (0..5).map(item).collect(),
            dimension: "size".into(),
        };
        let large = Question::CompareGroup {
            items: (0..20).map(item).collect(),
            dimension: "size".into(),
        };
        assert!(large.work_units() > small.work_units() * 10.0);
        assert_eq!(
            Question::Filter {
                item: item(0),
                predicate: "p".into()
            }
            .work_units(),
            1.0
        );
    }

    #[test]
    fn items_extraction() {
        let q = Question::JoinPair {
            left: item(1),
            right: item(2),
        };
        assert_eq!(q.items(), vec![item(1), item(2)]);
        let q = Question::Rate {
            item: item(3),
            dimension: "d".into(),
            scale: 7,
            context: vec![item(4), item(5)],
        };
        assert_eq!(q.items(), vec![item(3)]);
    }

    #[test]
    fn answer_accessors() {
        assert_eq!(Answer::Bool(true).as_bool(), Some(true));
        assert_eq!(Answer::Bool(true).as_rating(), None);
        assert_eq!(Answer::Category(UNKNOWN).as_category(), Some(UNKNOWN));
        assert_eq!(Answer::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Answer::Rating(7).as_rating(), Some(7));
        assert_eq!(Answer::Pick(item(9)).as_pick(), Some(item(9)));
        let ord = Answer::Ordering(vec![item(1), item(2)]);
        assert_eq!(ord.as_ordering().unwrap().len(), 2);
    }
}
