//! Acceptance tests for the multi-tenant query service
//! (`qurk::service`): cross-tenant cache sharing pays for identical
//! work exactly once, per-tenant metering sums to the shared backend's
//! total spend, and N ≥ 8 concurrent queries are **deterministic** —
//! byte-identical to running the same queries sequentially, proven on
//! a replayed crowd.

use qurk::backend::{RecordingBackend, ReplayBackend, ReplayTrace};
use qurk::service::QueryService;
use qurk::{Catalog, QurkError, Relation, Schema, Value, ValueType};
use qurk_crowd::truth::{DimensionParams, PredicateTruth};
use qurk_crowd::{CrowdConfig, EntityId, GroundTruth, Marketplace};

/// Ten people, five tall, heights 0..10 — same world the session
/// tests use, with a Filter task and a Rank task.
fn world(seed: u64) -> (Catalog, Marketplace) {
    let mut gt = GroundTruth::new();
    gt.define_dimension("height", DimensionParams::crisp(0.02));
    let items = gt.new_items(10);
    for (i, &it) in items.iter().enumerate() {
        gt.set_predicate(
            it,
            "isTall",
            PredicateTruth {
                value: i >= 5,
                error_rate: 0.03,
            },
        );
        gt.set_score(it, "height", i as f64);
        gt.set_entity(it, EntityId(i as u64));
    }
    let market = Marketplace::new(&CrowdConfig::default().with_seed(seed), gt);

    let mut catalog = Catalog::new();
    let mut rel = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for (i, &it) in items.iter().enumerate() {
        rel.push(vec![Value::Int(i as i64), Value::Item(it)])
            .unwrap();
    }
    catalog.register_table("people", rel);
    catalog
        .define_tasks(
            r#"TASK isTall(field) TYPE Filter:
                Prompt: "<img src='%s'> Tall?", tuple[field]
               TASK byHeight(field) TYPE Rank:
                OrderDimensionName: "height"
                Html: "<img src='%s'>", tuple[field]
            "#,
        )
        .unwrap();
    (catalog, market)
}

const FILTER_SQL: &str = "SELECT p.id FROM people AS p WHERE isTall(p.img)";
const SORT_SQL: &str = "SELECT p.id FROM people AS p ORDER BY byHeight(p.img)";

#[test]
fn identical_specs_across_tenants_are_paid_once() {
    let (catalog, market) = world(7);
    let mut svc = QueryService::new(&catalog, RecordingBackend::new(market));
    svc.register_tenant("alice", None);
    svc.register_tenant("bob", None);
    svc.submit("alice", FILTER_SQL).unwrap();
    svc.submit("bob", FILTER_SQL).unwrap();
    let reports = svc.run_pending();
    assert_eq!(reports.len(), 2);
    let a = reports[0].as_ref().unwrap();
    let b = reports[1].as_ref().unwrap();

    // Identical queries, identical answers.
    assert_eq!(a.relation, b.relation);

    // The shared market posted one query's worth of HITs; the second
    // tenant's specs all rode the first tenant's in-flight rounds.
    let (cache_hits, cache_misses) = svc.market().cache_stats();
    assert!(cache_misses > 0);
    assert_eq!(cache_hits, cache_misses, "bob mirrors alice spec-for-spec");
    assert_eq!(svc.market().shared_hits(), cache_hits);
    assert_eq!(svc.market().total_hits_posted() as u64, cache_misses);

    // Attribution: alice paid for everything, bob for nothing, and the
    // per-tenant meters sum exactly to the shared backend's spend.
    let spent_a = svc.tenant_spent("alice").unwrap();
    let spent_b = svc.tenant_spent("bob").unwrap();
    let total = svc.market().total_spend();
    assert!(spent_a > 0.0);
    assert_eq!(spent_b, 0.0);
    assert!(
        (spent_a + spent_b - total).abs() < 1e-9,
        "tenant meters ({spent_a} + {spent_b}) must sum to the market total ({total})"
    );

    // The service stats on bob's report say so.
    let svc_b = b.service.as_ref().unwrap();
    assert_eq!(svc_b.tenant, "bob");
    assert_eq!(svc_b.shared_cache_hits, cache_hits);
    assert!(
        (svc_b.saved_dollars - total).abs() < 1e-9,
        "bob saved exactly what alice paid"
    );
    let svc_a = a.service.as_ref().unwrap();
    assert_eq!(svc_a.shared_cache_hits, 0);
    assert!(svc_a.rounds > 0);
    assert_eq!(svc_a.rounds, svc_b.rounds, "identical queries, same rounds");
    assert!(
        svc_b.rounds_shared > 0,
        "bob's rounds overlapped alice's marketplace steps"
    );

    // The recording proves it end-to-end: the trace holds exactly the
    // deduplicated spec set (one query's worth), not two.
    let trace = svc.into_backend().into_trace();
    assert_eq!(trace.len() as u64, cache_misses);
}

/// Record every spec the 8-query batch needs, then replay.
fn record_trace(catalog: &Catalog, queries: &[(&str, &str)]) -> ReplayTrace {
    let (_, market) = world(7);
    let mut svc = QueryService::new(catalog, RecordingBackend::new(market));
    for &(tenant, _) in queries {
        svc.register_tenant(tenant, None);
    }
    for &(tenant, sql) in queries {
        svc.submit(tenant, sql).unwrap();
    }
    for r in svc.run_pending() {
        r.expect("recording run must succeed");
    }
    svc.into_backend().into_trace()
}

#[test]
fn eight_concurrent_queries_match_sequential_byte_for_byte() {
    let (catalog, _) = world(7);
    let queries: Vec<(&str, &str)> = vec![
        ("alice", FILTER_SQL),
        ("bob", FILTER_SQL),
        ("carol", SORT_SQL),
        ("alice", SORT_SQL),
        ("bob", "SELECT p.img FROM people AS p WHERE isTall(p.img)"),
        ("carol", FILTER_SQL),
        (
            "alice",
            "SELECT p.id, p.img FROM people AS p WHERE isTall(p.img)",
        ),
        ("bob", SORT_SQL),
    ];
    let trace = record_trace(&catalog, &queries);

    // Concurrent: all 8 in one batch on one shared replayed market.
    let mut conc = QueryService::new(&catalog, ReplayBackend::from_trace(trace.clone()));
    for &(tenant, _) in &queries {
        conc.register_tenant(tenant, None);
    }
    for &(tenant, sql) in &queries {
        conc.submit(tenant, sql).unwrap();
    }
    let concurrent: Vec<_> = conc
        .run_pending()
        .into_iter()
        .map(|r| r.expect("concurrent replay must succeed"))
        .collect();
    assert_eq!(concurrent.len(), 8);

    // Sequential baseline: each query alone on its own replayed
    // market, planned from the same (empty) statistics snapshot.
    for (i, &(tenant, sql)) in queries.iter().enumerate() {
        let mut seq = QueryService::new(&catalog, ReplayBackend::from_trace(trace.clone()));
        seq.register_tenant(tenant, None);
        seq.submit(tenant, sql).unwrap();
        let report = seq.run_pending().pop().unwrap().expect("sequential replay");
        assert_eq!(
            format!("{:?}", concurrent[i].relation),
            format!("{:?}", report.relation),
            "query {i} ({sql}) diverged under concurrency"
        );
        assert_eq!(concurrent[i].relation.len(), report.relation.len());
    }

    // Attribution still sums exactly, eight ways.
    let per_tenant: f64 = ["alice", "bob", "carol"]
        .iter()
        .map(|t| conc.tenant_spent(t).unwrap())
        .sum();
    let total = conc.market().total_spend();
    assert!(
        (per_tenant - total).abs() < 1e-9,
        "tenant meters ({per_tenant}) must sum to the market total ({total})"
    );
    assert!(total > 0.0);
}

#[test]
fn tenant_budgets_gate_queries_and_accumulate() {
    let (catalog, market) = world(7);
    let mut svc = QueryService::new(&catalog, market);
    // Enough for the filter but not the sort behind it: the budget
    // gate refuses the second crowd operator mid-query.
    svc.register_tenant("cheap", Some(0.1));
    svc.submit(
        "cheap",
        "SELECT p.id FROM people AS p WHERE isTall(p.img) ORDER BY byHeight(p.img)",
    )
    .unwrap();
    let reports = svc.run_pending();
    match &reports[0] {
        Err(QurkError::BudgetExceeded { budget_dollars, .. }) => {
            assert!(*budget_dollars <= 0.1);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    // What the failed query did spend is still attributed to the
    // tenant, so the next query sees only the remainder.
    let spent = svc.tenant_spent("cheap").unwrap();
    assert!(spent > 0.0);
    svc.submit("cheap", FILTER_SQL).unwrap();
    match &svc.run_pending()[0] {
        Err(QurkError::BudgetExceeded { spent_dollars, .. }) => {
            // Refused before posting anything new.
            assert_eq!(*spent_dollars, 0.0);
        }
        other => panic!("expected BudgetExceeded on the drained tenant, got {other:?}"),
    }
    assert_eq!(svc.tenant_spent("cheap").unwrap(), spent);
}

#[test]
fn unknown_tenants_and_bad_queries_are_rejected_at_submit() {
    let (catalog, market) = world(7);
    let mut svc = QueryService::new(&catalog, market);
    svc.register_tenant("alice", None);
    assert!(svc.submit("mallory", FILTER_SQL).is_err());
    assert!(svc
        .submit("alice", "SELECT p.id FROM nosuch AS p WHERE isTall(p.img)")
        .is_err());
    assert_eq!(svc.pending_len(), 0);
}

#[test]
fn a_service_survives_multiple_batches_and_reuses_the_cache() {
    let (catalog, market) = world(7);
    let mut svc = QueryService::new(&catalog, market);
    svc.register_tenant("alice", None);
    svc.submit("alice", FILTER_SQL).unwrap();
    let first = svc.run_pending().pop().unwrap().unwrap();
    let posted_after_first = svc.market().total_hits_posted();
    assert!(posted_after_first > 0);

    // Same query next batch: answered entirely from the shared cache.
    svc.register_tenant("bob", None);
    svc.submit("bob", FILTER_SQL).unwrap();
    let second = svc.run_pending().pop().unwrap().unwrap();
    assert_eq!(svc.market().total_hits_posted(), posted_after_first);
    assert_eq!(first.relation, second.relation);
    assert_eq!(svc.tenant_spent("bob").unwrap(), 0.0);
    let stats = second.service.unwrap();
    assert!(stats.shared_cache_hits > 0);
    assert!(stats.saved_dollars > 0.0);
}
