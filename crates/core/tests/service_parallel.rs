//! The point of the parallel machine phase: a batch of machine-heavy
//! queries finishes in less wall-clock time than running them one at
//! a time, because between yield points every query thread executes
//! concurrently. Results stay byte-identical either way.

use std::time::Instant;

use qurk::service::QueryService;
use qurk::{Catalog, Relation, Schema, Value, ValueType};
use qurk_crowd::{CrowdConfig, GroundTruth, Marketplace};

/// Machine-only world: a wide table big enough that scanning and
/// projecting it costs real CPU, and no crowd tasks at all — the
/// whole query is machine phase.
fn machine_world(rows: i64) -> Catalog {
    let mut catalog = Catalog::new();
    let mut rel = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("a", ValueType::Int),
        ("b", ValueType::Int),
        ("c", ValueType::Int),
    ]));
    for i in 0..rows {
        rel.push(vec![
            Value::Int(i),
            Value::Int(i.wrapping_mul(2654435761)),
            Value::Int(i ^ 0x5DEECE66D),
            Value::Int(i.rotate_left(17)),
        ])
        .unwrap();
    }
    catalog.register_table("big", rel);
    catalog
}

fn market() -> Marketplace {
    Marketplace::new(&CrowdConfig::default().with_seed(1), GroundTruth::new())
}

const N: usize = 8;
const SQL: &str = "SELECT b.id, b.a, b.b, b.c FROM big AS b";

#[test]
fn batch_machine_time_beats_sequential_on_multi_core() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let catalog = machine_world(300_000);

    // Warm up (page in the table, JIT nothing — this is Rust — but
    // stabilize allocator state) and capture the reference relation.
    let reference = {
        let mut svc = QueryService::new(&catalog, market());
        svc.register_tenant("warm", None);
        svc.submit("warm", SQL).unwrap();
        svc.run_pending().pop().unwrap().unwrap().relation
    };

    // Sequential: N single-query batches, one after another.
    let seq_start = Instant::now();
    let mut svc = QueryService::new(&catalog, market());
    svc.register_tenant("t", None);
    for _ in 0..N {
        svc.submit("t", SQL).unwrap();
        let r = svc.run_pending().pop().unwrap().unwrap();
        assert_eq!(r.relation.len(), reference.len());
    }
    let sequential = seq_start.elapsed();

    // Concurrent: the same N queries in ONE batch — the machine phase
    // runs them all on their own OS threads between barriers.
    let batch_start = Instant::now();
    let mut svc = QueryService::new(&catalog, market());
    svc.register_tenant("t", None);
    for _ in 0..N {
        svc.submit("t", SQL).unwrap();
    }
    let reports = svc.run_pending();
    let batch = batch_start.elapsed();
    assert_eq!(reports.len(), N);
    for r in reports {
        let r = r.unwrap();
        // Machine-only queries are trivially deterministic under
        // concurrency; assert it anyway — it is the cheap half of the
        // replay determinism tests in service_multi_tenant.rs.
        assert_eq!(
            format!("{:?}", r.relation),
            format!("{:?}", reference),
            "concurrent machine-only query diverged"
        );
    }

    if cores < 2 {
        eprintln!("single core: skipping the overlap assertion");
        return;
    }
    assert!(
        batch < sequential.mul_f64(0.85),
        "machine phases should overlap on {cores} cores: \
         batch {batch:?} vs sequential {sequential:?}"
    );
}
