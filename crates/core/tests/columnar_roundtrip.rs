//! Property tests for the dual-layout `Relation` (ISSUE 9): a relation
//! built row-wise and the same data built column-wise must be
//! indistinguishable — equal as values, equal in sort behaviour, equal
//! under schema resolution, and with column slices that mirror the row
//! view exactly.

use proptest::prelude::*;
use qurk::prelude::*;
use qurk::PROCESSING_WINDOW_SIZE;

const TYPES: [ValueType; 5] = [
    ValueType::Int,
    ValueType::Float,
    ValueType::Text,
    ValueType::Bool,
    ValueType::Item,
];

/// Deterministic seed → value for one cell, with occasional NULLs
/// (items excepted: Item columns reject NULL-free schemas elsewhere in
/// the suite, so keep them total here too — the mirror property does
/// not depend on NULL placement).
fn mk_value(ty: ValueType, seed: u64) -> Value {
    if ty != ValueType::Item && seed.is_multiple_of(9) {
        return Value::Null;
    }
    match ty {
        ValueType::Int => Value::Int((seed % 2001) as i64 - 1000),
        ValueType::Float => Value::Float(((seed % 2001) as f64 - 1000.0) / 8.0),
        ValueType::Text => {
            // Short strings from a small alphabet: heavy interning reuse
            // plus plenty of sort ties.
            let len = (seed / 7) % 6;
            let s: String = (0..len)
                .map(|i| char::from(b'a' + ((seed >> (i * 3)) % 5) as u8))
                .collect();
            Value::text(s)
        }
        ValueType::Bool => Value::Bool(seed.is_multiple_of(2)),
        ValueType::Item => Value::Item(qurk_crowd::ItemId(seed % 50)),
    }
}

/// Strategy: 1–4 column type codes plus seed rows of matching width.
fn schema_and_seeds() -> impl Strategy<Value = (Vec<usize>, Vec<Vec<u64>>)> {
    prop::collection::vec(0usize..TYPES.len(), 1..=4usize).prop_flat_map(|tys| {
        let width = tys.len();
        (
            Just(tys),
            prop::collection::vec(prop::collection::vec(0u64..1_000_000, width), 0..48usize),
        )
    })
}

fn build_schema(tys: &[usize]) -> Schema {
    let named: Vec<(String, ValueType)> = tys
        .iter()
        .enumerate()
        .map(|(i, &t)| (format!("c{i}"), TYPES[t]))
        .collect();
    let refs: Vec<(&str, ValueType)> = named.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    Schema::new(&refs)
}

fn materialize(tys: &[usize], seeds: &[Vec<u64>]) -> Vec<Vec<Value>> {
    seeds
        .iter()
        .map(|row| {
            row.iter()
                .zip(tys)
                .map(|(&s, &t)| mk_value(TYPES[t], s))
                .collect()
        })
        .collect()
}

fn row_wise(tys: &[usize], rows: &[Vec<Value>]) -> Relation {
    let mut rel = Relation::new(build_schema(tys));
    for r in rows {
        rel.push(r.clone()).unwrap();
    }
    rel
}

fn column_wise(tys: &[usize], rows: &[Vec<Value>]) -> Relation {
    let columns: Vec<Vec<Value>> = (0..tys.len())
        .map(|c| rows.iter().map(|r| r[c]).collect())
        .collect();
    Relation::from_columns(build_schema(tys), columns).unwrap()
}

proptest! {
    /// Equality: the two build orders produce the same relation, row
    /// view and column view both.
    #[test]
    fn build_orders_agree((tys, seeds) in schema_and_seeds()) {
        let rows = materialize(&tys, &seeds);
        let by_row = row_wise(&tys, &rows);
        let by_col = column_wise(&tys, &rows);
        prop_assert_eq!(&by_row, &by_col);
        prop_assert_eq!(by_row.to_tsv(), by_col.to_tsv());
        for c in 0..tys.len() {
            prop_assert_eq!(by_row.column(c), by_col.column(c));
        }
    }

    /// Column slices mirror the row view cell for cell, and windows
    /// tile the relation completely, in order, without overlap.
    #[test]
    fn columns_and_windows_mirror_rows((tys, seeds) in schema_and_seeds()) {
        let rows = materialize(&tys, &seeds);
        let rel = row_wise(&tys, &rows);
        for c in 0..tys.len() {
            let col = rel.column(c);
            prop_assert_eq!(col.len(), rel.len());
            for (r, row) in rel.rows().iter().enumerate() {
                prop_assert_eq!(col[r], row[c]);
            }
        }
        let mut seen = 0usize;
        for w in rel.windows() {
            prop_assert!(w.len() <= PROCESSING_WINDOW_SIZE);
            prop_assert_eq!(w.start(), seen);
            for c in 0..tys.len() {
                prop_assert_eq!(w.column(c), &rel.column(c)[w.start()..w.start() + w.len()]);
            }
            seen += w.len();
        }
        prop_assert_eq!(seen, rel.len());
    }

    /// Ordering: sorting the row view by any column gives the same
    /// permutation as sorting the column slice — SQL comparison
    /// semantics are layout-independent (interned text included).
    #[test]
    fn sort_is_layout_independent((tys, seeds) in schema_and_seeds(), key in 0usize..4) {
        let key = key % tys.len();
        let rows = materialize(&tys, &seeds);
        let by_row = row_wise(&tys, &rows);
        let by_col = column_wise(&tys, &rows);

        // NULLs sort first so the comparator is a real total order
        // (sql_cmp is None for NULL operands).
        fn total(a: &Value, b: &Value) -> std::cmp::Ordering {
            match (a == &Value::Null, b == &Value::Null) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Less,
                (false, true) => std::cmp::Ordering::Greater,
                (false, false) => a.sql_cmp(b).expect("same-type non-null cells"),
            }
        }

        let mut row_order: Vec<usize> = (0..by_row.len()).collect();
        row_order.sort_by(|&a, &b| total(&by_row.rows()[a][key], &by_row.rows()[b][key]));
        let col = by_col.column(key);
        let mut col_order: Vec<usize> = (0..by_col.len()).collect();
        col_order.sort_by(|&a, &b| total(&col[a], &col[b]));
        prop_assert_eq!(&row_order, &col_order);

        // And gathering by that permutation keeps both layouts aligned.
        let g_row = by_row.gather(&row_order);
        let g_col = by_col.gather(&col_order);
        prop_assert_eq!(g_row.to_tsv(), g_col.to_tsv());
    }

    /// Schema resolution is independent of how the relation was built.
    #[test]
    fn schema_resolution_agrees((tys, seeds) in schema_and_seeds()) {
        let rows = materialize(&tys, &seeds);
        let by_row = row_wise(&tys, &rows);
        let by_col = column_wise(&tys, &rows);
        for i in 0..tys.len() {
            let name = format!("c{i}");
            prop_assert_eq!(by_row.schema().resolve(&name), Some(i));
            prop_assert_eq!(
                by_row.schema().resolve(&name),
                by_col.schema().resolve(&name)
            );
        }
        prop_assert_eq!(by_row.schema().resolve("nope"), None);
        prop_assert_eq!(by_col.schema().resolve("nope"), None);
    }
}
