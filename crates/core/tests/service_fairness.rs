//! Regression tests for the service's fairness policy, the bounded
//! shared cache, round-deadline validation, and checkpoint
//! re-admission on recovery.
//!
//! * **Starvation**: a tenant flooding `submit()` cannot delay another
//!   tenant's single query past the first scheduler barrier under
//!   round-robin admission (and priority overrides submission order).
//! * **Eviction**: with `max_entries` set, evicted-then-re-posted
//!   specs are paid for again and the books still balance — Σ tenant
//!   spend == market total.
//! * **Invalid deadlines**: a round posted with a non-finite limit
//!   fails its query with [`QurkError::InvalidDeadline`] instead of
//!   poisoning the shared clock, and the service keeps serving.
//! * **Recovery re-admission**: [`QueryService::recover`] pushes every
//!   live checkpoint back through the same admission gate as
//!   `submit()`; checkpoints that no longer pass are retired, not
//!   executed.

use std::path::PathBuf;
use std::sync::Arc;

use qurk::service::{PollOrder, QueryService, SchedulePolicy};
use qurk::store::DurableStore;
use qurk::{Catalog, ExecConfig, QurkError, Relation, Schema, Value, ValueType};
use qurk_crowd::truth::{DimensionParams, PredicateTruth};
use qurk_crowd::{CrowdConfig, EntityId, GroundTruth, Marketplace};

const FILTER_SQL: &str = "SELECT p.id FROM people AS p WHERE isTall(p.img)";

fn world(seed: u64) -> (Catalog, Marketplace) {
    let mut gt = GroundTruth::new();
    gt.define_dimension("height", DimensionParams::crisp(0.02));
    let items = gt.new_items(10);
    for (i, &it) in items.iter().enumerate() {
        gt.set_predicate(
            it,
            "isTall",
            PredicateTruth {
                value: i >= 5,
                error_rate: 0.03,
            },
        );
        gt.set_score(it, "height", i as f64);
        gt.set_entity(it, EntityId(i as u64));
    }
    let market = Marketplace::new(&CrowdConfig::default().with_seed(seed), gt);

    let mut catalog = Catalog::new();
    let mut rel = Relation::new(Schema::new(&[
        ("id", ValueType::Int),
        ("img", ValueType::Item),
    ]));
    for (i, &it) in items.iter().enumerate() {
        rel.push(vec![Value::Int(i as i64), Value::Item(it)])
            .unwrap();
    }
    catalog.register_table("people", rel);
    catalog
        .define_tasks(
            r#"TASK isTall(field) TYPE Filter:
                Prompt: "<img src='%s'> Tall?", tuple[field]
               TASK byHeight(field) TYPE Rank:
                OrderDimensionName: "height"
                Html: "<img src='%s'>", tuple[field]
            "#,
        )
        .unwrap();
    (catalog, market)
}

/// Six floods from alice, then one query from bob, under
/// `max_active = 2`. Submission order makes bob wait for a slot;
/// round-robin admits him at the very first barrier.
#[test]
fn round_robin_admission_prevents_starvation() {
    let run = |order: PollOrder| {
        let (catalog, market) = world(7);
        let mut svc = QueryService::new(&catalog, market);
        svc.set_policy(SchedulePolicy {
            order,
            max_active: Some(2),
            max_per_tenant: None,
        });
        svc.register_tenant("alice", None);
        svc.register_tenant("bob", None);
        for _ in 0..6 {
            svc.submit("alice", FILTER_SQL).unwrap();
        }
        svc.submit("bob", FILTER_SQL).unwrap();
        let reports: Vec<_> = svc
            .run_pending()
            .into_iter()
            .map(|r| r.expect("flood workload succeeds"))
            .collect();
        assert_eq!(reports.len(), 7);
        // Everyone still gets the same (cached) answer.
        for r in &reports[1..] {
            assert_eq!(r.relation, reports[0].relation);
        }
        reports[6].service.as_ref().unwrap().admitted_round
    };

    let fifo = run(PollOrder::Submission);
    assert!(
        fifo > 0,
        "submission order should queue bob behind the flood (admitted at {fifo})"
    );
    let rr = run(PollOrder::RoundRobin);
    assert_eq!(
        rr, 0,
        "round-robin must admit bob's single query at the first barrier"
    );
}

/// Priority overrides submission order: bob at priority 1 is admitted
/// before the whole flood even though he submitted last.
#[test]
fn priority_overrides_submission_order() {
    let (catalog, market) = world(7);
    let mut svc = QueryService::new(&catalog, market);
    svc.set_policy(SchedulePolicy {
        order: PollOrder::Submission,
        max_active: Some(1),
        max_per_tenant: None,
    });
    svc.register_tenant("alice", None);
    svc.register_tenant("bob", None);
    svc.set_tenant_priority("bob", 1).unwrap();
    for _ in 0..4 {
        svc.submit("alice", FILTER_SQL).unwrap();
    }
    svc.submit("bob", FILTER_SQL).unwrap();
    let reports: Vec<_> = svc.run_pending().into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(
        reports[4].service.as_ref().unwrap().admitted_round,
        0,
        "the high-priority tenant takes the single slot first"
    );
    assert!(
        reports[0].service.as_ref().unwrap().admitted_round > 0,
        "alice's first query waited behind bob"
    );
}

/// `max_per_tenant` caps one tenant's concurrency without touching
/// another's.
#[test]
fn per_tenant_cap_limits_only_the_flooding_tenant() {
    let (catalog, market) = world(7);
    let mut svc = QueryService::new(&catalog, market);
    svc.set_policy(SchedulePolicy {
        order: PollOrder::Submission,
        max_active: None,
        max_per_tenant: Some(1),
    });
    svc.register_tenant("alice", None);
    svc.register_tenant("bob", None);
    svc.submit("alice", FILTER_SQL).unwrap();
    svc.submit("alice", FILTER_SQL).unwrap();
    svc.submit("bob", FILTER_SQL).unwrap();
    let reports: Vec<_> = svc.run_pending().into_iter().map(|r| r.unwrap()).collect();
    let admitted = |i: usize| reports[i].service.as_ref().unwrap().admitted_round;
    assert_eq!(admitted(0), 0);
    assert!(admitted(1) > 0, "alice's second query waits on her cap");
    assert_eq!(admitted(2), 0, "bob is not throttled by alice's cap");
}

/// Bound the shared cache, force evictions across batches, and prove
/// the re-paid work still balances: Σ tenant spend == market total.
#[test]
fn eviction_repays_specs_and_the_books_still_balance() {
    let (catalog, market) = world(7);
    let mut svc = QueryService::new(&catalog, market);
    // The filter batches 5 tuples per HIT, so 10 people make two
    // shared-cache specs; a 1-entry bound forces an eviction.
    svc.set_cache_max_entries(Some(1));
    svc.register_tenant("alice", None);
    svc.register_tenant("bob", None);

    // Batch 1: alice pays for both specs; the bound does not evict
    // mid-batch (entries recorded this batch are pinned).
    svc.submit("alice", FILTER_SQL).unwrap();
    let first = svc.run_pending().pop().unwrap().unwrap();
    let alice_spent = svc.tenant_spent("alice").unwrap();
    assert!(alice_spent > 0.0);

    // Batch 2: the boundary trims the cache to 1 entry, so bob's
    // identical query re-posts the evicted spec and pays for it.
    svc.submit("bob", FILTER_SQL).unwrap();
    let second = svc.run_pending().pop().unwrap().unwrap();
    assert!(
        svc.market().cache_evictions() > 0,
        "a 1-entry bound over a two-spec query must evict"
    );
    let bob_spent = svc.tenant_spent("bob").unwrap();
    assert!(
        bob_spent > 0.0,
        "evicted specs are paid for again when re-posted"
    );
    let svc_stats = second.service.as_ref().unwrap();
    assert!(
        svc_stats.shared_cache_hits > 0,
        "the surviving entries still serve hits"
    );
    assert_eq!(first.relation.schema(), second.relation.schema());

    let total = svc.market().total_spend();
    assert!(
        (alice_spent + bob_spent - total).abs() < 1e-9,
        "tenant meters ({alice_spent} + {bob_spent}) must sum to the market total ({total})"
    );
}

/// A round posted with an infinite (or NaN) deadline fails that query
/// with a typed error instead of running the shared clock forever —
/// and the service keeps working afterwards.
#[test]
fn non_finite_round_deadlines_fail_the_query_not_the_service() {
    for bad in [f64::INFINITY, f64::NAN, -1.0] {
        let (catalog, market) = world(7);
        let mut config = ExecConfig::default();
        config.filter.limit_secs = bad;
        let mut svc = QueryService::with_config(&catalog, market, config);
        svc.register_tenant("alice", None);
        svc.register_tenant("bob", None);
        svc.submit("alice", FILTER_SQL).unwrap();
        let reports = svc.run_pending();
        match &reports[0] {
            Err(QurkError::InvalidDeadline { limit_secs }) => {
                assert!(!(limit_secs.is_finite() && *limit_secs >= 0.0));
            }
            other => panic!("expected InvalidDeadline for limit {bad}, got {other:?}"),
        }
        // Nothing was committed for the refused round — no spend, no
        // clock poisoning — and the service keeps scheduling: a query
        // that posts no round (machine-only) under the same broken
        // config still completes.
        assert_eq!(svc.tenant_spent("alice").unwrap(), 0.0);
        assert_eq!(svc.market().total_spend(), 0.0);
        svc.submit("bob", "SELECT p.id FROM people AS p").unwrap();
        let ok = svc.run_pending().pop().unwrap();
        assert!(
            ok.is_ok(),
            "service must keep serving after a refused round: {ok:?}"
        );
    }
}

fn store_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "qurk-service-fairness-{}-{tag}.qwal",
        std::process::id()
    ))
}

/// `recover()` re-admits checkpoints through the same gate as
/// `submit()`: live checkpoints that no longer parse, no longer pass
/// analysis, or belong to an unknown tenant are retired (marked done)
/// instead of executed — and stay retired on the next restart.
#[test]
fn recover_readmits_through_the_admission_gate() {
    let path = store_path("readmit");
    let _ = std::fs::remove_file(&path);

    // A "previous process" left four live checkpoints behind: one
    // valid, one that does not parse, one that fails analysis
    // (unknown table), one for a tenant missing from the log.
    {
        let store = DurableStore::open(&path).unwrap();
        store.append_tenant("alice", None, 0.0);
        store.append_checkpoint("alice", FILTER_SQL, None);
        store.append_checkpoint("alice", "SELECT FROM WHERE", None);
        store.append_checkpoint(
            "alice",
            "SELECT p.id FROM nosuch AS p WHERE isTall(p.img)",
            None,
        );
        store.append_checkpoint("ghost", FILTER_SQL, None);
    }

    let (catalog, market) = world(7);
    let store = Arc::new(DurableStore::open(&path).unwrap());
    assert_eq!(store.live_checkpoints().len(), 4);
    let mut svc =
        QueryService::with_store(&catalog, market, ExecConfig::default(), Arc::clone(&store));
    let resumed = svc.recover();
    assert_eq!(resumed, 1, "only the admissible checkpoint is re-queued");
    assert_eq!(svc.pending_len(), 1);

    let report = svc.run_pending().pop().unwrap().unwrap();
    assert!(report.service.as_ref().unwrap().resumed);
    assert!(report.hits_posted > 0, "the resumed query really ran");

    // Every checkpoint is now retired: the executed one by completion,
    // the inadmissible ones by the gate. A restart resurrects nothing.
    assert!(store.live_checkpoints().is_empty());
    drop(svc);
    let reopened = DurableStore::open(&path).unwrap();
    assert!(reopened.live_checkpoints().is_empty());
    let _ = std::fs::remove_file(&path);
}
