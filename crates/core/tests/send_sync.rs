//! Compile-time audit: every [`CrowdBackend`] implementation in the
//! workspace is `Send + Sync`, so the planned async service can share
//! backends across tasks without restructuring. Enforced here (the
//! probes fail to *compile* if a backend grows `Rc`/`RefCell`/raw
//! pointers) and complemented by `xtask lint`'s interior-mutability
//! scan.

use qurk::backend::{CachingBackend, MeteringBackend, RecordingBackend, ReplayBackend};
use qurk::service::{SharedMarket, TenantBackend};
use qurk_crowd::Marketplace;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn every_backend_impl_is_send_sync() {
    assert_send_sync::<Marketplace>();
    assert_send_sync::<CachingBackend<Marketplace>>();
    assert_send_sync::<MeteringBackend<CachingBackend<Marketplace>>>();
    assert_send_sync::<RecordingBackend<Marketplace>>();
    assert_send_sync::<ReplayBackend>();
    // Decorators preserve the bounds for any conforming inner backend.
    assert_send_sync::<RecordingBackend<MeteringBackend<CachingBackend<Marketplace>>>>();
    // The service layer shares one market across query threads.
    assert_send_sync::<SharedMarket<Marketplace>>();
    assert_send_sync::<TenantBackend<Marketplace>>();
    assert_send_sync::<TenantBackend<ReplayBackend>>();
}
