//! The `CrowdBackend` abstraction: where HITs actually run.
//!
//! Qurk's architecture (§2.5–§2.6) separates *what* a crowd operator
//! asks from *where* the HITs execute. Operators talk to a backend the
//! way Qurk talked to MTurk — post HIT groups, drive the (virtual)
//! clock, collect assignments — and every operator in
//! [`crate::ops`] is generic over [`CrowdBackend`], so the concrete
//! [`qurk_crowd::Marketplace`] is just one implementation.
//!
//! Layered on the trait are composable decorators:
//!
//! * [`CachingBackend`] — the Task Cache of Figure 1, lifted to the
//!   backend boundary: identical HIT specs are posted to the crowd
//!   once and replayed from the cache afterwards, across queries.
//! * [`MeteringBackend`] — per-epoch (per-query) HIT / assignment /
//!   dollar / virtual-latency accounting, which
//!   [`crate::session::QueryReport`] reads instead of re-deriving from
//!   marketplace internals.
//! * [`RecordingBackend`] / [`ReplayBackend`] — record `HitSpec` →
//!   assignment traces against a real backend, then replay them with
//!   no marketplace at all (a deterministic test double).
//!
//! # The group contract
//!
//! Implementations must uphold what operators rely on:
//!
//! 1. [`CrowdBackend::group_hits`] returns a group's HITs in the order
//!    their specs were passed to `post_group*`.
//! 2. After [`CrowdBackend::run`] returns [`RunOutcome::Completed`],
//!    every HIT of every posted group has exactly its requested number
//!    of assignments, each from a distinct worker.
//! 3. [`CrowdBackend::now`] is monotone non-decreasing.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use qurk_crowd::market::{Assignment, AssignmentId, HitGroupId, HitId, RunOutcome};
use qurk_crowd::sim::SimTime;
use qurk_crowd::{Answer, HitSpec, Marketplace, WorkerId};

use crate::store::DurableStore;

/// Generous default for "run until everything completes" (30 virtual
/// days — far beyond any workload the paper's crowd would finish).
pub const RUN_TO_COMPLETION_SECS: f64 = 30.0 * 24.0 * 3600.0;

/// The minimal marketplace surface crowd operators use.
///
/// Implemented by [`qurk_crowd::Marketplace`], by `&mut B` for any
/// backend `B` (so shims can borrow), and by the decorators in this
/// module. See the module docs for the group contract.
///
/// `Send + Sync` is part of the contract: the multi-tenant service
/// ([`crate::service`]) runs each query on its own thread against a
/// shared backend, so a backend that cannot cross threads cannot be
/// served. Keep interiors behind `Mutex`/`RwLock` (never
/// `Rc`/`RefCell` — `xtask lint` and `tests/send_sync.rs` enforce
/// this).
pub trait CrowdBackend: Send + Sync {
    /// Post a group of HITs with the backend's default assignment
    /// count per HIT.
    fn post_group(&mut self, specs: Vec<HitSpec>) -> HitGroupId;

    /// Post a group of HITs requesting `assignments` per HIT.
    fn post_group_with_assignments(&mut self, specs: Vec<HitSpec>, assignments: u32) -> HitGroupId;

    /// Advance the backend until all posted work completes or
    /// `limit_secs` of virtual time elapse.
    fn run(&mut self, limit_secs: f64) -> RunOutcome;

    /// [`Self::run`] with [`RUN_TO_COMPLETION_SECS`].
    fn run_to_completion(&mut self) -> RunOutcome {
        self.run(RUN_TO_COMPLETION_SECS)
    }

    /// Completed assignments of a group, in completion order. Takes
    /// `&mut self` because caching/recording backends fold freshly
    /// completed work into their stores here.
    fn assignments(&mut self, group: HitGroupId) -> Vec<Assignment>;

    /// A group's HITs in spec order.
    fn group_hits(&self, group: HitGroupId) -> Vec<HitId>;

    /// Per-assignment completion latencies (seconds since the group
    /// was posted).
    fn group_latencies(&self, group: HitGroupId) -> Vec<f64>;

    /// Assignments still outstanding in a group.
    fn group_outstanding(&self, group: HitGroupId) -> u32;

    /// Number of questions in a HIT (for mapping flattened answer
    /// positions back to tuples).
    fn hit_question_count(&self, hit: HitId) -> usize;

    /// Ban workers from future assignments (§6). In-flight work is
    /// unaffected.
    fn ban_workers(&mut self, workers: Vec<WorkerId>);

    /// Current virtual time.
    fn now(&self) -> SimTime;

    /// Total HITs ever posted to the *real* crowd (cache hits served
    /// without posting do not count).
    fn hits_posted(&self) -> usize;

    /// Total dollars spent since construction.
    fn spend_dollars(&self) -> f64;

    /// Total assignments paid for since construction.
    fn assignments_completed(&self) -> u64;

    /// Assignments requested per HIT when [`Self::post_group`] is
    /// used without an override (the paper's 5 unless the backend
    /// says otherwise). Used for accounting, not enforcement.
    fn default_assignments(&self) -> u32 {
        5
    }

    /// Post with an optional assignment override (`None` = default).
    fn post(&mut self, specs: Vec<HitSpec>, assignments: Option<u32>) -> HitGroupId {
        match assignments {
            Some(n) => self.post_group_with_assignments(specs, n),
            None => self.post_group(specs),
        }
    }
}

impl CrowdBackend for Marketplace {
    fn post_group(&mut self, specs: Vec<HitSpec>) -> HitGroupId {
        Marketplace::post_group(self, specs)
    }

    fn default_assignments(&self) -> u32 {
        Marketplace::default_assignments(self)
    }

    fn post_group_with_assignments(&mut self, specs: Vec<HitSpec>, assignments: u32) -> HitGroupId {
        Marketplace::post_group_with_assignments(self, specs, assignments)
    }

    fn run(&mut self, limit_secs: f64) -> RunOutcome {
        Marketplace::run(self, limit_secs)
    }

    fn assignments(&mut self, group: HitGroupId) -> Vec<Assignment> {
        Marketplace::assignments(self, group).cloned().collect()
    }

    fn group_hits(&self, group: HitGroupId) -> Vec<HitId> {
        Marketplace::group_hits(self, group)
    }

    fn group_latencies(&self, group: HitGroupId) -> Vec<f64> {
        Marketplace::group_latencies(self, group)
    }

    fn group_outstanding(&self, group: HitGroupId) -> u32 {
        Marketplace::group_outstanding(self, group)
    }

    fn hit_question_count(&self, hit: HitId) -> usize {
        self.hit(hit).questions.len()
    }

    fn ban_workers(&mut self, workers: Vec<WorkerId>) {
        Marketplace::ban_workers(self, workers)
    }

    fn now(&self) -> SimTime {
        Marketplace::now(self)
    }

    fn hits_posted(&self) -> usize {
        Marketplace::hits_posted(self)
    }

    fn spend_dollars(&self) -> f64 {
        self.ledger.total()
    }

    fn assignments_completed(&self) -> u64 {
        self.ledger.assignments_paid
    }
}

impl<B: CrowdBackend + ?Sized> CrowdBackend for &mut B {
    fn post_group(&mut self, specs: Vec<HitSpec>) -> HitGroupId {
        (**self).post_group(specs)
    }

    fn default_assignments(&self) -> u32 {
        (**self).default_assignments()
    }

    fn post_group_with_assignments(&mut self, specs: Vec<HitSpec>, assignments: u32) -> HitGroupId {
        (**self).post_group_with_assignments(specs, assignments)
    }

    fn run(&mut self, limit_secs: f64) -> RunOutcome {
        (**self).run(limit_secs)
    }

    fn assignments(&mut self, group: HitGroupId) -> Vec<Assignment> {
        (**self).assignments(group)
    }

    fn group_hits(&self, group: HitGroupId) -> Vec<HitId> {
        (**self).group_hits(group)
    }

    fn group_latencies(&self, group: HitGroupId) -> Vec<f64> {
        (**self).group_latencies(group)
    }

    fn group_outstanding(&self, group: HitGroupId) -> u32 {
        (**self).group_outstanding(group)
    }

    fn hit_question_count(&self, hit: HitId) -> usize {
        (**self).hit_question_count(hit)
    }

    fn ban_workers(&mut self, workers: Vec<WorkerId>) {
        (**self).ban_workers(workers)
    }

    fn now(&self) -> SimTime {
        (**self).now()
    }

    fn hits_posted(&self) -> usize {
        (**self).hits_posted()
    }

    fn spend_dollars(&self) -> f64 {
        (**self).spend_dollars()
    }

    fn assignments_completed(&self) -> u64 {
        (**self).assignments_completed()
    }
}

/// Content key for one HIT spec under a given assignment request.
/// Identical questions + interface + assignment count ⇒ identical key.
fn spec_key(spec: &HitSpec, assignments: Option<u32>) -> u64 {
    let mut h = DefaultHasher::new();
    // Question and HitKind are Hash, so the key is computed directly
    // from content with zero allocation (the seed rendered both to a
    // Debug string first).
    spec.kind.hash(&mut h);
    spec.questions.hash(&mut h);
    assignments.hash(&mut h);
    h.finish()
}

// ------------------------------------------------------------- caching

/// One recorded assignment, relative to its group's post time.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAssignment {
    pub worker: WorkerId,
    pub answers: Vec<Answer>,
    pub accept_delay_secs: f64,
    pub submit_delay_secs: f64,
}

/// Fold one *completed* inner group into a spec-keyed trace store
/// (shared by [`CachingBackend`] and [`RecordingBackend`]).
/// `keys_by_pos` maps inner-hit positions (spec order) to spec keys;
/// positions absent from it are skipped.
fn fold_completed_group<B: CrowdBackend + ?Sized>(
    inner: &mut B,
    group: HitGroupId,
    posted_at: SimTime,
    keys_by_pos: &[(usize, u64)],
    entries: &mut HashMap<u64, TraceEntry>,
) {
    let inner_hits = inner.group_hits(group);
    let mut by_hit: HashMap<HitId, Vec<Assignment>> = HashMap::new();
    for a in inner.assignments(group) {
        by_hit.entry(a.hit).or_default().push(a);
    }
    for &(pos, key) in keys_by_pos {
        let hit = inner_hits[pos];
        let assignments = by_hit
            .remove(&hit)
            .unwrap_or_default()
            .into_iter()
            .map(|a| TraceAssignment {
                worker: a.worker,
                answers: a.answers,
                accept_delay_secs: a.accepted_at.secs() - posted_at.secs(),
                submit_delay_secs: a.submitted_at.secs() - posted_at.secs(),
            })
            .collect();
        let question_count = inner.hit_question_count(hit);
        entries.entry(key).or_insert(TraceEntry {
            question_count,
            assignments,
        });
    }
}

#[derive(Debug, Clone, Copy)]
enum VirtualSource {
    /// Served from cache; assignments replayed from the store.
    Cached(u64),
    /// Forwarded to the inner backend.
    Live { inner_hit_pos: usize },
    /// Identical to a live spec still in flight in another group
    /// (`owner` is that group's index): posted once by the owner,
    /// served here from the cache as soon as the owner completes.
    Shared { owner: usize },
}

#[derive(Debug, Clone, Copy)]
struct VirtualHit {
    question_count: usize,
    source: VirtualSource,
    key: u64,
}

#[derive(Debug)]
struct CacheGroup {
    /// Inner group holding the forwarded (uncached) specs, if any.
    inner: Option<HitGroupId>,
    /// Virtual HIT ids of this group, spec order.
    hits: Vec<HitId>,
    posted_at: SimTime,
    /// Live results folded into the cache yet?
    recorded: bool,
}

/// A backend decorator implementing the Task Cache of Figure 1 at the
/// HIT boundary: a spec identical (questions, interface, assignment
/// request) to one already completed is never re-posted — its recorded
/// assignments are replayed with zero latency and zero cost.
///
/// Granularity is the **whole HIT spec**, not individual questions
/// (where the seed's `TaskCache` cached combined answers per
/// question). Exactly repeated work — the common re-run case — is
/// free, but queries whose item sets overlap while batching
/// differently (e.g. after a machine filter drops a row and shifts
/// the chunking) produce different specs and re-ask the crowd.
///
/// Virtual HIT/group ids are allocated by this decorator; callers must
/// not mix them with the inner backend's ids.
pub struct CachingBackend<B> {
    inner: B,
    cache: HashMap<u64, TraceEntry>,
    /// Spec keys posted live but not yet folded into the cache, mapped
    /// to the virtual group that owns the live posting. A subsequent
    /// identical spec piggybacks on the in-flight work
    /// ([`VirtualSource::Shared`]) instead of re-posting — the
    /// cross-tenant "identical specs are paid for once" guarantee of
    /// [`crate::service`] even when both arrive in the same round.
    pending: HashMap<u64, usize>,
    hits: Vec<VirtualHit>,
    groups: Vec<CacheGroup>,
    next_assignment_id: usize,
    cache_hits: u64,
    cache_misses: u64,
    shared_hits: u64,
    /// Optional durable journal: every entry folded into `cache` is
    /// write-ahead appended here *before* the round's assignments are
    /// handed to the caller, so an acknowledged paid round is never
    /// lost to a crash (see [`crate::store`]).
    journal: Option<Arc<DurableStore>>,
    /// Cache growth bound: when set, least-recently-used entries are
    /// evicted once `cache` exceeds this many specs (see
    /// [`Self::set_max_entries`]). `None` = unbounded (the default).
    max_entries: Option<usize>,
    /// Monotone recency counter; bumped on every cache touch.
    tick: u64,
    /// Last-touch tick per cached spec key.
    recency: HashMap<u64, u64>,
    /// Entries touched at or after this tick are pinned: a batch's
    /// live groups hold bare spec keys, so anything referenced since
    /// [`Self::begin_batch`] must stay resident until the next batch.
    batch_floor: u64,
    evictions: u64,
}

impl<B: CrowdBackend> CachingBackend<B> {
    pub fn new(inner: B) -> Self {
        CachingBackend {
            inner,
            cache: HashMap::new(),
            pending: HashMap::new(),
            hits: Vec::new(),
            groups: Vec::new(),
            next_assignment_id: 0,
            cache_hits: 0,
            cache_misses: 0,
            shared_hits: 0,
            journal: None,
            max_entries: None,
            tick: 0,
            recency: HashMap::new(),
            batch_floor: 0,
            evictions: 0,
        }
    }

    /// A caching backend journaling to (and preloaded from) a durable
    /// store: the store's recovered cache entries replay without
    /// re-posting, and every newly paid round is appended write-ahead.
    pub fn with_journal(inner: B, journal: Arc<DurableStore>) -> Self {
        let mut backend = CachingBackend::new(inner);
        backend.cache = journal.cache_snapshot();
        // Seed recency in sorted-key order so a later eviction pass
        // over recovered entries is deterministic (the snapshot is a
        // HashMap; its iteration order is not).
        let mut keys: Vec<u64> = backend.cache.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            backend.tick += 1;
            backend.recency.insert(key, backend.tick);
        }
        backend.journal = Some(journal);
        backend
    }

    /// The attached durable journal, if any.
    pub fn journal(&self) -> Option<&Arc<DurableStore>> {
        self.journal.as_ref()
    }

    pub fn inner(&self) -> &B {
        &self.inner
    }

    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    pub fn into_inner(self) -> B {
        self.inner
    }

    /// (cache hits, cache misses) over all posted specs. Specs served
    /// by piggybacking on in-flight identical work count as hits.
    pub fn stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    /// How many of the cache hits were in-flight shares: specs whose
    /// identical twin had been posted live but had not completed yet.
    pub fn shared_hits(&self) -> u64 {
        self.shared_hits
    }

    /// Assignments still outstanding in the group's **own** live
    /// posting, excluding in-flight work shared from other groups.
    /// This is what the group's owner will be charged for; see
    /// [`CrowdBackend::group_outstanding`] for the completion view.
    pub fn live_outstanding(&self, group: HitGroupId) -> u32 {
        self.groups[group.0]
            .inner
            .map_or(0, |ig| self.inner.group_outstanding(ig))
    }

    /// Number of distinct specs with recorded answers.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Drop all recorded answers (subsequent identical specs re-post).
    pub fn clear(&mut self) {
        self.cache.clear();
        self.recency.clear();
        self.cache_hits = 0;
        self.cache_misses = 0;
    }

    /// Export the recorded spec → assignment traces (e.g. to seed a
    /// [`ReplayBackend`]).
    pub fn export_trace(&self) -> ReplayTrace {
        ReplayTrace {
            entries: self.cache.clone(),
        }
    }

    /// Bound the cache to at most `max` recorded specs, evicting the
    /// least recently used beyond that (`None` removes the bound).
    ///
    /// Eviction is memory-only and journal-aware: a journaled entry is
    /// never deleted from the durable log, so recovery still replays
    /// every paid round. An evicted spec that is posted again is a
    /// cache miss — it re-posts live and is paid for again, exactly as
    /// if it had never been seen. Entries touched since the last
    /// [`Self::begin_batch`] are pinned (live groups reference them by
    /// key), so the cache may transiently overshoot `max` within a
    /// batch.
    pub fn set_max_entries(&mut self, max: Option<usize>) {
        self.max_entries = max;
        self.enforce_cap();
    }

    /// Builder form of [`Self::set_max_entries`].
    pub fn with_max_entries(mut self, max: usize) -> Self {
        self.set_max_entries(Some(max));
        self
    }

    /// The configured cache bound, if any.
    pub fn max_entries(&self) -> Option<usize> {
        self.max_entries
    }

    /// Entries evicted by the [`Self::set_max_entries`] bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Mark a batch boundary: everything cached so far becomes
    /// eligible for eviction, and entries touched from here on are
    /// pinned until the next boundary. The service scheduler calls
    /// this at the top of every `run_pending` batch; standalone
    /// sessions call it per query.
    pub fn begin_batch(&mut self) {
        self.batch_floor = self.tick;
        self.enforce_cap();
    }

    fn touch(&mut self, key: u64) {
        self.tick += 1;
        self.recency.insert(key, self.tick);
    }

    /// Evict least-recently-used unpinned entries until the cache fits
    /// `max_entries`. Linear scans per eviction are fine at the cache
    /// sizes a bound is meant for (thousands of specs).
    fn enforce_cap(&mut self) {
        let Some(max) = self.max_entries else { return };
        while self.cache.len() > max {
            let victim = self
                .cache
                .keys()
                .map(|&k| (self.recency.get(&k).copied().unwrap_or(0), k))
                .filter(|&(tick, _)| tick < self.batch_floor)
                .min();
            let Some((_, key)) = victim else {
                break; // everything resident is pinned by the current batch
            };
            self.cache.remove(&key);
            self.recency.remove(&key);
            self.evictions += 1;
        }
    }

    fn post_impl(&mut self, specs: Vec<HitSpec>, assignments: Option<u32>) -> HitGroupId {
        let group_id = HitGroupId(self.groups.len());
        let posted_at = self.inner.now();
        let mut group_hits = Vec::with_capacity(specs.len());
        let mut live_specs = Vec::new();
        for spec in specs {
            let key = spec_key(&spec, assignments);
            let question_count = spec.questions.len();
            let hit_id = HitId(self.hits.len());
            group_hits.push(hit_id);
            let source = if self.cache.contains_key(&key) {
                self.cache_hits += 1;
                // Pin the entry for the rest of the batch: this group
                // holds only the bare key and will replay it later.
                self.touch(key);
                VirtualSource::Cached(key)
            } else if let Some(&owner) = self.pending.get(&key) {
                self.cache_hits += 1;
                self.shared_hits += 1;
                VirtualSource::Shared { owner }
            } else {
                self.cache_misses += 1;
                self.pending.insert(key, group_id.0);
                let pos = live_specs.len();
                live_specs.push(spec);
                VirtualSource::Live { inner_hit_pos: pos }
            };
            self.hits.push(VirtualHit {
                question_count,
                source,
                key,
            });
        }
        let inner = if live_specs.is_empty() {
            None
        } else {
            Some(self.inner.post(live_specs, assignments))
        };
        self.groups.push(CacheGroup {
            inner,
            hits: group_hits,
            posted_at,
            recorded: false,
        });
        group_id
    }

    /// Fold a completed group's live results into the cache.
    fn record_group(&mut self, group: HitGroupId) {
        let (inner_group, posted_at) = {
            let g = &self.groups[group.0];
            if g.recorded {
                return;
            }
            let Some(ig) = g.inner else {
                self.groups[group.0].recorded = true;
                return;
            };
            if self.inner.group_outstanding(ig) > 0 {
                return; // not finished yet; try again later
            }
            (ig, g.posted_at)
        };
        let keys_by_pos: Vec<(usize, u64)> = self.groups[group.0]
            .hits
            .iter()
            .filter_map(|&h| {
                let vh = &self.hits[h.0];
                match vh.source {
                    VirtualSource::Live { inner_hit_pos } => Some((inner_hit_pos, vh.key)),
                    VirtualSource::Cached(_) | VirtualSource::Shared { .. } => None,
                }
            })
            .collect();
        // Which keys are about to enter the cache for the first time
        // (fold is `or_insert`, so pre-existing entries are kept).
        let fresh: Vec<u64> = keys_by_pos
            .iter()
            .map(|&(_, key)| key)
            .filter(|key| !self.cache.contains_key(key))
            .collect();
        fold_completed_group(
            &mut self.inner,
            inner_group,
            posted_at,
            &keys_by_pos,
            &mut self.cache,
        );
        for &(_, key) in &keys_by_pos {
            self.pending.remove(&key);
            self.touch(key);
        }
        // Write-ahead: the paid round becomes durable before its
        // assignments are returned to (acknowledged by) the caller.
        if let Some(journal) = &self.journal {
            for key in fresh {
                if let Some(entry) = self.cache.get(&key) {
                    journal.append_cache_entry(key, entry);
                }
            }
        }
        self.groups[group.0].recorded = true;
        self.enforce_cap();
    }

    /// Release the in-flight dedup slots owned by `group` (the
    /// `pending` keys of its live specs) without folding anything.
    ///
    /// Called when the query that posted the group **fails** before
    /// its rounds complete: leaving the keys pending would make every
    /// future identical spec piggyback
    /// ([`VirtualSource::Shared`]) on a group nobody is driving to
    /// completion — a leak that turns into a hang or a miss. After
    /// release, an identical spec re-posts live. A group that already
    /// recorded is untouched (its keys are in the cache, not pending).
    pub fn release_in_flight(&mut self, group: HitGroupId) {
        if self.groups.get(group.0).is_none_or(|g| g.recorded) {
            return;
        }
        self.pending.retain(|_, owner| *owner != group.0);
    }

    /// Number of spec keys posted live but not yet folded (in-flight
    /// dedup slots) — observability for the release-on-error fix.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Release **every** in-flight dedup slot. Single-owner variant of
    /// [`Self::release_in_flight`] for contexts (like [`crate::session::Session`])
    /// where all pending groups belong to the one query that just
    /// failed.
    pub fn release_all_in_flight(&mut self) {
        self.pending.clear();
    }

    /// Fold the owner groups of this group's unresolved shared specs,
    /// so [`Self::replay_shared`] finds their answers in the cache.
    fn record_shared_owners(&mut self, group: HitGroupId) {
        let owners: Vec<usize> = self.groups[group.0]
            .hits
            .clone()
            .into_iter()
            .filter_map(|h| {
                let vh = &self.hits[h.0];
                match vh.source {
                    VirtualSource::Shared { owner } if !self.cache.contains_key(&vh.key) => {
                        Some(owner)
                    }
                    _ => None,
                }
            })
            .collect();
        for owner in owners {
            self.record_group(HitGroupId(owner));
        }
    }

    fn replay(&mut self, key: u64, hit: HitId, group: HitGroupId) -> Vec<Assignment> {
        let posted_at = self.groups[group.0].posted_at;
        // Cached sources are pinned against eviction from post time
        // (`touch` in `post_impl`) until the next batch boundary, so
        // the entry is present for any group still being read; a group
        // read across batches degrades to no answers rather than a
        // panic.
        let Some(entry) = self.cache.get(&key) else {
            return Vec::new();
        };
        let cached = entry.assignments.clone();
        self.touch(key);
        cached
            .into_iter()
            .map(|t| {
                let id = AssignmentId(usize::MAX - self.next_assignment_id);
                self.next_assignment_id += 1;
                Assignment {
                    id,
                    hit,
                    group,
                    worker: t.worker,
                    answers: t.answers,
                    // Replays are instantaneous: the answer already
                    // exists, nobody re-does the work.
                    accepted_at: posted_at,
                    submitted_at: posted_at,
                }
            })
            .collect()
    }

    /// Serve a shared spec from the cache with the *owner's* real
    /// completion times: the sharer genuinely waited for the in-flight
    /// crowd work, unlike a [`VirtualSource::Cached`] replay.
    /// Timestamps are clamped to the sharer's post time for answers
    /// that had already arrived when it posted.
    fn replay_shared(
        &mut self,
        key: u64,
        hit: HitId,
        group: HitGroupId,
        owner: usize,
    ) -> Vec<Assignment> {
        let own_posted = self.groups[group.0].posted_at;
        let owner_posted = self.groups[owner].posted_at;
        let clamp = |t: SimTime| {
            if t.secs() < own_posted.secs() {
                own_posted
            } else {
                t
            }
        };
        let Some(entry) = self.cache.get(&key) else {
            return Vec::new();
        };
        let cached = entry.assignments.clone();
        self.touch(key);
        cached
            .into_iter()
            .map(|t| {
                let id = AssignmentId(usize::MAX - self.next_assignment_id);
                self.next_assignment_id += 1;
                Assignment {
                    id,
                    hit,
                    group,
                    worker: t.worker,
                    answers: t.answers,
                    accepted_at: clamp(owner_posted.plus_secs(t.accept_delay_secs)),
                    submitted_at: clamp(owner_posted.plus_secs(t.submit_delay_secs)),
                }
            })
            .collect()
    }
}

impl<B: CrowdBackend> CrowdBackend for CachingBackend<B> {
    fn post_group(&mut self, specs: Vec<HitSpec>) -> HitGroupId {
        self.post_impl(specs, None)
    }

    fn default_assignments(&self) -> u32 {
        self.inner.default_assignments()
    }

    fn post_group_with_assignments(&mut self, specs: Vec<HitSpec>, assignments: u32) -> HitGroupId {
        self.post_impl(specs, Some(assignments))
    }

    fn run(&mut self, limit_secs: f64) -> RunOutcome {
        self.inner.run(limit_secs)
    }

    fn assignments(&mut self, group: HitGroupId) -> Vec<Assignment> {
        self.record_group(group);
        self.record_shared_owners(group);
        let hits = self.groups[group.0].hits.clone();
        let inner_group = self.groups[group.0].inner;
        let mut out = Vec::new();
        // Live assignments first, translated to virtual ids; their
        // completion order is preserved.
        if let Some(ig) = inner_group {
            let inner_hits = self.inner.group_hits(ig);
            let inner_pos: HashMap<HitId, usize> = inner_hits
                .iter()
                .enumerate()
                .map(|(p, &h)| (h, p))
                .collect();
            let live_virt: Vec<HitId> = hits
                .iter()
                .copied()
                .filter(|&h| matches!(self.hits[h.0].source, VirtualSource::Live { .. }))
                .collect();
            for mut a in self.inner.assignments(ig) {
                let pos = inner_pos[&a.hit];
                a.hit = live_virt[pos];
                a.group = group;
                out.push(a);
            }
        }
        for h in hits {
            match self.hits[h.0].source {
                VirtualSource::Cached(key) => out.extend(self.replay(key, h, group)),
                VirtualSource::Shared { owner } => {
                    let key = self.hits[h.0].key;
                    if self.cache.contains_key(&key) {
                        out.extend(self.replay_shared(key, h, group, owner));
                    }
                }
                VirtualSource::Live { .. } => {}
            }
        }
        out
    }

    fn group_hits(&self, group: HitGroupId) -> Vec<HitId> {
        self.groups[group.0].hits.clone()
    }

    fn group_latencies(&self, group: HitGroupId) -> Vec<f64> {
        let g = &self.groups[group.0];
        let mut out = Vec::new();
        if let Some(ig) = g.inner {
            out.extend(self.inner.group_latencies(ig));
        }
        for &h in &g.hits {
            match self.hits[h.0].source {
                VirtualSource::Cached(key) => {
                    // Replayed answers arrive instantly. Missing means
                    // evicted after the group's batch ended.
                    let n = self.cache.get(&key).map_or(0, |e| e.assignments.len());
                    out.extend(std::iter::repeat_n(0.0, n));
                }
                VirtualSource::Shared { owner } => {
                    // The sharer waits for the owner's live round: its
                    // latency is the owner's, minus the head start the
                    // owner had (clamped for answers that landed before
                    // this group was even posted).
                    if let Some(entry) = self.cache.get(&self.hits[h.0].key) {
                        let offset = g.posted_at.secs() - self.groups[owner].posted_at.secs();
                        out.extend(
                            entry
                                .assignments
                                .iter()
                                .map(|a| (a.submit_delay_secs - offset).max(0.0)),
                        );
                    }
                }
                VirtualSource::Live { .. } => {}
            }
        }
        out
    }

    fn group_outstanding(&self, group: HitGroupId) -> u32 {
        let g = &self.groups[group.0];
        let mut out = g.inner.map_or(0, |ig| self.inner.group_outstanding(ig));
        // Shared specs are complete only once their owner's live round
        // is: count each unresolved owner's outstanding work once.
        let mut seen: Vec<usize> = vec![group.0];
        for &h in &g.hits {
            let vh = &self.hits[h.0];
            if let VirtualSource::Shared { owner } = vh.source {
                if self.cache.contains_key(&vh.key) || seen.contains(&owner) {
                    continue;
                }
                seen.push(owner);
                if let Some(ig) = self.groups[owner].inner {
                    out += self.inner.group_outstanding(ig);
                }
            }
        }
        out
    }

    fn hit_question_count(&self, hit: HitId) -> usize {
        self.hits[hit.0].question_count
    }

    fn ban_workers(&mut self, workers: Vec<WorkerId>) {
        self.inner.ban_workers(workers)
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn hits_posted(&self) -> usize {
        self.inner.hits_posted()
    }

    fn spend_dollars(&self) -> f64 {
        self.inner.spend_dollars()
    }

    fn assignments_completed(&self) -> u64 {
        self.inner.assignments_completed()
    }
}

// ------------------------------------------------------------ metering

/// One HIT group's observed round: size, effort, and completion time.
/// The raw material of the optimizer's latency model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoundObservation {
    /// HITs in the group.
    pub hits: usize,
    /// Total worker effort: Σ spec work-units × assignments per HIT.
    pub work_units: f64,
    /// Seconds from posting to the last completed assignment.
    pub secs: f64,
}

/// Resource usage over one metering epoch (typically one query).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BackendUsage {
    /// HITs posted to the real crowd.
    pub hits_posted: usize,
    /// Assignments paid for.
    pub assignments: u64,
    /// Dollars spent.
    pub dollars: f64,
    /// Virtual time elapsed (seconds).
    pub elapsed_secs: f64,
}

#[derive(Debug, Clone, Copy)]
struct MeterSnapshot {
    hits: usize,
    assignments: u64,
    dollars: f64,
    at: f64,
}

/// A backend decorator that meters resource consumption in epochs.
/// [`crate::session::Session`] opens one epoch per query and builds
/// [`crate::session::QueryReport`]s from the usage deltas.
pub struct MeteringBackend<B> {
    inner: B,
    epoch_start: Option<MeterSnapshot>,
    history: Vec<BackendUsage>,
    /// Groups posted during the open epoch (with their total
    /// assignment work-units), for per-round latency observation.
    epoch_groups: Vec<(HitGroupId, f64)>,
    /// Observed rounds of the last closed epoch.
    last_epoch_groups: Vec<RoundObservation>,
}

impl<B: CrowdBackend> MeteringBackend<B> {
    pub fn new(inner: B) -> Self {
        MeteringBackend {
            inner,
            epoch_start: None,
            history: Vec::new(),
            epoch_groups: Vec::new(),
            last_epoch_groups: Vec::new(),
        }
    }

    pub fn inner(&self) -> &B {
        &self.inner
    }

    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    pub fn into_inner(self) -> B {
        self.inner
    }

    fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot {
            hits: self.inner.hits_posted(),
            assignments: self.inner.assignments_completed(),
            dollars: self.inner.spend_dollars(),
            at: self.inner.now().secs(),
        }
    }

    /// Open a new epoch (discarding any currently open one).
    pub fn begin_epoch(&mut self) {
        self.epoch_start = Some(self.snapshot());
        self.epoch_groups.clear();
    }

    /// Usage since [`Self::begin_epoch`] (or since construction if no
    /// epoch is open).
    ///
    /// An epoch that posted no HITs and completed no assignments is a
    /// **zero-cost epoch**: its elapsed time is reported as 0 even if
    /// the backend's clock moved. The clock can tick inside such an
    /// epoch only on behalf of *other* work (stale outstanding HITs
    /// from an earlier timed-out query, queued arrival events), and
    /// charging those ticks to a machine-only or fully-cached query
    /// would double-count them across epochs.
    pub fn epoch_usage(&self) -> BackendUsage {
        let start = self.epoch_start.unwrap_or(MeterSnapshot {
            hits: 0,
            assignments: 0,
            dollars: 0.0,
            at: 0.0,
        });
        let end = self.snapshot();
        let hits_posted = end.hits - start.hits;
        let assignments = end.assignments - start.assignments;
        BackendUsage {
            hits_posted,
            assignments,
            dollars: end.dollars - start.dollars,
            elapsed_secs: if hits_posted == 0 && assignments == 0 {
                0.0
            } else {
                end.at - start.at
            },
        }
    }

    /// Close the epoch, append its usage to the history and return it.
    pub fn end_epoch(&mut self) -> BackendUsage {
        let usage = self.epoch_usage();
        self.epoch_start = None;
        self.history.push(usage);
        // Per-round observations: the raw material of the optimizer's
        // latency model (round time ≈ α + β · work-units).
        self.last_epoch_groups = self
            .epoch_groups
            .drain(..)
            .map(|(g, work_units)| {
                let hits = self.inner.group_hits(g).len();
                let secs = self
                    .inner
                    .group_latencies(g)
                    .into_iter()
                    .fold(0.0f64, f64::max);
                RoundObservation {
                    hits,
                    work_units,
                    secs,
                }
            })
            .collect();
        usage
    }

    /// Observed rounds of the most recently closed epoch, in posting
    /// order. Groups with no completed assignments report 0 seconds.
    pub fn last_epoch_groups(&self) -> &[RoundObservation] {
        &self.last_epoch_groups
    }

    /// Usage of every closed epoch, in order.
    pub fn history(&self) -> &[BackendUsage] {
        &self.history
    }
}

fn specs_work_units(specs: &[HitSpec], assignments: u32) -> f64 {
    specs.iter().map(HitSpec::work_units).sum::<f64>() * f64::from(assignments)
}

impl<B: CrowdBackend> CrowdBackend for MeteringBackend<B> {
    fn post_group(&mut self, specs: Vec<HitSpec>) -> HitGroupId {
        let units = specs_work_units(&specs, self.inner.default_assignments());
        let g = self.inner.post_group(specs);
        self.epoch_groups.push((g, units));
        g
    }

    fn post_group_with_assignments(&mut self, specs: Vec<HitSpec>, assignments: u32) -> HitGroupId {
        let units = specs_work_units(&specs, assignments);
        let g = self.inner.post_group_with_assignments(specs, assignments);
        self.epoch_groups.push((g, units));
        g
    }

    fn default_assignments(&self) -> u32 {
        self.inner.default_assignments()
    }

    fn run(&mut self, limit_secs: f64) -> RunOutcome {
        self.inner.run(limit_secs)
    }

    fn assignments(&mut self, group: HitGroupId) -> Vec<Assignment> {
        self.inner.assignments(group)
    }

    fn group_hits(&self, group: HitGroupId) -> Vec<HitId> {
        self.inner.group_hits(group)
    }

    fn group_latencies(&self, group: HitGroupId) -> Vec<f64> {
        self.inner.group_latencies(group)
    }

    fn group_outstanding(&self, group: HitGroupId) -> u32 {
        self.inner.group_outstanding(group)
    }

    fn hit_question_count(&self, hit: HitId) -> usize {
        self.inner.hit_question_count(hit)
    }

    fn ban_workers(&mut self, workers: Vec<WorkerId>) {
        self.inner.ban_workers(workers)
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn hits_posted(&self) -> usize {
        self.inner.hits_posted()
    }

    fn spend_dollars(&self) -> f64 {
        self.inner.spend_dollars()
    }

    fn assignments_completed(&self) -> u64 {
        self.inner.assignments_completed()
    }
}

// ----------------------------------------------------- record / replay

/// Recorded answers for one HIT spec.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    pub question_count: usize,
    pub assignments: Vec<TraceAssignment>,
}

/// A spec-keyed trace of crowd answers, produced by
/// [`RecordingBackend`] (or [`CachingBackend::export_trace`]) and
/// consumed by [`ReplayBackend`].
#[derive(Debug, Clone, Default)]
pub struct ReplayTrace {
    entries: HashMap<u64, TraceEntry>,
}

impl ReplayTrace {
    /// Number of distinct specs with recorded answers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded spec keys, sorted (for diffing against a durable
    /// store's [`DurableStore::cache_keys`]).
    pub fn keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// The recorded entry for one spec key.
    pub fn get(&self, key: u64) -> Option<&TraceEntry> {
        self.entries.get(&key)
    }
}

/// A passthrough decorator that records every completed HIT's
/// assignments, keyed by spec content. Ids are the inner backend's ids
/// (unlike [`CachingBackend`], nothing is rewritten or deduplicated).
pub struct RecordingBackend<B> {
    inner: B,
    trace: ReplayTrace,
    groups: Vec<RecordedGroup>,
}

struct RecordedGroup {
    inner: HitGroupId,
    keys: Vec<u64>,
    posted_at: SimTime,
    recorded: bool,
}

impl<B: CrowdBackend> RecordingBackend<B> {
    pub fn new(inner: B) -> Self {
        RecordingBackend {
            inner,
            trace: ReplayTrace::default(),
            groups: Vec::new(),
        }
    }

    pub fn inner(&self) -> &B {
        &self.inner
    }

    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// The trace recorded so far: every group that had completed by
    /// the last [`CrowdBackend::run`] / [`CrowdBackend::assignments`]
    /// call is included.
    pub fn trace(&self) -> &ReplayTrace {
        &self.trace
    }

    /// Consume the recorder, returning the trace.
    pub fn into_trace(self) -> ReplayTrace {
        self.trace
    }

    fn post_impl(&mut self, specs: Vec<HitSpec>, assignments: Option<u32>) -> HitGroupId {
        let keys = specs.iter().map(|s| spec_key(s, assignments)).collect();
        let posted_at = self.inner.now();
        let inner = self.inner.post(specs, assignments);
        self.groups.push(RecordedGroup {
            inner,
            keys,
            posted_at,
            recorded: false,
        });
        inner
    }

    fn record_completed(&mut self) {
        for gi in 0..self.groups.len() {
            if self.groups[gi].recorded || self.inner.group_outstanding(self.groups[gi].inner) > 0 {
                continue;
            }
            let keys_by_pos: Vec<(usize, u64)> =
                self.groups[gi].keys.iter().copied().enumerate().collect();
            fold_completed_group(
                &mut self.inner,
                self.groups[gi].inner,
                self.groups[gi].posted_at,
                &keys_by_pos,
                &mut self.trace.entries,
            );
            self.groups[gi].recorded = true;
        }
    }
}

impl<B: CrowdBackend> CrowdBackend for RecordingBackend<B> {
    fn post_group(&mut self, specs: Vec<HitSpec>) -> HitGroupId {
        self.post_impl(specs, None)
    }

    fn default_assignments(&self) -> u32 {
        self.inner.default_assignments()
    }

    fn post_group_with_assignments(&mut self, specs: Vec<HitSpec>, assignments: u32) -> HitGroupId {
        self.post_impl(specs, Some(assignments))
    }

    fn run(&mut self, limit_secs: f64) -> RunOutcome {
        let outcome = self.inner.run(limit_secs);
        self.record_completed();
        outcome
    }

    fn assignments(&mut self, group: HitGroupId) -> Vec<Assignment> {
        self.record_completed();
        self.inner.assignments(group)
    }

    fn group_hits(&self, group: HitGroupId) -> Vec<HitId> {
        self.inner.group_hits(group)
    }

    fn group_latencies(&self, group: HitGroupId) -> Vec<f64> {
        self.inner.group_latencies(group)
    }

    fn group_outstanding(&self, group: HitGroupId) -> u32 {
        self.inner.group_outstanding(group)
    }

    fn hit_question_count(&self, hit: HitId) -> usize {
        self.inner.hit_question_count(hit)
    }

    fn ban_workers(&mut self, workers: Vec<WorkerId>) {
        self.inner.ban_workers(workers)
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn hits_posted(&self) -> usize {
        self.inner.hits_posted()
    }

    fn spend_dollars(&self) -> f64 {
        self.inner.spend_dollars()
    }

    fn assignments_completed(&self) -> u64 {
        self.inner.assignments_completed()
    }
}

/// A [`CrowdBackend`] with no marketplace behind it: assignments are
/// served from a [`ReplayTrace`]. Posting a spec absent from the trace
/// leaves it outstanding forever, so [`CrowdBackend::run`] reports
/// [`RunOutcome::TimedOut`] — the replay equivalent of a batch the
/// crowd never accepts.
pub struct ReplayBackend {
    trace: ReplayTrace,
    hits: Vec<ReplayHit>,
    groups: Vec<ReplayGroup>,
    now: SimTime,
    price_per_assignment: f64,
    default_assignments: u32,
    banned: Vec<WorkerId>,
    next_assignment_id: usize,
}

struct ReplayHit {
    key: u64,
    question_count: usize,
    requested: Option<u32>,
    completed: bool,
}

struct ReplayGroup {
    hits: Vec<HitId>,
    posted_at: SimTime,
}

impl ReplayBackend {
    pub fn from_trace(trace: ReplayTrace) -> Self {
        ReplayBackend {
            trace,
            hits: Vec::new(),
            groups: Vec::new(),
            now: SimTime::ZERO,
            price_per_assignment: 0.015,
            default_assignments: 5,
            banned: Vec::new(),
            next_assignment_id: 0,
        }
    }

    /// Assignments assumed per HIT when `post_group` is used and the
    /// spec is absent from the trace (only affects the outstanding
    /// count reported for unanswerable work). Defaults to the paper's 5.
    pub fn with_default_assignments(mut self, n: u32) -> Self {
        self.default_assignments = n;
        self
    }

    /// Price charged per replayed assignment (defaults to the paper's
    /// $0.015).
    pub fn with_price(mut self, dollars_per_assignment: f64) -> Self {
        self.price_per_assignment = dollars_per_assignment;
        self
    }

    /// Workers passed to [`CrowdBackend::ban_workers`]. Replayed
    /// traces are immutable, so bans are recorded but do not filter
    /// answers — mirroring "in-flight work is unaffected".
    pub fn banned(&self) -> &[WorkerId] {
        &self.banned
    }

    fn post_impl(&mut self, specs: Vec<HitSpec>, assignments: Option<u32>) -> HitGroupId {
        let group = HitGroupId(self.groups.len());
        let mut hits = Vec::with_capacity(specs.len());
        for spec in specs {
            assert!(!spec.questions.is_empty(), "HIT must contain questions");
            let id = HitId(self.hits.len());
            self.hits.push(ReplayHit {
                key: spec_key(&spec, assignments),
                question_count: spec.questions.len(),
                requested: assignments,
                completed: false,
            });
            hits.push(id);
        }
        self.groups.push(ReplayGroup {
            hits,
            posted_at: self.now,
        });
        group
    }

    fn entry(&self, hit: &ReplayHit) -> Option<&TraceEntry> {
        self.trace.entries.get(&hit.key)
    }
}

impl CrowdBackend for ReplayBackend {
    fn post_group(&mut self, specs: Vec<HitSpec>) -> HitGroupId {
        self.post_impl(specs, None)
    }

    fn default_assignments(&self) -> u32 {
        self.default_assignments
    }

    fn post_group_with_assignments(&mut self, specs: Vec<HitSpec>, assignments: u32) -> HitGroupId {
        self.post_impl(specs, Some(assignments))
    }

    fn run(&mut self, limit_secs: f64) -> RunOutcome {
        // Complete every hit whose recorded answers arrived within the
        // time budget, advancing the clock to the latest replayed
        // submission. Hits the trace cannot answer — or whose recorded
        // crowd took longer than the budget allows — stay outstanding,
        // exactly like a live marketplace timing out.
        let deadline = self.now.plus_secs(limit_secs);
        let mut latest = self.now.secs();
        let mut incomplete = false;
        for gi in 0..self.groups.len() {
            let posted = self.groups[gi].posted_at;
            for hi in 0..self.groups[gi].hits.len() {
                let hit_id = self.groups[gi].hits[hi];
                if self.hits[hit_id.0].completed {
                    continue;
                }
                match self.trace.entries.get(&self.hits[hit_id.0].key) {
                    Some(entry) => {
                        let finish = entry
                            .assignments
                            .iter()
                            .map(|a| posted.secs() + a.submit_delay_secs)
                            .fold(posted.secs(), f64::max);
                        if finish <= deadline.secs() {
                            latest = latest.max(finish);
                            self.hits[hit_id.0].completed = true;
                        } else {
                            incomplete = true;
                        }
                    }
                    None => incomplete = true,
                }
            }
        }
        if incomplete {
            self.now = deadline;
            RunOutcome::TimedOut
        } else {
            if latest > self.now.secs() {
                self.now = SimTime::ZERO.plus_secs(latest);
            }
            RunOutcome::Completed
        }
    }

    fn assignments(&mut self, group: HitGroupId) -> Vec<Assignment> {
        let g = &self.groups[group.0];
        let posted_at = g.posted_at;
        let mut out = Vec::new();
        for &hit in &g.hits {
            let h = &self.hits[hit.0];
            if !h.completed {
                continue;
            }
            let Some(entry) = self.entry(h) else { continue };
            for t in entry.assignments.clone() {
                let id = AssignmentId(self.next_assignment_id);
                self.next_assignment_id += 1;
                out.push(Assignment {
                    id,
                    hit,
                    group,
                    worker: t.worker,
                    answers: t.answers,
                    accepted_at: posted_at.plus_secs(t.accept_delay_secs),
                    submitted_at: posted_at.plus_secs(t.submit_delay_secs),
                });
            }
        }
        out
    }

    fn group_hits(&self, group: HitGroupId) -> Vec<HitId> {
        self.groups[group.0].hits.clone()
    }

    fn group_latencies(&self, group: HitGroupId) -> Vec<f64> {
        self.groups[group.0]
            .hits
            .iter()
            .filter(|&&h| self.hits[h.0].completed)
            .filter_map(|&h| self.entry(&self.hits[h.0]))
            .flat_map(|e| e.assignments.iter().map(|a| a.submit_delay_secs))
            .collect()
    }

    fn group_outstanding(&self, group: HitGroupId) -> u32 {
        // Like Marketplace: outstanding *assignments*, not HITs. For a
        // spec the trace cannot answer, the recorded assignment count
        // is unknown, so fall back to the requested (or default) count.
        self.groups[group.0]
            .hits
            .iter()
            .filter(|&&h| !self.hits[h.0].completed)
            .map(|&h| {
                let rh = &self.hits[h.0];
                match self.entry(rh) {
                    Some(e) => e.assignments.len() as u32,
                    None => rh.requested.unwrap_or(self.default_assignments),
                }
            })
            .sum()
    }

    fn hit_question_count(&self, hit: HitId) -> usize {
        self.hits[hit.0].question_count
    }

    fn ban_workers(&mut self, workers: Vec<WorkerId>) {
        self.banned.extend(workers);
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn hits_posted(&self) -> usize {
        self.hits.len()
    }

    fn spend_dollars(&self) -> f64 {
        self.assignments_completed() as f64 * self.price_per_assignment
    }

    fn assignments_completed(&self) -> u64 {
        self.hits
            .iter()
            .filter(|h| h.completed)
            .filter_map(|h| self.entry(h))
            .map(|e| e.assignments.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurk_crowd::question::{HitKind, Question};
    use qurk_crowd::truth::PredicateTruth;
    use qurk_crowd::{CrowdConfig, GroundTruth, ItemId};

    fn market(n: usize) -> (Marketplace, Vec<ItemId>) {
        let mut gt = GroundTruth::new();
        let items = gt.new_items(n);
        for (i, &it) in items.iter().enumerate() {
            gt.set_predicate(
                it,
                "p",
                PredicateTruth {
                    value: i % 2 == 0,
                    error_rate: 0.03,
                },
            );
        }
        (Marketplace::new(&CrowdConfig::default(), gt), items)
    }

    fn filter_specs(items: &[ItemId]) -> Vec<HitSpec> {
        items
            .iter()
            .map(|&item| {
                HitSpec::new(
                    vec![Question::Filter {
                        item,
                        predicate: "p".into(),
                    }],
                    HitKind::Filter,
                )
            })
            .collect()
    }

    #[test]
    fn caching_serves_identical_specs_without_posting() {
        let (m, items) = market(6);
        let mut b = CachingBackend::new(m);
        let g1 = b.post_group(filter_specs(&items));
        assert_eq!(b.run_to_completion(), RunOutcome::Completed);
        let first = b.assignments(g1);
        assert_eq!(first.len(), 6 * 5);
        let posted = b.hits_posted();

        let g2 = b.post_group(filter_specs(&items));
        assert_eq!(b.run_to_completion(), RunOutcome::Completed);
        let second = b.assignments(g2);
        assert_eq!(b.hits_posted(), posted, "cache hit must not repost");
        assert_eq!(second.len(), first.len());
        // Same answers per spec position, rebadged to the new group.
        for a in &second {
            assert_eq!(a.group, g2);
        }
        assert_eq!(b.stats(), (6, 6));
    }

    /// Regression: a group abandoned before completion (its query
    /// failed) used to leave its `pending` dedup slots behind forever,
    /// so every later identical spec piggybacked on work nobody was
    /// driving. `release_in_flight` must free the slots so a retry
    /// re-posts live.
    #[test]
    fn release_in_flight_frees_abandoned_dedup_slots() {
        let (m, items) = market(6);
        let mut b = CachingBackend::new(m);
        let g1 = b.post_group(filter_specs(&items));
        assert_eq!(b.pending_len(), 6, "live specs hold in-flight slots");

        // The query that owned g1 fails before its rounds complete.
        b.release_in_flight(g1);
        assert_eq!(b.pending_len(), 0, "failed query's slots released");

        // A retry with identical specs must post live (a Shared entry
        // would wait on g1 forever), and completing it works normally.
        let posted_before = b.hits_posted();
        let g2 = b.post_group(filter_specs(&items));
        assert!(
            b.hits_posted() > posted_before,
            "retry must re-post live, not piggyback on the dead group"
        );
        assert_eq!(b.run_to_completion(), RunOutcome::Completed);
        assert_eq!(b.assignments(g2).len(), 6 * 5);
        assert_eq!(b.pending_len(), 0, "completed group folded its slots");

        // A recorded group is untouched by release: its keys are in
        // the cache, not pending.
        b.release_in_flight(g2);
        let g3 = b.post_group(filter_specs(&items));
        assert_eq!(b.assignments(g3).len(), 6 * 5, "cache still serves");
    }

    #[test]
    fn caching_mixed_group_translates_ids_correctly() {
        let (m, items) = market(8);
        let mut b = CachingBackend::new(m);
        // Prime the cache with the first half.
        let g1 = b.post_group(filter_specs(&items[..4]));
        b.run_to_completion();
        let _ = b.assignments(g1);
        // Post all 8: 4 cached + 4 live in one group.
        let g2 = b.post_group(filter_specs(&items));
        b.run_to_completion();
        let collected = b.assignments(g2);
        assert_eq!(collected.len(), 8 * 5);
        let hits = b.group_hits(g2);
        assert_eq!(hits.len(), 8);
        // Every assignment's hit id belongs to the group, and each of
        // the 8 virtual hits received exactly 5 assignments.
        let mut per_hit: HashMap<HitId, usize> = HashMap::new();
        for a in &collected {
            assert!(hits.contains(&a.hit));
            *per_hit.entry(a.hit).or_default() += 1;
        }
        assert!(per_hit.values().all(|&c| c == 5));
        // Question counts resolve through virtual ids.
        for &h in &hits {
            assert_eq!(b.hit_question_count(h), 1);
        }
    }

    #[test]
    fn caching_shares_in_flight_specs_without_reposting() {
        let (m, items) = market(4);
        let mut b = CachingBackend::new(m);
        // Two groups with identical specs posted back-to-back, with no
        // run in between: the second must piggyback on the first's
        // in-flight HITs rather than re-post.
        let g1 = b.post_group(filter_specs(&items));
        let posted = b.hits_posted();
        let g2 = b.post_group(filter_specs(&items));
        assert_eq!(b.hits_posted(), posted, "in-flight twin must not repost");
        assert_eq!(b.stats(), (4, 4));
        assert_eq!(b.shared_hits(), 4);
        // Before the crowd runs, *both* groups are incomplete — but
        // only g1 owns live (billable) work.
        assert!(b.group_outstanding(g1) > 0);
        assert!(b.group_outstanding(g2) > 0);
        assert!(b.live_outstanding(g1) > 0);
        assert_eq!(b.live_outstanding(g2), 0);

        assert_eq!(b.run_to_completion(), RunOutcome::Completed);
        assert_eq!(b.group_outstanding(g2), 0);
        let first = b.assignments(g1);
        let second = b.assignments(g2);
        assert_eq!(first.len(), 4 * 5);
        assert_eq!(second.len(), 4 * 5);
        // Same answers per spec position, rebadged to g2's ids.
        let key = |assignments: &[Assignment], hits: &[HitId]| -> Vec<Vec<(WorkerId, Answer)>> {
            let mut per: Vec<Vec<(WorkerId, Answer)>> = vec![Vec::new(); hits.len()];
            for a in assignments {
                let pos = hits.iter().position(|&h| h == a.hit).unwrap();
                per[pos].push((a.worker, a.answers[0].clone()));
            }
            for v in &mut per {
                v.sort_by_key(|(w, _)| *w);
            }
            per
        };
        assert_eq!(
            key(&first, &b.group_hits(g1)),
            key(&second, &b.group_hits(g2))
        );
        // Only the live copy was paid for.
        assert_eq!(b.assignments_completed(), 4 * 5);
        // The sharer's latencies reflect the owner's real round, not an
        // instantaneous cache replay.
        let shared_max = b.group_latencies(g2).into_iter().fold(0.0f64, f64::max);
        assert!(shared_max > 0.0, "sharer should observe the crowd's time");
    }

    #[test]
    fn caching_key_distinguishes_assignment_counts() {
        let (m, items) = market(2);
        let mut b = CachingBackend::new(m);
        let g1 = b.post_group_with_assignments(filter_specs(&items), 3);
        b.run_to_completion();
        assert_eq!(b.assignments(g1).len(), 6);
        // Same questions, different assignment request: not a cache hit.
        let g2 = b.post_group_with_assignments(filter_specs(&items), 5);
        b.run_to_completion();
        assert_eq!(b.assignments(g2).len(), 10);
    }

    #[test]
    fn metering_epochs_track_deltas() {
        let (m, items) = market(4);
        let mut b = MeteringBackend::new(m);
        b.begin_epoch();
        let g = b.post_group(filter_specs(&items));
        b.run_to_completion();
        let _ = b.assignments(g);
        let usage = b.end_epoch();
        assert_eq!(usage.hits_posted, 4);
        assert_eq!(usage.assignments, 20);
        assert!((usage.dollars - 20.0 * 0.015).abs() < 1e-9);
        assert!(usage.elapsed_secs > 0.0);

        b.begin_epoch();
        let idle = b.end_epoch();
        assert_eq!(idle, BackendUsage::default());
        assert_eq!(b.history().len(), 2);
    }

    /// Regression: an epoch that posts no HITs must report zero
    /// elapsed time even when the backend's clock advances on behalf
    /// of stale work from an earlier epoch (previously the same ticks
    /// were charged to every subsequent zero-HIT query).
    #[test]
    fn zero_hit_epoch_reports_zero_elapsed() {
        // A replay backend with an empty trace: any posted spec stays
        // outstanding forever and every `run` call advances the clock
        // to its deadline.
        let (m, items) = market(2);
        let mut rec = RecordingBackend::new(m);
        let g = rec.post_group(filter_specs(&items[..1]));
        rec.run_to_completion();
        let _ = rec.assignments(g);
        let mut replay = ReplayBackend::from_trace(rec.into_trace());

        // Epoch 1: post a spec the trace cannot answer; it times out.
        let mut b = MeteringBackend::new(&mut replay);
        b.begin_epoch();
        let _stuck = b.post_group(filter_specs(&items[1..]));
        assert_eq!(b.run(500.0), RunOutcome::TimedOut);
        let first = b.end_epoch();
        assert_eq!(first.hits_posted, 1);

        // Epoch 2: no new work, but running (as any crowd operator
        // would) advances the clock chasing epoch 1's stuck HIT.
        b.begin_epoch();
        assert_eq!(b.run(500.0), RunOutcome::TimedOut);
        let idle = b.end_epoch();
        assert_eq!(idle.hits_posted, 0);
        assert_eq!(idle.assignments, 0);
        assert_eq!(
            idle.elapsed_secs, 0.0,
            "stale clock ticks must not be charged to a zero-HIT epoch"
        );
    }

    #[test]
    fn record_then_replay_reproduces_answers() {
        let (m, items) = market(5);
        let mut rec = RecordingBackend::new(m);
        let g = rec.post_group(filter_specs(&items));
        assert_eq!(rec.run_to_completion(), RunOutcome::Completed);
        let original = rec.assignments(g);
        let trace = rec.into_trace();
        assert_eq!(trace.len(), 5);

        let mut replay = ReplayBackend::from_trace(trace);
        let rg = replay.post_group(filter_specs(&items));
        assert_eq!(replay.run_to_completion(), RunOutcome::Completed);
        let replayed = replay.assignments(rg);
        assert_eq!(replayed.len(), original.len());
        // Answers match per spec position.
        let collect = |assignments: &[Assignment]| -> HashMap<usize, Vec<(WorkerId, Answer)>> {
            let mut out: HashMap<usize, Vec<(WorkerId, Answer)>> = HashMap::new();
            for a in assignments {
                out.entry(a.hit.0)
                    .or_default()
                    .push((a.worker, a.answers[0].clone()));
            }
            for v in out.values_mut() {
                v.sort_by_key(|(w, _)| *w);
            }
            out
        };
        // Both backends number this group's hits 0..5 in spec order.
        assert_eq!(collect(&original), collect(&replayed));
        assert!((replay.spend_dollars() - 25.0 * 0.015).abs() < 1e-9);
    }

    #[test]
    fn replay_times_out_on_unknown_specs() {
        let (m, items) = market(3);
        let mut rec = RecordingBackend::new(m);
        let g = rec.post_group(filter_specs(&items[..2]));
        rec.run_to_completion();
        let _ = rec.assignments(g);
        let mut replay = ReplayBackend::from_trace(rec.into_trace());
        let rg = replay.post_group(filter_specs(&items));
        assert_eq!(replay.run_to_completion(), RunOutcome::TimedOut);
        // Outstanding counts assignments (5 per unknown hit), like the
        // live marketplace.
        assert_eq!(replay.group_outstanding(rg), 5);
        // The known specs still replay.
        assert_eq!(replay.assignments(rg).len(), 2 * 5);
    }

    #[test]
    fn replay_honors_time_budget() {
        // Record a filter group, note how long the crowd took, then
        // replay with a budget smaller than that: the replay must time
        // out with the full assignment count outstanding, and complete
        // once given enough time.
        let (m, items) = market(4);
        let mut rec = RecordingBackend::new(m);
        let g = rec.post_group(filter_specs(&items));
        rec.run_to_completion();
        let recorded_secs = rec.group_latencies(g).into_iter().fold(0.0f64, f64::max);
        assert!(recorded_secs > 1.0);
        let _ = rec.assignments(g);

        let mut replay = ReplayBackend::from_trace(rec.into_trace());
        let rg = replay.post_group(filter_specs(&items));
        assert_eq!(replay.run(recorded_secs / 10.0), RunOutcome::TimedOut);
        assert!(replay.group_outstanding(rg) > 0);
        // A later run with the remaining budget completes the group.
        assert_eq!(replay.run_to_completion(), RunOutcome::Completed);
        assert_eq!(replay.group_outstanding(rg), 0);
        assert_eq!(replay.assignments(rg).len(), 4 * 5);
    }

    #[test]
    fn mut_ref_backend_forwards() {
        let (mut m, items) = market(2);
        fn post_via<B: CrowdBackend>(b: &mut B, specs: Vec<HitSpec>) -> HitGroupId {
            b.post_group(specs)
        }
        let g = post_via(&mut (&mut m), filter_specs(&items));
        CrowdBackend::run_to_completion(&mut m);
        assert_eq!(CrowdBackend::assignments(&mut m, g).len(), 10);
    }

    #[test]
    fn lru_bound_evicts_only_at_batch_boundaries() {
        let (m, items) = market(6);
        let mut b = CachingBackend::new(m).with_max_entries(2);
        // First batch: record 6 entries. All were touched since the
        // (implicit) batch start, so none is evictable yet — the cache
        // overshoots its bound rather than dropping a key a live group
        // still references.
        let g1 = b.post_group(filter_specs(&items));
        b.run_to_completion();
        assert_eq!(b.assignments(g1).len(), 6 * 5);
        assert_eq!(b.len(), 6);
        assert_eq!(b.evictions(), 0, "same-batch entries are pinned");

        // The batch boundary unpins them: trim to the bound, LRU-first.
        b.begin_batch();
        assert_eq!(b.len(), 2);
        assert_eq!(b.evictions(), 4);

        // Re-posting all 6 specs re-pays the 4 evicted ones (they post
        // live again) and still completes with full answers.
        let posted = b.hits_posted();
        let g2 = b.post_group(filter_specs(&items));
        b.run_to_completion();
        assert_eq!(b.assignments(g2).len(), 6 * 5);
        assert_eq!(
            b.hits_posted(),
            posted + 4,
            "evicted specs re-post; survivors replay from cache"
        );
    }

    #[test]
    fn lru_touch_on_hit_refreshes_recency() {
        let (m, items) = market(4);
        let mut b = CachingBackend::new(m).with_max_entries(3);
        // Record items 0..3; exactly at the bound.
        let g1 = b.post_group(filter_specs(&items[..3]));
        b.run_to_completion();
        let _ = b.assignments(g1);
        b.begin_batch();
        assert_eq!(b.len(), 3, "at the bound, nothing to evict yet");

        // Touch item 0 (a cache hit re-pins it for this batch), then
        // record the brand-new item 3: the cache overshoots to 4 and
        // must evict the least recently used *unpinned* entry —
        // item 1, not the just-touched item 0.
        let _ = b.post_group(filter_specs(&items[..1]));
        let g3 = b.post_group(filter_specs(&items[3..]));
        b.run_to_completion();
        let _ = b.assignments(g3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.evictions(), 1);
        let posted = b.hits_posted();
        let _ = b.post_group(filter_specs(&items[..1]));
        assert_eq!(b.hits_posted(), posted, "the touched entry survived");
        let _ = b.post_group(filter_specs(&items[1..2]));
        assert!(
            b.hits_posted() > posted,
            "the untouched entry was the eviction victim"
        );
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let (m, items) = market(6);
        let mut b = CachingBackend::new(m);
        let g = b.post_group(filter_specs(&items));
        b.run_to_completion();
        let _ = b.assignments(g);
        b.begin_batch();
        b.begin_batch();
        assert_eq!(b.len(), 6);
        assert_eq!(b.evictions(), 0);
        // Dropping the bound after the fact also stops eviction.
        b.set_max_entries(Some(2));
        b.begin_batch();
        assert_eq!(b.len(), 2);
        b.set_max_entries(None);
        let g2 = b.post_group(filter_specs(&items));
        b.run_to_completion();
        let _ = b.assignments(g2);
        b.begin_batch();
        assert_eq!(b.len(), 6, "unbounded again: everything stays");
    }
}
