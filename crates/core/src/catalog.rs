//! The catalog: registered tables and task templates.

use std::collections::HashMap;

use crate::error::{QurkError, Result};
use crate::lang::parser::parse_tasks;
use crate::relation::Relation;
use crate::task::TaskDef;

/// Named tables + named tasks, the context a query runs against.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Relation>,
    tasks: HashMap<String, TaskDef>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register (or replace) a table.
    pub fn register_table(&mut self, name: &str, relation: Relation) {
        self.tables.insert(name.to_owned(), relation);
    }

    pub fn table(&self, name: &str) -> Result<&Relation> {
        self.tables
            .get(name)
            .ok_or_else(|| QurkError::UnknownTable(name.to_owned()))
    }

    pub fn table_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Register a validated task.
    pub fn register_task(&mut self, task: TaskDef) {
        self.tasks.insert(task.name.clone(), task);
    }

    /// Parse a TASK DSL document and register every definition.
    pub fn define_tasks(&mut self, src: &str) -> Result<usize> {
        let asts = parse_tasks(src)?;
        let n = asts.len();
        for ast in &asts {
            self.register_task(TaskDef::from_ast(ast)?);
        }
        Ok(n)
    }

    pub fn task(&self, name: &str) -> Result<&TaskDef> {
        self.tasks
            .get(name)
            .ok_or_else(|| QurkError::UnknownTask(name.to_owned()))
    }

    pub fn task_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.tasks.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Schema, ValueType};

    #[test]
    fn tables_roundtrip() {
        let mut c = Catalog::new();
        let r = Relation::new(Schema::new(&[("x", ValueType::Int)]));
        c.register_table("t", r.clone());
        assert_eq!(c.table("t").unwrap(), &r);
        assert!(matches!(
            c.table("missing"),
            Err(QurkError::UnknownTable(_))
        ));
        assert_eq!(c.table_names(), vec!["t"]);
    }

    #[test]
    fn tasks_from_dsl() {
        let mut c = Catalog::new();
        let n = c
            .define_tasks(
                r#"TASK isFemale(field) TYPE Filter:
                    Prompt: "%s?", tuple[field]
                   TASK samePerson(a, b) TYPE EquiJoin:
                    Combiner: QualityAdjust
                "#,
            )
            .unwrap();
        assert_eq!(n, 2);
        assert!(c.task("isFemale").is_ok());
        assert!(c.task("samePerson").is_ok());
        assert!(matches!(c.task("nope"), Err(QurkError::UnknownTask(_))));
        assert_eq!(c.task_names(), vec!["isFemale", "samePerson"]);
    }

    #[test]
    fn invalid_task_dsl_is_rejected() {
        let mut c = Catalog::new();
        assert!(c
            .define_tasks("TASK broken(x) TYPE Filter:\n YesText: \"Y\"")
            .is_err());
    }
}
