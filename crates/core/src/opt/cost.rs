//! The HIT cost model.
//!
//! Every formula here is the arithmetic the paper does by hand:
//!
//! | Operator | HITs | Paper |
//! |---|---|---|
//! | Crowd filter, batch `b` | `⌈n/b⌉` | §2.6 *merging* |
//! | Combined conjunct filters | `⌈n/b⌉` (k questions share HITs) | §2.6 *combining* |
//! | Simple join | `n·m` | §3.1, Figure 2a |
//! | NaiveBatch(b) join | `⌈pairs/b⌉` | §3.1 "nm/b" |
//! | SmartBatch(r×s) join | `≈ ⌈n/r⌉·⌈m'/s⌉` | §3.1 "nm/b²" |
//! | Feature extraction (combined) | `⌈n/b⌉` per table | §3.3.4 |
//! | Feature extraction (single) | `k·⌈n/b⌉` per table | §3.2 |
//! | Compare sort | exact covering-design count, `≈ N(N−1)/(S(S−1))` | §4.1.1 |
//! | Rate sort | `⌈n/b⌉` | §4.1.2 "O(N)" |
//! | Hybrid sort | rate + one HIT per iteration | §4.1.3 |
//! | MAX/MIN tournament | `Σ ⌈pool/b⌉` until one remains | §2.3 |
//!
//! Dollars follow §3.3.2's fixed price (assignments × $0.015 by
//! default); latency extrapolates the observed seconds-per-HIT from
//! the session's metering epochs.

use qurk_crowd::pricing::Price;
use qurk_crowd::question::{hit_work_units, HitKind, Question};
use qurk_crowd::ItemId;

use crate::ops::filter::FilterOp;
use crate::ops::join::feature_filter::FeatureFilterConfig;
use crate::ops::join::JoinStrategy;
use crate::ops::sort::CompareSort;
use crate::opt::stats::StatisticsStore;
use crate::session::SortMode;

/// Assignments requested per HIT when neither the operator nor the
/// backend overrides it (the paper's 5).
pub const DEFAULT_ASSIGNMENTS: u32 = 5;

/// Latency guess per HIT before any epoch has been observed (roughly
/// one worker round-trip at the simulator's default arrival rates).
pub const FALLBACK_SECS_PER_HIT: f64 = 60.0;

/// Worker-effort units per question, taken from the simulator's own
/// effort model so the cost model can never drift out of sync with it.
fn filter_unit() -> f64 {
    Question::Filter {
        item: ItemId(0),
        predicate: String::new(),
    }
    .work_units()
}

fn feature_unit() -> f64 {
    Question::Feature {
        item: ItemId(0),
        feature: String::new(),
        num_options: 2,
    }
    .work_units()
}

fn join_pair_unit() -> f64 {
    Question::JoinPair {
        left: ItemId(0),
        right: ItemId(0),
    }
    .work_units()
}

fn rate_unit() -> f64 {
    Question::Rate {
        item: ItemId(0),
        dimension: String::new(),
        scale: 7,
        context: Vec::new(),
    }
    .work_units()
}

fn compare_unit(group_size: usize) -> f64 {
    Question::CompareGroup {
        items: vec![ItemId(0); group_size],
        dimension: String::new(),
    }
    .work_units()
}

fn pick_unit(batch: usize) -> f64 {
    Question::PickBest {
        items: vec![ItemId(0); batch],
        dimension: String::new(),
        want_max: true,
    }
    .work_units()
}

fn smart_hit_unit(rows: usize, cols: usize) -> f64 {
    hit_work_units(HitKind::JoinSmart { rows, cols }, &[])
}

/// Above this input size the compare-sort estimate switches from the
/// exact covering-design count to the `N(N−1)/(S(S−1))` bound (the
/// exact generator is cubic in N).
pub const EXACT_COMPARE_PLAN_MAX_N: usize = 256;

/// Estimated resource usage of a (sub)plan. Additive across operators.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostEstimate {
    pub hits: f64,
    /// Sequential operator rounds (HIT-group post → completion
    /// cycles): the unit of the latency model's fixed overhead.
    pub rounds: f64,
    pub assignments: f64,
    pub dollars: f64,
    pub latency_secs: f64,
}

impl CostEstimate {
    pub const ZERO: CostEstimate = CostEstimate {
        hits: 0.0,
        rounds: 0.0,
        assignments: 0.0,
        dollars: 0.0,
        latency_secs: 0.0,
    };
}

impl std::ops::Add for CostEstimate {
    type Output = CostEstimate;
    fn add(self, rhs: CostEstimate) -> CostEstimate {
        CostEstimate {
            hits: self.hits + rhs.hits,
            rounds: self.rounds + rhs.rounds,
            assignments: self.assignments + rhs.assignments,
            dollars: self.dollars + rhs.dollars,
            latency_secs: self.latency_secs + rhs.latency_secs,
        }
    }
}

impl std::ops::AddAssign for CostEstimate {
    fn add_assign(&mut self, rhs: CostEstimate) {
        *self = *self + rhs;
    }
}

/// Prices a HIT count into a full [`CostEstimate`] and implements the
/// per-operator formulas above.
pub struct CostModel<'a> {
    stats: &'a StatisticsStore,
    price: Price,
}

impl<'a> CostModel<'a> {
    pub fn new(stats: &'a StatisticsStore) -> Self {
        CostModel {
            stats,
            price: Price::PAPER,
        }
    }

    pub fn with_price(mut self, price: Price) -> Self {
        self.price = price;
        self
    }

    /// Price `hits` HITs carrying `units` of per-assignment worker
    /// effort, spread over `rounds` sequential post→collect cycles,
    /// at `assignments` assignments each. Latency follows the learned
    /// round model `rounds·α + total_work·β` where total_work is the
    /// effort replicated across assignments (falling back to the
    /// per-epoch seconds-per-HIT average, then to a constant).
    pub fn charge(
        &self,
        hits: f64,
        rounds: f64,
        units: f64,
        assignments: Option<u32>,
    ) -> CostEstimate {
        if hits <= 0.0 {
            return CostEstimate::ZERO;
        }
        let per_hit = assignments.unwrap_or(DEFAULT_ASSIGNMENTS) as f64;
        let assignments = hits * per_hit;
        let latency_secs = match self.stats.latency_params() {
            Some((alpha, beta)) => rounds * alpha + units * per_hit * beta,
            None => hits * self.stats.secs_per_hit().unwrap_or(FALLBACK_SECS_PER_HIT),
        };
        CostEstimate {
            hits,
            rounds,
            assignments,
            dollars: assignments * self.price.per_assignment(),
            latency_secs,
        }
    }

    // ------------------------------------------------------- filters

    /// One crowd filter over `rows` tuples (§2.6 merging): one round.
    pub fn filter(&self, rows: f64, op: &FilterOp) -> CostEstimate {
        self.charge(
            ceil_div(rows, op.batch_size),
            1.0,
            rows * filter_unit(),
            op.assignments,
        )
    }

    /// `k` conjunct filters combined into shared HITs (§2.6
    /// combining): HIT count is independent of `k`.
    pub fn combined_filter(&self, rows: f64, k: usize, op: &FilterOp) -> CostEstimate {
        self.charge(
            ceil_div(rows, op.batch_size),
            1.0,
            rows * k as f64 * filter_unit(),
            op.assignments,
        )
    }

    /// Serial conjunct filters: each stage only sees the survivors of
    /// the previous one. `selectivities[i]` shrinks the input of stage
    /// `i + 1` (unknown = 1.0, i.e. no shrinkage assumed).
    pub fn serial_filters(&self, rows: f64, selectivities: &[f64], op: &FilterOp) -> CostEstimate {
        let mut remaining = rows;
        let mut total = CostEstimate::ZERO;
        for &sel in selectivities {
            total += self.filter(remaining, op);
            remaining *= sel.clamp(0.0, 1.0);
        }
        total
    }

    // --------------------------------------------------------- joins

    /// A crowd join scoring `pairs` candidate pairs drawn from an
    /// `n × m` cross product (§3.1). For SmartBatch the grid packs
    /// left rows even when most of their pairs were pruned, so the
    /// estimate accounts for the expected distinct right items per
    /// left chunk.
    pub fn join(
        &self,
        n: f64,
        m: f64,
        pairs: f64,
        strategy: JoinStrategy,
        assignments: Option<u32>,
    ) -> CostEstimate {
        if pairs <= 0.0 {
            return CostEstimate::ZERO;
        }
        let (hits, units) = match strategy {
            JoinStrategy::Simple => (pairs, pairs * join_pair_unit()),
            JoinStrategy::NaiveBatch(b) => (ceil_div(pairs, b), pairs * join_pair_unit()),
            JoinStrategy::SmartBatch { rows, cols } => {
                // Per-pair survival probability under the feature
                // filter; 1.0 when nothing was pruned.
                let p = if n > 0.0 && m > 0.0 {
                    (pairs / (n * m)).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                // A chunk of `rows` left items references a right item
                // iff any of its pairs with it survived.
                let distinct_rights = m * (1.0 - (1.0 - p).powi(rows as i32));
                let hits = ceil_div(n, rows) * ceil_div(distinct_rights.max(1.0), cols);
                // Grid effort is per interface, not per pair.
                (hits, hits * smart_hit_unit(rows, cols))
            }
        };
        self.charge(hits, 1.0, units, assignments)
    }

    // ------------------------------------------------------ features

    /// Extract `k` features of `rows` items on one table (§3.2/§3.3.4).
    pub fn feature_extraction(
        &self,
        rows: f64,
        k: usize,
        cfg: &FeatureFilterConfig,
    ) -> CostEstimate {
        if rows <= 0.0 || k == 0 {
            return CostEstimate::ZERO;
        }
        let per_table = if cfg.combined_interface {
            ceil_div(rows, cfg.batch_size)
        } else {
            k as f64 * ceil_div(rows, cfg.batch_size)
        };
        // One group per extraction call regardless of feature count.
        self.charge(
            per_table,
            1.0,
            rows * k as f64 * feature_unit(),
            cfg.assignments,
        )
    }

    /// The full §3.2 pipeline over an `n × m` join: sampled extraction
    /// of all `k` candidate features on both tables, then full
    /// extraction of the `k_kept` survivors.
    pub fn feature_filter(
        &self,
        n: f64,
        m: f64,
        k: usize,
        k_kept: usize,
        cfg: &FeatureFilterConfig,
    ) -> CostEstimate {
        if k == 0 {
            return CostEstimate::ZERO;
        }
        let sample = |rows: f64| (rows * cfg.sample_fraction).ceil().clamp(1.0, rows);
        let mut total =
            self.feature_extraction(sample(n), k, cfg) + self.feature_extraction(sample(m), k, cfg);
        total += self.feature_extraction(n, k_kept, cfg) + self.feature_extraction(m, k_kept, cfg);
        total
    }

    // --------------------------------------------------------- sorts

    /// Number of comparison groups a full sort of `n` items needs
    /// (§4.1.1): exact covering-design size for small inputs, the
    /// `N(N−1)/(S(S−1))` bound (with the greedy generator's observed
    /// ~20% overshoot) beyond.
    pub fn compare_sort_groups(&self, n: usize, op: &CompareSort) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let s = op.group_size.max(2).min(n);
        if n <= EXACT_COMPARE_PLAN_MAX_N {
            CompareSort::plan_groups(n, s, op.seed).len() as f64
        } else {
            let bound = (n * (n - 1)) as f64 / (s * (s - 1)) as f64;
            (bound * 1.2).ceil()
        }
    }

    /// HIT count of a full comparison sort (groups merged
    /// `groups_per_hit` at a time).
    pub fn compare_sort_hits(&self, n: usize, op: &CompareSort) -> f64 {
        ceil_div(self.compare_sort_groups(n, op), op.groups_per_hit.max(1))
    }

    /// A crowd sort of `n` items under the given mode.
    pub fn sort(&self, n: usize, mode: &SortMode) -> CostEstimate {
        match mode {
            SortMode::Compare(op) => {
                let groups = self.compare_sort_groups(n, op);
                self.charge(
                    ceil_div(groups, op.groups_per_hit.max(1)),
                    1.0,
                    groups * compare_unit(op.group_size.max(2).min(n.max(2))),
                    op.assignments,
                )
            }
            SortMode::Rate(op) => self.charge(
                ceil_div(n as f64, op.batch_size),
                1.0,
                n as f64 * rate_unit(),
                op.assignments,
            ),
            SortMode::Hybrid(op, iterations) => {
                let rate = self.charge(
                    ceil_div(n as f64, op.rate.batch_size),
                    1.0,
                    n as f64 * rate_unit(),
                    op.rate.assignments,
                );
                // Each hybrid iteration is its own one-HIT round.
                let extra = if n <= 1 { 0.0 } else { *iterations as f64 };
                rate + self.charge(
                    extra,
                    extra,
                    extra * compare_unit(op.window.max(2)),
                    op.assignments,
                )
            }
        }
    }

    /// MAX/MIN tournament extraction over `n` items (§2.3): winners
    /// advance until one remains.
    pub fn extract_best(&self, n: usize, batch: usize, assignments: Option<u32>) -> CostEstimate {
        let b = batch.max(2);
        let mut pool = n;
        let mut hits = 0.0;
        let mut levels = 0.0;
        while pool > 1 {
            let this_level = pool.div_ceil(b);
            hits += this_level as f64;
            levels += 1.0;
            pool = this_level;
        }
        self.charge(hits, levels, hits * pick_unit(b), assignments)
    }

    /// A generative SELECT-item extraction pass over `rows` tuples
    /// (§2.2's Fields mechanism; free-text answers cost about twice a
    /// Yes/No question).
    pub fn generative_select(&self, rows: f64) -> CostEstimate {
        let gen_unit = Question::Generative {
            item: ItemId(0),
            field: String::new(),
        }
        .work_units();
        self.charge(ceil_div(rows, 5), 1.0, rows * gen_unit, None)
    }
}

fn ceil_div(x: f64, b: usize) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        (x / b.max(1) as f64).ceil()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::sort::{HybridSort, RateSort};

    fn model(stats: &StatisticsStore) -> CostModel<'_> {
        CostModel::new(stats)
    }

    #[test]
    fn filter_merging_formula() {
        let stats = StatisticsStore::new();
        let m = model(&stats);
        let op = FilterOp::default(); // batch 5
        assert_eq!(m.filter(211.0, &op).hits, 43.0); // Table 5's Filter row
        assert_eq!(m.filter(0.0, &op).hits, 0.0);
    }

    #[test]
    fn serial_filters_shrink_by_selectivity() {
        let stats = StatisticsStore::new();
        let m = model(&stats);
        let op = FilterOp::default();
        // 20 rows, first filter passes half: 4 + 2 HITs.
        let est = m.serial_filters(20.0, &[0.5, 1.0], &op);
        assert_eq!(est.hits, 6.0);
        // Combining the same two filters costs 4.
        assert_eq!(m.combined_filter(20.0, 2, &op).hits, 4.0);
    }

    #[test]
    fn join_formulas_match_paper_arithmetic() {
        let stats = StatisticsStore::new();
        let m = model(&stats);
        // §3.3.2: a 30×30 join.
        let simple = m.join(30.0, 30.0, 900.0, JoinStrategy::Simple, None);
        assert_eq!(simple.hits, 900.0);
        // 10 assignments × $0.015 = $135 at 10 assignments.
        let simple10 = m.join(30.0, 30.0, 900.0, JoinStrategy::Simple, Some(10));
        assert!((simple10.dollars - 135.0).abs() < 1e-9);
        let naive = m.join(30.0, 30.0, 900.0, JoinStrategy::NaiveBatch(10), None);
        assert_eq!(naive.hits, 90.0);
        // Smart 5×5 with no pruning is the full grid: 6 × 6 = 36.
        let smart = m.join(
            30.0,
            30.0,
            900.0,
            JoinStrategy::SmartBatch { rows: 5, cols: 5 },
            None,
        );
        assert_eq!(smart.hits, 36.0);
    }

    #[test]
    fn smart_join_accounts_for_pruning() {
        let stats = StatisticsStore::new();
        let m = model(&stats);
        // Heavy pruning (1% of pairs survive): far fewer grids than
        // the full 6×6-per-chunk packing.
        let pruned = m.join(
            30.0,
            30.0,
            9.0,
            JoinStrategy::SmartBatch { rows: 5, cols: 5 },
            None,
        );
        let full = m.join(
            30.0,
            30.0,
            900.0,
            JoinStrategy::SmartBatch { rows: 5, cols: 5 },
            None,
        );
        assert!(
            pruned.hits < full.hits / 2.0,
            "{} vs {}",
            pruned.hits,
            full.hits
        );
    }

    #[test]
    fn sort_formulas() {
        let stats = StatisticsStore::new();
        let m = model(&stats);
        // Rate is linear.
        let rate = m.sort(30, &SortMode::Rate(RateSort::default()));
        assert_eq!(rate.hits, 6.0);
        // Compare matches the exact covering design of the operator.
        let op = CompareSort::default();
        let exact = CompareSort::plan_groups(40, 5, op.seed).len() as f64;
        let cmp = m.sort(40, &SortMode::Compare(op));
        assert_eq!(cmp.hits, exact);
        // Hybrid = rate pass + one HIT per iteration.
        let hybrid = m.sort(30, &SortMode::Hybrid(HybridSort::default(), 12));
        assert_eq!(hybrid.hits, 6.0 + 12.0);
    }

    #[test]
    fn tournament_extraction_formula() {
        let stats = StatisticsStore::new();
        let m = model(&stats);
        // 20 items in batches of 5: 4 + 1 HITs.
        assert_eq!(m.extract_best(20, 5, None).hits, 5.0);
        assert_eq!(m.extract_best(1, 5, None).hits, 0.0);
    }

    #[test]
    fn feature_filter_counts_sample_and_full_passes() {
        let stats = StatisticsStore::new();
        let m = model(&stats);
        let cfg = FeatureFilterConfig::default(); // batch 5, combined, 25% sample
                                                  // 20×20 join, 2 features sampled, 1 kept: samples of 5 items
                                                  // each side (1 HIT per table) plus full extraction (4 HITs per
                                                  // table).
        let est = m.feature_filter(20.0, 20.0, 2, 1, &cfg);
        assert_eq!(est.hits, 1.0 + 1.0 + 4.0 + 4.0);
        assert_eq!(m.feature_filter(20.0, 20.0, 0, 0, &cfg).hits, 0.0);
    }

    #[test]
    fn latency_uses_learned_secs_per_hit() {
        let mut stats = StatisticsStore::new();
        stats.observe_epoch(10, 500.0);
        let m = CostModel::new(&stats);
        let est = m.charge(4.0, 1.0, 20.0, None);
        assert!((est.latency_secs - 200.0).abs() < 1e-9);
        assert!((est.dollars - 4.0 * 5.0 * 0.015).abs() < 1e-9);
    }

    #[test]
    fn latency_prefers_the_round_regression() {
        let mut stats = StatisticsStore::new();
        // round_secs = 300 + 10·units.
        stats.observe_round(2.0, 320.0);
        stats.observe_round(10.0, 400.0);
        let m = CostModel::new(&stats);
        // 4 HITs carrying 1.2 units each at 5 assignments: total work
        // 4 × 1.2 × 5 = 24 units over 2 rounds.
        let est = m.charge(4.0, 2.0, 4.8, None);
        // 2 rounds × 300 + 24 units × 10.
        assert!((est.latency_secs - 840.0).abs() < 1e-6, "{est:?}");
        assert_eq!(est.rounds, 2.0);
    }
}
