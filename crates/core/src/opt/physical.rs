//! Physical plan selection.
//!
//! [`crate::plan`] produces the paper's *logical* plan (§2.5's fixed
//! rules). This module lowers it to a [`PhysicalPlan`] in which every
//! crowd operator carries its concrete configuration — filter batch
//! and ordering, join batching strategy, feature-filter subset, sort
//! implementation — chosen by one of two modes:
//!
//! * [`OptimizeMode::AsWritten`] — the paper's behaviour: operators
//!   run with the configured defaults in query order ("Qurk currently
//!   lacks selectivity estimation, so it orders filters and joins as
//!   they appear in the query", §2.5).
//! * [`OptimizeMode::CostBased`] (the default) — consults the
//!   session's [`StatisticsStore`] and the [`CostModel`] to pick the
//!   cheapest alternative. **Every deviation from the as-written plan
//!   is gated on learned evidence**: with an empty store the compiled
//!   plan is identical to `AsWritten`, so the new default degrades
//!   gracefully and repeat queries stay cache-friendly.
//!
//! Decisions made (each recorded in [`CompiledPlan::decisions`]):
//!
//! 1. **Filter ordering** — conjuncts ranked by `(1 − σ)/cost`
//!    descending (most-selective-per-dollar first), the classic
//!    predicate-ordering rule §2.5 punts on. Unknown selectivities
//!    rank last in written order.
//! 2. **Filter combining** — §2.6 combining chosen when the learned
//!    selectivities make `⌈n/b⌉` strictly cheaper than the serial
//!    `Σ ⌈nᵢ/b⌉`.
//! 3. **Join batching** — Simple / NaiveBatch / SmartBatch enumerated
//!    under the §3.1 formulas at the estimated candidate-pair count.
//! 4. **Feature-filter subset** — features whose *remembered* κ or σ
//!    already fails the §3.2 thresholds (the §5.4 ambiguity rule) are
//!    pruned before paying their sampling HITs again.
//! 5. **Join input ordering** — left-deep chains reordered cheapest-
//!    first using estimated cardinalities (skipped for `SELECT *`,
//!    whose column order is the join order).
//! 6. **Sort strategy** — Compare / Rate / Hybrid (and the hybrid's
//!    comparison budget `S`) chosen from the learned dimension
//!    ambiguity, mirroring §4.3's "rating works when workers agree".
//! 7. **MAX/MIN lowering** — `ORDER BY rank LIMIT 1` lowers to the
//!    §2.3 tournament in both modes (this was previously a hardwired
//!    executor rule).

use crate::catalog::Catalog;
use crate::error::Result;
use crate::lang::ast::{Expr, JoinClause, OrderExpr, Predicate, SelectItem, UdfCall};
use crate::ops::filter::FilterOp;
use crate::ops::join::feature_filter::FeatureFilterConfig;
use crate::ops::join::{JoinOp, JoinStrategy};
use crate::ops::sort::{HybridSort, RateSort};
use crate::opt::cost::{CostEstimate, CostModel};
use crate::opt::stats::StatisticsStore;
use crate::plan::LogicalPlan;
use crate::session::{ExecConfig, SortMode};
use crate::task::TaskType;

/// How [`compile`] chooses physical operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizeMode {
    /// Cost-based selection from learned statistics; identical to
    /// `AsWritten` while the statistics store is empty.
    #[default]
    CostBased,
    /// The paper's fixed rules: operators exactly as configured, in
    /// query order.
    AsWritten,
}

/// Which parts of the configuration the user fixed explicitly (via
/// `QueryBuilder`/`SessionBuilder` setters). The optimizer never
/// overrides a pinned choice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PinSet {
    pub filter: bool,
    pub join: bool,
    pub feature_filter: bool,
    pub sort: bool,
    pub combine: bool,
}

/// Inputs smaller than this keep their as-written join strategy: at
/// tiny pair counts the batching alternatives are within noise of each
/// other and accuracy (§3.3's batching penalty) dominates.
pub const MIN_JOIN_PAIRS_FOR_REBATCH: f64 = 150.0;

/// Lists shorter than this keep their as-written sort: Compare's
/// quadratic cost is modest below ~16 items and its accuracy is the
/// §4.1.1 gold standard.
pub const MIN_SORT_N_FOR_SWITCH: usize = 16;

/// Learned dimension ambiguity below which a pure Rate sort suffices
/// (§4.2.2: rating tracks comparison closely on crisp metrics).
pub const RATE_AMBIGUITY_MAX: f64 = 0.20;

/// Ambiguity band in which the Hybrid sort spends a comparison budget
/// to repair the rating order (§4.1.3).
pub const HYBRID_AMBIGUITY_MAX: f64 = 0.45;

/// A logical plan lowered to concrete crowd operators, annotated with
/// the cost model's estimates.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    pub node: PhysNode,
    /// Estimated output cardinality.
    pub rows_out: f64,
    /// Estimated crowd cost of this node alone (children excluded).
    pub cost: CostEstimate,
}

/// One physical operator.
#[derive(Debug, Clone)]
pub enum PhysNode {
    Scan {
        table: String,
        alias: String,
    },
    MachineFilter {
        input: Box<PhysicalPlan>,
        predicates: Vec<Predicate>,
    },
    /// Conjunct crowd filters in execution order; `combined` selects
    /// §2.6 combining (all conjuncts share HITs) over serial rounds.
    CrowdFilter {
        input: Box<PhysicalPlan>,
        conjuncts: Vec<UdfCall>,
        combined: bool,
        op: FilterOp,
    },
    CrowdFilterOr {
        input: Box<PhysicalPlan>,
        groups: Vec<Vec<Predicate>>,
        op: FilterOp,
    },
    Join {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        /// Join clause after feature-subset pruning.
        clause: JoinClause,
        op: JoinOp,
        feature_filter: FeatureFilterConfig,
        /// POSSIBLY features dropped from stats before sampling.
        pruned_features: Vec<String>,
    },
    OrderBy {
        input: Box<PhysicalPlan>,
        keys: Vec<OrderExpr>,
        mode: SortMode,
    },
    /// `ORDER BY rank(...) [DESC] LIMIT 1` lowered to the §2.3
    /// MAX/MIN tournament.
    ExtractExtreme {
        input: Box<PhysicalPlan>,
        call: UdfCall,
        desc: bool,
    },
    Limit {
        input: Box<PhysicalPlan>,
        n: usize,
    },
    Project {
        input: Box<PhysicalPlan>,
        items: Vec<SelectItem>,
    },
}

impl PhysicalPlan {
    /// Direct children, for tree walks.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match &self.node {
            PhysNode::Scan { .. } => Vec::new(),
            PhysNode::MachineFilter { input, .. }
            | PhysNode::CrowdFilter { input, .. }
            | PhysNode::CrowdFilterOr { input, .. }
            | PhysNode::OrderBy { input, .. }
            | PhysNode::ExtractExtreme { input, .. }
            | PhysNode::Limit { input, .. }
            | PhysNode::Project { input, .. } => vec![input],
            PhysNode::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Estimated cost of this subtree (node + all children).
    pub fn total_cost(&self) -> CostEstimate {
        self.children()
            .into_iter()
            .fold(self.cost, |acc, c| acc + c.total_cost())
    }
}

/// The output of [`compile`]: the chosen plan plus the optimizer's
/// paper trail.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    pub root: PhysicalPlan,
    pub mode: OptimizeMode,
    /// Human-readable record of every cost-based deviation (empty for
    /// as-written plans).
    pub decisions: Vec<String>,
    /// Total estimated cost of the chosen plan.
    pub estimate: CostEstimate,
}

/// Lower a logical plan to physical operators under `config.optimize`.
pub fn compile(
    logical: &LogicalPlan,
    catalog: &Catalog,
    config: &ExecConfig,
    stats: &StatisticsStore,
) -> Result<CompiledPlan> {
    let model = CostModel::new(stats);
    let mut cx = Cx {
        catalog,
        config,
        stats,
        model,
        mode: config.optimize,
        star: plan_selects_star(logical),
        decisions: Vec::new(),
    };
    let root = cx.node(logical)?;
    let estimate = root.total_cost();
    Ok(CompiledPlan {
        root,
        mode: config.optimize,
        decisions: cx.decisions,
        estimate,
    })
}

fn plan_selects_star(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Project { items, .. } => items.iter().any(|i| matches!(i, SelectItem::Star)),
        _ => false,
    }
}

struct Cx<'a> {
    catalog: &'a Catalog,
    config: &'a ExecConfig,
    stats: &'a StatisticsStore,
    model: CostModel<'a>,
    mode: OptimizeMode,
    star: bool,
    decisions: Vec<String>,
}

impl Cx<'_> {
    fn cost_based(&self) -> bool {
        self.mode == OptimizeMode::CostBased
    }

    fn node(&mut self, plan: &LogicalPlan) -> Result<PhysicalPlan> {
        match plan {
            LogicalPlan::Scan { table, alias } => {
                let rows = self.catalog.table(table)?.len() as f64;
                Ok(PhysicalPlan {
                    node: PhysNode::Scan {
                        table: table.clone(),
                        alias: alias.clone(),
                    },
                    rows_out: rows,
                    cost: CostEstimate::ZERO,
                })
            }
            LogicalPlan::MachineFilter { input, predicates } => {
                let input = self.node(input)?;
                let rows = input.rows_out;
                Ok(PhysicalPlan {
                    node: PhysNode::MachineFilter {
                        input: Box::new(input),
                        predicates: predicates.clone(),
                    },
                    // Machine selectivity is unobserved; assume no
                    // shrinkage (a conservative upper bound).
                    rows_out: rows,
                    cost: CostEstimate::ZERO,
                })
            }
            LogicalPlan::CrowdFilter { input, conjuncts } => {
                let input = self.node(input)?;
                self.crowd_filter(input, conjuncts)
            }
            LogicalPlan::CrowdFilterOr { input, groups } => {
                let input = self.node(input)?;
                let rows = input.rows_out;
                let op = self.config.filter.clone();
                let mut cost = CostEstimate::ZERO;
                for group in groups {
                    for p in group {
                        if matches!(p, Predicate::Udf(_)) {
                            cost += self.model.filter(rows, &op);
                        }
                    }
                }
                Ok(PhysicalPlan {
                    node: PhysNode::CrowdFilterOr {
                        input: Box::new(input),
                        groups: groups.clone(),
                        op,
                    },
                    rows_out: rows,
                    cost,
                })
            }
            LogicalPlan::Join { .. } => self.join_chain(plan),
            LogicalPlan::OrderBy { input, keys } => {
                let input = self.node(input)?;
                self.order_by(input, keys)
            }
            LogicalPlan::Limit { input, n } => {
                // §2.3 MAX/MIN lowering (both modes — this rule moved
                // here from the executor).
                if *n == 1 {
                    if let LogicalPlan::OrderBy {
                        input: sort_input,
                        keys,
                    } = input.as_ref()
                    {
                        if let [OrderExpr {
                            expr: Expr::Udf(call),
                            desc,
                        }] = keys.as_slice()
                        {
                            let inner = self.node(sort_input)?;
                            let cost =
                                self.model
                                    .extract_best(inner.rows_out.ceil() as usize, 5, None);
                            return Ok(PhysicalPlan {
                                node: PhysNode::ExtractExtreme {
                                    input: Box::new(inner),
                                    call: call.clone(),
                                    desc: *desc,
                                },
                                rows_out: 1.0,
                                cost,
                            });
                        }
                    }
                }
                let input = self.node(input)?;
                let rows = input.rows_out.min(*n as f64);
                Ok(PhysicalPlan {
                    node: PhysNode::Limit {
                        input: Box::new(input),
                        n: *n,
                    },
                    rows_out: rows,
                    cost: CostEstimate::ZERO,
                })
            }
            LogicalPlan::Project { input, items } => {
                let input = self.node(input)?;
                let rows = input.rows_out;
                // Generative SELECT items cost one extraction pass per
                // distinct call.
                let mut cost = CostEstimate::ZERO;
                let mut seen: Vec<String> = Vec::new();
                for item in items {
                    if let SelectItem::Udf { call, .. } = item {
                        let key = format!("{call:?}");
                        if !seen.contains(&key) {
                            seen.push(key);
                            cost += self.model.generative_select(rows);
                        }
                    }
                }
                Ok(PhysicalPlan {
                    node: PhysNode::Project {
                        input: Box::new(input),
                        items: items.clone(),
                    },
                    rows_out: rows,
                    cost,
                })
            }
        }
    }

    // ----------------------------------------------------- filters

    fn crowd_filter(&mut self, input: PhysicalPlan, conjuncts: &[UdfCall]) -> Result<PhysicalPlan> {
        let rows = input.rows_out;
        let op = self.config.filter.clone();
        let pins = self.config.pins;

        let sel_of = |c: &UdfCall| -> Option<f64> {
            self.catalog
                .task(&c.name)
                .ok()
                .and_then(|t| self.stats.filter_selectivity(t.oracle_key()))
        };

        let mut ordered: Vec<UdfCall> = conjuncts.to_vec();
        let any_known = conjuncts.iter().any(|c| sel_of(c).is_some());

        // Decision 1: rank conjuncts by (1 − σ)/cost. Per-tuple cost
        // is 1/batch for every conjunct here, so the rank reduces to
        // ascending selectivity; unknowns (σ = 1 ⇒ rank 0) keep their
        // written order at the tail.
        if self.cost_based() && conjuncts.len() > 1 && any_known {
            let rank = |c: &UdfCall| -> f64 {
                let sel = sel_of(c).unwrap_or(1.0);
                (1.0 - sel) * op.batch_size as f64
            };
            let before: Vec<&str> = ordered.iter().map(|c| c.name.as_str()).collect();
            let mut indexed: Vec<(usize, UdfCall)> = ordered.iter().cloned().enumerate().collect();
            indexed.sort_by(|(ia, a), (ib, b)| {
                rank(b)
                    .partial_cmp(&rank(a))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ia.cmp(ib))
            });
            let after: Vec<UdfCall> = indexed.into_iter().map(|(_, c)| c).collect();
            if after
                .iter()
                .map(|c| &c.name)
                .ne(ordered.iter().map(|c| &c.name))
            {
                self.decisions.push(format!(
                    "filter order: {} -> {} (rank (1-sel)/cost)",
                    before.join(" AND "),
                    after
                        .iter()
                        .map(|c| c.name.as_str())
                        .collect::<Vec<_>>()
                        .join(" AND ")
                ));
            }
            ordered = after;
        }

        let sels: Vec<f64> = ordered.iter().map(|c| sel_of(c).unwrap_or(1.0)).collect();
        let serial = self.model.serial_filters(rows, &sels, &op);
        let combined_est = self.model.combined_filter(rows, ordered.len(), &op);

        // Decision 2: §2.6 combining when evidence says it is strictly
        // cheaper. Without evidence the configured style stands.
        let mut combined = self.config.combine_conjunct_filters && ordered.len() > 1;
        if self.cost_based()
            && !pins.combine
            && ordered.len() > 1
            && any_known
            && !combined
            && combined_est.hits < serial.hits
        {
            combined = true;
            self.decisions.push(format!(
                "combine {} conjunct filters: {:.0} HITs vs {:.0} serial",
                ordered.len(),
                combined_est.hits,
                serial.hits
            ));
        }

        let cost = if combined && ordered.len() > 1 {
            combined_est
        } else {
            serial
        };
        let out_rows = rows * sels.iter().product::<f64>();
        Ok(PhysicalPlan {
            node: PhysNode::CrowdFilter {
                input: Box::new(input),
                conjuncts: ordered,
                combined,
                op,
            },
            rows_out: out_rows,
            cost,
        })
    }

    // ------------------------------------------------------- joins

    /// Compile a left-deep join chain, optionally reordering the join
    /// sequence (decision 5).
    fn join_chain(&mut self, plan: &LogicalPlan) -> Result<PhysicalPlan> {
        // Flatten Join(Join(Join(base, r1), r2), r3).
        let mut clauses: Vec<(&JoinClause, &LogicalPlan)> = Vec::new();
        let mut cursor = plan;
        while let LogicalPlan::Join {
            left,
            right,
            clause,
        } = cursor
        {
            clauses.push((clause, right));
            cursor = left;
        }
        clauses.reverse();
        let base = self.node(cursor)?;
        let rights: Vec<PhysicalPlan> = clauses
            .iter()
            .map(|(_, r)| self.node(r))
            .collect::<Result<_>>()?;

        let mut order: Vec<usize> = (0..clauses.len()).collect();
        if self.cost_based()
            && clauses.len() > 1
            && !self.star
            && clauses
                .iter()
                .all(|(c, _)| self.stats.join_selectivity(&c.on.name).is_some())
            && chain_is_reorderable(cursor, &clauses)
        {
            // Greedy cheapest-first: joining the smallest inputs early
            // keeps the left side (and thus every later cross
            // product) small.
            let mut ranked = order.clone();
            ranked.sort_by(|&a, &b| {
                rights[a]
                    .rows_out
                    .partial_cmp(&rights[b].rows_out)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            if ranked != order {
                self.decisions.push(format!(
                    "join order: {} (ascending estimated cardinality)",
                    ranked
                        .iter()
                        .map(|&i| clauses[i].0.right.binding().to_owned())
                        .collect::<Vec<_>>()
                        .join(" then ")
                ));
                order = ranked;
            }
        }

        let mut rights: Vec<Option<PhysicalPlan>> = rights.into_iter().map(Some).collect();
        let mut acc = base;
        for &i in &order {
            let right = rights[i].take().expect("each join consumed once");
            acc = self.join_node(acc, right, clauses[i].0)?;
        }
        Ok(acc)
    }

    fn join_node(
        &mut self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        clause: &JoinClause,
    ) -> Result<PhysicalPlan> {
        use crate::lang::ast::PossiblyClause;
        let n = left.rows_out;
        let m = right.rows_out;
        let pins = self.config.pins;
        let ff = self.config.feature_filter.clone();

        // Decision 4: prune POSSIBLY features whose remembered κ/σ
        // already fails the §3.2 thresholds — don't pay to re-sample a
        // known-bad feature (§5.4).
        let mut kept_possibly = Vec::new();
        let mut pruned = Vec::new();
        let mut feature_sel = 1.0f64;
        let mut num_eq = 0usize;
        for p in &clause.possibly {
            match p {
                PossiblyClause::FeatureEq { left: lc, .. } => {
                    let stat = self
                        .catalog
                        .task(&lc.name)
                        .ok()
                        .and_then(|t| self.stats.feature(t.oracle_key()));
                    if self.cost_based() && !pins.feature_filter {
                        if let Some(s) = stat {
                            if s.kappa < ff.kappa_threshold || s.selectivity > ff.max_selectivity {
                                pruned.push(lc.name.clone());
                                self.decisions.push(format!(
                                    "drop feature {}: kappa {:.2} / sigma {:.2} already \
                                     fails thresholds",
                                    lc.name, s.kappa, s.selectivity
                                ));
                                continue;
                            }
                        }
                    }
                    if let Some(s) = stat {
                        feature_sel *= s.selectivity.clamp(0.0, 1.0);
                    }
                    num_eq += 1;
                    kept_possibly.push(p.clone());
                }
                PossiblyClause::FeatureLit { .. } => kept_possibly.push(p.clone()),
            }
        }

        let mut cost = CostEstimate::ZERO;
        // Literal prefilters: one extraction pass over the side they
        // filter (side unknown here; charge the larger one).
        for p in &kept_possibly {
            if matches!(p, PossiblyClause::FeatureLit { .. }) {
                cost += self.model.feature_extraction(n.max(m), 1, &ff);
            }
        }
        if num_eq > 0 {
            cost += self.model.feature_filter(n, m, num_eq, num_eq, &ff);
        }

        let pairs = (n * m * feature_sel).max(0.0);
        let join_sel = self.stats.join_selectivity(&clause.on.name);

        // Decision 3: enumerate batching strategies at the estimated
        // candidate-pair count.
        let as_written = self.config.join.strategy;
        let mut strategy = as_written;
        if self.cost_based()
            && !pins.join
            && join_sel.is_some()
            && n * m >= MIN_JOIN_PAIRS_FOR_REBATCH
        {
            let candidates = [
                as_written,
                JoinStrategy::NaiveBatch(10),
                JoinStrategy::SmartBatch { rows: 3, cols: 3 },
                JoinStrategy::SmartBatch { rows: 5, cols: 5 },
            ];
            let assignments = self.config.join.assignments;
            let best = candidates
                .into_iter()
                .map(|s| (self.model.join(n, m, pairs, s, assignments).hits, s))
                .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(_, s)| s)
                .unwrap_or(as_written);
            let written_hits = self.model.join(n, m, pairs, as_written, assignments).hits;
            let best_hits = self.model.join(n, m, pairs, best, assignments).hits;
            if best != as_written && best_hits < written_hits {
                self.decisions.push(format!(
                    "join strategy: {as_written:?} -> {best:?} ({best_hits:.0} vs \
                     {written_hits:.0} HITs at ~{pairs:.0} candidate pairs)"
                ));
                strategy = best;
            }
        }

        let mut op = self.config.join.clone();
        op.strategy = strategy;
        if let Ok(task) = self.catalog.task(&clause.on.name) {
            if task.ty == TaskType::EquiJoin {
                op.combiner = task.combiner;
            }
        }
        cost += self.model.join(n, m, pairs, strategy, op.assignments);

        // Expected matches: learned match rate, else the equi-join
        // heuristic (about one partner per smaller-side row).
        let matches = match join_sel {
            Some(s) => pairs * s,
            None => n.min(m),
        }
        .min(pairs.max(n.min(m)));

        let mut clause = clause.clone();
        clause.possibly = kept_possibly;
        Ok(PhysicalPlan {
            node: PhysNode::Join {
                left: Box::new(left),
                right: Box::new(right),
                clause,
                op,
                feature_filter: ff,
                pruned_features: pruned,
            },
            rows_out: matches,
            cost,
        })
    }

    // ------------------------------------------------------- sorts

    fn order_by(&mut self, input: PhysicalPlan, keys: &[OrderExpr]) -> Result<PhysicalPlan> {
        let rows = input.rows_out;
        let n = rows.ceil() as usize;
        let pins = self.config.pins;
        let crowd_key = keys.iter().find_map(|k| match &k.expr {
            Expr::Udf(call) => Some(call),
            _ => None,
        });

        let mut mode = self.config.sort.clone();
        if let Some(call) = crowd_key {
            let dim = self
                .catalog
                .task(&call.name)
                .ok()
                .map(|t| t.oracle_key().to_owned());
            let ambiguity = dim.as_deref().and_then(|d| self.stats.sort_ambiguity(d));

            // Decision 6: pick the sort implementation from the learned
            // dimension ambiguity (§4.3), carrying the configured
            // assignment override into the replacement operator.
            if self.cost_based() && !pins.sort && n >= MIN_SORT_N_FOR_SWITCH {
                if let Some(amb) = ambiguity {
                    let assignments = match &mode {
                        SortMode::Compare(op) => op.assignments,
                        SortMode::Rate(op) => op.assignments,
                        SortMode::Hybrid(op, _) => op.assignments,
                    };
                    let candidate = if amb <= RATE_AMBIGUITY_MAX {
                        Some(SortMode::Rate(RateSort {
                            assignments,
                            ..RateSort::default()
                        }))
                    } else if amb <= HYBRID_AMBIGUITY_MAX {
                        let iters = n.div_ceil(3);
                        Some(SortMode::Hybrid(
                            HybridSort {
                                assignments,
                                rate: RateSort {
                                    assignments,
                                    ..RateSort::default()
                                },
                                ..HybridSort::default()
                            },
                            iters,
                        ))
                    } else {
                        None
                    };
                    if let Some(candidate) = candidate {
                        let written = self.model.sort(n, &mode);
                        let est = self.model.sort(n, &candidate);
                        if est.hits < written.hits {
                            self.decisions.push(format!(
                                "sort strategy: {} -> {} (ambiguity {:.2}, {:.0} vs \
                                 {:.0} HITs over {n} items)",
                                sort_label(&mode),
                                sort_label(&candidate),
                                amb,
                                est.hits,
                                written.hits
                            ));
                            mode = candidate;
                        }
                    }
                }
            }
        }

        let cost = if crowd_key.is_some() {
            self.model.sort(n, &mode)
        } else {
            CostEstimate::ZERO
        };
        Ok(PhysicalPlan {
            node: PhysNode::OrderBy {
                input: Box::new(input),
                keys: keys.to_vec(),
                mode,
            },
            rows_out: rows,
            cost,
        })
    }
}

/// The alias the base sub-plan's scan binds (filters sit above it).
fn base_scan_alias(plan: &LogicalPlan) -> Option<&str> {
    match plan {
        LogicalPlan::Scan { alias, .. } => Some(alias),
        LogicalPlan::MachineFilter { input, .. }
        | LogicalPlan::CrowdFilter { input, .. }
        | LogicalPlan::CrowdFilterOr { input, .. } => base_scan_alias(input),
        _ => None,
    }
}

/// The table binding a qualified column/UDF argument references;
/// `None` when it cannot be determined (unqualified or non-column).
fn arg_binding(e: &Expr) -> Option<&str> {
    match e {
        Expr::Column(c) if c.contains('.') => c.split('.').next(),
        _ => None,
    }
}

/// A join chain may only be reordered when every clause's arguments
/// (ON and POSSIBLY) provably reference just the base table and the
/// clause's own right table. A clause that touches another join's
/// right side (e.g. `JOIN v ON j2(u.img, v.img)`) fixes its position:
/// executed early, its columns would not exist yet.
fn chain_is_reorderable(base: &LogicalPlan, clauses: &[(&JoinClause, &LogicalPlan)]) -> bool {
    use crate::lang::ast::PossiblyClause;
    let Some(base_alias) = base_scan_alias(base) else {
        return false;
    };
    clauses.iter().all(|(c, _)| {
        let own = c.right.binding();
        let arg_ok = |e: &Expr| match arg_binding(e) {
            Some(b) => b == base_alias || b == own,
            None => false, // unresolvable: assume dependent
        };
        c.on.args.iter().all(arg_ok)
            && c.possibly.iter().all(|p| match p {
                PossiblyClause::FeatureEq { left, right } => {
                    left.args.iter().all(arg_ok) && right.args.iter().all(arg_ok)
                }
                PossiblyClause::FeatureLit { call, .. } => call.args.iter().all(arg_ok),
            })
    })
}

/// Short human label for a sort mode.
pub fn sort_label(mode: &SortMode) -> String {
    match mode {
        SortMode::Compare(op) => format!("Compare(S={})", op.group_size),
        SortMode::Rate(op) => format!("Rate(b={})", op.batch_size),
        SortMode::Hybrid(op, iters) => format!("Hybrid(S={}, iters={iters})", op.window),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse_query;
    use crate::plan::plan_query;
    use crate::relation::Relation;
    use crate::schema::{Schema, ValueType};
    use crate::value::Value;

    fn catalog(rows: usize) -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(&[("id", ValueType::Int), ("img", ValueType::Item)]);
        let mut t = Relation::new(schema.clone());
        for i in 0..rows {
            t.push(vec![Value::Int(i as i64), Value::Null]).unwrap();
        }
        c.register_table("t", t.clone());
        c.register_table("u", t.clone());
        c.register_table("v", t);
        c.define_tasks(
            r#"TASK a(field) TYPE Filter:
                Prompt: "%s?", tuple[field]
               TASK b(field) TYPE Filter:
                Prompt: "%s?", tuple[field]
               TASK j(x, y) TYPE EquiJoin:
                Combiner: QualityAdjust
               TASK j2(x, y) TYPE EquiJoin:
                Combiner: MajorityVote
               TASK g(field) TYPE Generative:
                Prompt: "%s?", tuple[field]
                Response: Radio("G", ["x", "y", UNKNOWN])
               TASK byD(field) TYPE Rank:
                OrderDimensionName: "d"
            "#,
        )
        .unwrap();
        c
    }

    fn compile_sql(
        sql: &str,
        rows: usize,
        config: &ExecConfig,
        stats: &StatisticsStore,
    ) -> CompiledPlan {
        let cat = catalog(rows);
        let logical = plan_query(&parse_query(sql).unwrap(), &cat).unwrap();
        compile(&logical, &cat, config, stats).unwrap()
    }

    #[test]
    fn empty_stats_compiles_as_written() {
        let config = ExecConfig::default();
        let stats = StatisticsStore::new();
        let plan = compile_sql(
            "SELECT id FROM t WHERE a(t.img) AND b(t.img) ORDER BY byD(t.img)",
            30,
            &config,
            &stats,
        );
        assert!(plan.decisions.is_empty(), "{:?}", plan.decisions);
        // Conjuncts stay in written order, serial, Compare sort.
        fn find_filter(p: &PhysicalPlan) -> Option<(&Vec<UdfCall>, bool)> {
            if let PhysNode::CrowdFilter {
                conjuncts,
                combined,
                ..
            } = &p.node
            {
                return Some((conjuncts, *combined));
            }
            p.children().into_iter().find_map(find_filter)
        }
        let (conjuncts, combined) = find_filter(&plan.root).unwrap();
        assert_eq!(conjuncts[0].name, "a");
        assert_eq!(conjuncts[1].name, "b");
        assert!(!combined);
    }

    #[test]
    fn learned_selectivity_reorders_and_combines_filters() {
        let config = ExecConfig::default();
        let mut stats = StatisticsStore::new();
        stats.observe_filter("a", 100, 90); // unselective
        stats.observe_filter("b", 100, 10); // selective
        let plan = compile_sql(
            "SELECT id FROM t WHERE a(t.img) AND b(t.img)",
            30,
            &config,
            &stats,
        );
        let PhysNode::Project { input, .. } = &plan.root.node else {
            panic!()
        };
        let PhysNode::CrowdFilter {
            conjuncts,
            combined,
            ..
        } = &input.node
        else {
            panic!("{:?}", input.node)
        };
        assert_eq!(conjuncts[0].name, "b", "selective filter first");
        assert!(*combined, "combining is cheaper with evidence");
        assert_eq!(plan.decisions.len(), 2, "{:?}", plan.decisions);
    }

    #[test]
    fn as_written_mode_never_deviates() {
        let config = ExecConfig {
            optimize: OptimizeMode::AsWritten,
            ..Default::default()
        };
        let mut stats = StatisticsStore::new();
        stats.observe_filter("a", 100, 90);
        stats.observe_filter("b", 100, 10);
        stats.observe_join("j", 900, 30);
        let plan = compile_sql(
            "SELECT t.id FROM t JOIN u ON j(t.img, u.img) WHERE a(t.img) AND b(t.img)",
            30,
            &config,
            &stats,
        );
        assert!(plan.decisions.is_empty(), "{:?}", plan.decisions);
    }

    #[test]
    fn join_strategy_upgrades_with_stats_at_scale() {
        let config = ExecConfig::default();
        let mut stats = StatisticsStore::new();
        stats.observe_join("j", 900, 30);
        let plan = compile_sql(
            "SELECT t.id FROM t JOIN u ON j(t.img, u.img)",
            30,
            &config,
            &stats,
        );
        fn find_join(p: &PhysicalPlan) -> Option<&JoinOp> {
            if let PhysNode::Join { op, .. } = &p.node {
                return Some(op);
            }
            p.children().into_iter().find_map(find_join)
        }
        let op = find_join(&plan.root).unwrap();
        assert_eq!(
            op.strategy,
            JoinStrategy::SmartBatch { rows: 5, cols: 5 },
            "decisions: {:?}",
            plan.decisions
        );
        // Below the pair floor the as-written strategy stands.
        let small = compile_sql(
            "SELECT t.id FROM t JOIN u ON j(t.img, u.img)",
            10,
            &config,
            &stats,
        );
        let op = find_join(&small.root).unwrap();
        assert_eq!(op.strategy, JoinOp::default().strategy);
    }

    #[test]
    fn sort_switches_to_rate_on_crisp_dimension() {
        let config = ExecConfig::default();
        let mut stats = StatisticsStore::new();
        stats.observe_sort("d", 0.05);
        let plan = compile_sql("SELECT id FROM t ORDER BY byD(t.img)", 30, &config, &stats);
        fn find_sort(p: &PhysicalPlan) -> Option<&SortMode> {
            if let PhysNode::OrderBy { mode, .. } = &p.node {
                return Some(mode);
            }
            p.children().into_iter().find_map(find_sort)
        }
        assert!(
            matches!(find_sort(&plan.root), Some(SortMode::Rate(_))),
            "{:?}",
            plan.decisions
        );
        // Small inputs keep Compare regardless of evidence.
        let small = compile_sql("SELECT id FROM t ORDER BY byD(t.img)", 10, &config, &stats);
        assert!(matches!(find_sort(&small.root), Some(SortMode::Compare(_))));
        // Moderate ambiguity picks the hybrid.
        let mut stats2 = StatisticsStore::new();
        stats2.observe_sort("d", 0.35);
        let hybrid = compile_sql("SELECT id FROM t ORDER BY byD(t.img)", 60, &config, &stats2);
        assert!(
            matches!(find_sort(&hybrid.root), Some(SortMode::Hybrid(_, _))),
            "{:?}",
            hybrid.decisions
        );
    }

    #[test]
    fn pinned_sort_is_respected() {
        let mut config = ExecConfig::default();
        config.pins.sort = true;
        let mut stats = StatisticsStore::new();
        stats.observe_sort("d", 0.05);
        let plan = compile_sql("SELECT id FROM t ORDER BY byD(t.img)", 30, &config, &stats);
        let PhysNode::Project { input, .. } = &plan.root.node else {
            panic!()
        };
        assert!(matches!(
            &input.node,
            PhysNode::OrderBy {
                mode: SortMode::Compare(_),
                ..
            }
        ));
        assert!(plan.decisions.is_empty());
    }

    #[test]
    fn limit_one_lowering_happens_in_both_modes() {
        for mode in [OptimizeMode::CostBased, OptimizeMode::AsWritten] {
            let config = ExecConfig {
                optimize: mode,
                ..Default::default()
            };
            let stats = StatisticsStore::new();
            let plan = compile_sql(
                "SELECT id FROM t ORDER BY byD(t.img) DESC LIMIT 1",
                20,
                &config,
                &stats,
            );
            let PhysNode::Project { input, .. } = &plan.root.node else {
                panic!()
            };
            assert!(
                matches!(&input.node, PhysNode::ExtractExtreme { desc: true, .. }),
                "{mode:?}"
            );
            // Tournament estimate: 4 + 1 HITs for 20 items.
            assert_eq!(input.cost.hits, 5.0);
        }
    }

    #[test]
    fn join_chain_reorders_by_cardinality() {
        let config = ExecConfig {
            optimize: OptimizeMode::CostBased,
            ..Default::default()
        };
        let mut stats = StatisticsStore::new();
        stats.observe_join("j", 900, 30);
        stats.observe_join("j2", 900, 30);
        // Make `v` smaller than `u` by filtering... simpler: register
        // different cardinalities via a custom catalog.
        let mut cat = catalog(20);
        let schema = Schema::new(&[("id", ValueType::Int), ("img", ValueType::Item)]);
        let mut small = Relation::new(schema);
        for i in 0..5 {
            small.push(vec![Value::Int(i), Value::Null]).unwrap();
        }
        cat.register_table("v", small);
        let logical = plan_query(
            &parse_query("SELECT t.id FROM t JOIN u ON j(t.img, u.img) JOIN v ON j2(t.img, v.img)")
                .unwrap(),
            &cat,
        )
        .unwrap();
        let plan = compile(&logical, &cat, &config, &stats).unwrap();
        assert!(
            plan.decisions.iter().any(|d| d.starts_with("join order")),
            "{:?}",
            plan.decisions
        );
        // The small table `v` joins first: it is the *inner* join's
        // right side, i.e. the right child of the join whose left
        // child is the base scan chain.
        fn joins<'p>(p: &'p PhysicalPlan, out: &mut Vec<&'p JoinClause>) {
            if let PhysNode::Join { clause, .. } = &p.node {
                out.push(clause);
            }
            for c in p.children() {
                joins(c, out);
            }
        }
        let mut found = Vec::new();
        joins(&plan.root, &mut found);
        // Outermost join listed first; innermost (executed first) last.
        assert_eq!(found.last().unwrap().right.binding(), "v");
    }

    /// Regression: a chained join whose ON clause references the
    /// *previous* join's right table must keep its written position —
    /// executed early, the referenced columns would not exist yet and
    /// the query would fail with UnknownColumn at runtime.
    #[test]
    fn dependent_join_chain_is_never_reordered() {
        let config = ExecConfig {
            optimize: OptimizeMode::CostBased,
            ..Default::default()
        };
        let mut stats = StatisticsStore::new();
        stats.observe_join("j", 900, 30);
        stats.observe_join("j2", 900, 30);
        let mut cat = catalog(20);
        let schema = Schema::new(&[("id", ValueType::Int), ("img", ValueType::Item)]);
        let mut small = Relation::new(schema);
        for i in 0..5 {
            small.push(vec![Value::Int(i), Value::Null]).unwrap();
        }
        cat.register_table("v", small);
        // j2 references u.img — the first join's right side.
        let logical = plan_query(
            &parse_query("SELECT t.id FROM t JOIN u ON j(t.img, u.img) JOIN v ON j2(u.img, v.img)")
                .unwrap(),
            &cat,
        )
        .unwrap();
        let plan = compile(&logical, &cat, &config, &stats).unwrap();
        assert!(
            !plan.decisions.iter().any(|d| d.starts_with("join order")),
            "dependent chain must stay as written: {:?}",
            plan.decisions
        );
        fn joins<'p>(p: &'p PhysicalPlan, out: &mut Vec<&'p JoinClause>) {
            if let PhysNode::Join { clause, .. } = &p.node {
                out.push(clause);
            }
            for c in p.children() {
                joins(c, out);
            }
        }
        let mut found = Vec::new();
        joins(&plan.root, &mut found);
        // Innermost (executed first) is still the u-join.
        assert_eq!(found.last().unwrap().right.binding(), "u");
    }

    #[test]
    fn known_bad_feature_is_pruned_before_sampling() {
        let config = ExecConfig::default();
        let mut stats = StatisticsStore::new();
        stats.observe_feature("g", 0.05, 0.5); // ambiguous: κ below 0.20
        let plan = compile_sql(
            "SELECT t.id FROM t JOIN u ON j(t.img, u.img) AND POSSIBLY g(t.img) = g(u.img)",
            30,
            &config,
            &stats,
        );
        fn find_join(p: &PhysicalPlan) -> Option<(&JoinClause, &Vec<String>)> {
            if let PhysNode::Join {
                clause,
                pruned_features,
                ..
            } = &p.node
            {
                return Some((clause, pruned_features));
            }
            p.children().into_iter().find_map(find_join)
        }
        let (clause, pruned) = find_join(&plan.root).unwrap();
        assert!(clause.possibly.is_empty(), "feature must be pruned");
        assert_eq!(pruned, &vec!["g".to_owned()]);
        // A healthy feature stays.
        let mut stats2 = StatisticsStore::new();
        stats2.observe_feature("g", 0.8, 0.5);
        let plan2 = compile_sql(
            "SELECT t.id FROM t JOIN u ON j(t.img, u.img) AND POSSIBLY g(t.img) = g(u.img)",
            30,
            &config,
            &stats2,
        );
        let (clause2, _) = find_join(&plan2.root).unwrap();
        assert_eq!(clause2.possibly.len(), 1);
    }

    #[test]
    fn total_cost_sums_the_tree() {
        let config = ExecConfig::default();
        let stats = StatisticsStore::new();
        let plan = compile_sql(
            "SELECT id FROM t WHERE a(t.img) AND b(t.img)",
            30,
            &config,
            &stats,
        );
        // Two serial filters over 30 rows at batch 5: 6 + 6 HITs.
        assert_eq!(plan.estimate.hits, 12.0);
        assert!(plan.estimate.dollars > 0.0);
    }
}
