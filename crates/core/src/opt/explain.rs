//! EXPLAIN rendering for physical plans.
//!
//! Two views, both surfaced on
//! [`QueryReport`](crate::session::QueryReport):
//!
//! * [`PhysicalPlan`]'s `Display` — the chosen operator tree with
//!   per-node estimated cardinality and HITs (the §6 "iterative
//!   debugging" view, extended with the optimizer's numbers);
//! * [`PlanReport::render`] — the optimizer's summary: mode, decision
//!   log, and estimated vs actual HITs / dollars / latency once the
//!   query has run.

use std::fmt;

use crate::backend::BackendUsage;
use crate::opt::cost::CostEstimate;
use crate::opt::physical::{sort_label, CompiledPlan, OptimizeMode, PhysNode, PhysicalPlan};

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_node(self, f, 0)
    }
}

fn fmt_node(plan: &PhysicalPlan, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    let pad = "  ".repeat(depth);
    let label = match &plan.node {
        PhysNode::Scan { table, alias } => format!("Scan {table} AS {alias}"),
        PhysNode::MachineFilter { predicates, .. } => {
            format!("MachineFilter [{} predicates]", predicates.len())
        }
        PhysNode::CrowdFilter {
            conjuncts,
            combined,
            op,
            ..
        } => {
            let names: Vec<&str> = conjuncts.iter().map(|c| c.name.as_str()).collect();
            let style = if *combined && conjuncts.len() > 1 {
                "combined"
            } else {
                "serial"
            };
            format!(
                "CrowdFilter {} [{style}, batch {}]",
                names.join(" AND "),
                op.batch_size
            )
        }
        PhysNode::CrowdFilterOr { groups, .. } => {
            format!("CrowdFilterOr [{} groups]", groups.len())
        }
        PhysNode::Join {
            clause,
            op,
            pruned_features,
            ..
        } => {
            let mut s = format!("CrowdJoin ON {} [{:?}", clause.on.name, op.strategy);
            if !clause.possibly.is_empty() {
                s.push_str(&format!(", {} POSSIBLY", clause.possibly.len()));
            }
            if !pruned_features.is_empty() {
                s.push_str(&format!(", pruned {}", pruned_features.join("+")));
            }
            s.push(']');
            s
        }
        PhysNode::OrderBy { keys, mode, .. } => {
            format!("OrderBy [{} keys, {}]", keys.len(), sort_label(mode))
        }
        PhysNode::ExtractExtreme { call, desc, .. } => {
            format!(
                "Extract{} {} [tournament]",
                if *desc { "Max" } else { "Min" },
                call.name
            )
        }
        PhysNode::Limit { n, .. } => format!("Limit {n}"),
        PhysNode::Project { items, .. } => format!("Project [{} columns]", items.len()),
    };
    if plan.cost.hits > 0.0 {
        writeln!(
            f,
            "{pad}{label}  (~{:.0} rows, ~{:.0} HITs, ~${:.2})",
            plan.rows_out, plan.cost.hits, plan.cost.dollars
        )?;
    } else {
        writeln!(f, "{pad}{label}  (~{:.0} rows)", plan.rows_out)?;
    }
    for child in plan.children() {
        fmt_node(child, f, depth + 1)?;
    }
    Ok(())
}

/// The optimizer's per-query report: chosen plan, decision log, and
/// the cost model's estimate. Attached to every
/// [`QueryReport`](crate::session::QueryReport).
#[derive(Debug, Clone)]
pub struct PlanReport {
    pub mode: OptimizeMode,
    /// Rendered physical plan (the `Display` form above).
    pub physical: String,
    /// Cost-based deviations from the as-written plan, in the order
    /// they were decided. Empty when none were justified.
    pub decisions: Vec<String>,
    /// Total estimated cost of the chosen plan.
    pub estimate: CostEstimate,
}

impl From<&CompiledPlan> for PlanReport {
    fn from(compiled: &CompiledPlan) -> Self {
        PlanReport {
            mode: compiled.mode,
            physical: compiled.root.to_string(),
            decisions: compiled.decisions.clone(),
            estimate: compiled.estimate,
        }
    }
}

impl PlanReport {
    /// The full EXPLAIN surface: logical plan, then [`Self::render`].
    /// Both `QueryReport::explain_full` and `QueryBuilder::explain`
    /// frame their output through here.
    pub fn render_with_logical(&self, logical: &str, actual: Option<&BackendUsage>) -> String {
        format!("logical plan:\n{logical}{}", self.render(actual))
    }

    /// Render the EXPLAIN block: plan, decisions, and (when `actual`
    /// is given) estimated vs actual resource usage.
    pub fn render(&self, actual: Option<&BackendUsage>) -> String {
        let mut out = String::new();
        out.push_str(&format!("physical plan ({:?}):\n", self.mode));
        out.push_str(&self.physical);
        if !self.decisions.is_empty() {
            out.push_str("optimizer decisions:\n");
            for d in &self.decisions {
                out.push_str(&format!("  - {d}\n"));
            }
        }
        match actual {
            Some(u) => {
                out.push_str("estimated vs actual:\n");
                out.push_str(&format!(
                    "  HITs     {:>10.0} {:>10}\n",
                    self.estimate.hits, u.hits_posted
                ));
                out.push_str(&format!(
                    "  dollars  {:>10.2} {:>10.2}\n",
                    self.estimate.dollars, u.dollars
                ));
                out.push_str(&format!(
                    "  latency  {:>9.0}s {:>9.0}s\n",
                    self.estimate.latency_secs, u.elapsed_secs
                ));
            }
            None => {
                out.push_str(&format!(
                    "estimated: {:.0} HITs, ${:.2}, ~{:.0}s\n",
                    self.estimate.hits, self.estimate.dollars, self.estimate.latency_secs
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::lang::parser::parse_query;
    use crate::opt::physical::compile;
    use crate::opt::stats::StatisticsStore;
    use crate::plan::plan_query;
    use crate::relation::Relation;
    use crate::schema::{Schema, ValueType};
    use crate::session::ExecConfig;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut t = Relation::new(Schema::new(&[
            ("id", ValueType::Int),
            ("img", ValueType::Item),
        ]));
        for i in 0..20 {
            t.push(vec![Value::Int(i), Value::Null]).unwrap();
        }
        c.register_table("t", t);
        c.define_tasks(
            r#"TASK a(field) TYPE Filter:
                Prompt: "%s?", tuple[field]
               TASK byD(field) TYPE Rank:
                OrderDimensionName: "d"
            "#,
        )
        .unwrap();
        c
    }

    #[test]
    fn physical_display_shows_choices_and_estimates() {
        let cat = catalog();
        let logical = plan_query(
            &parse_query("SELECT id FROM t WHERE a(t.img) ORDER BY byD(t.img)").unwrap(),
            &cat,
        )
        .unwrap();
        let plan = compile(
            &logical,
            &cat,
            &ExecConfig::default(),
            &StatisticsStore::new(),
        )
        .unwrap();
        let text = plan.root.to_string();
        assert!(text.contains("CrowdFilter a [serial, batch 5]"), "{text}");
        assert!(text.contains("OrderBy [1 keys, Compare(S=5)]"), "{text}");
        assert!(text.contains("HITs"), "{text}");
        // Indentation: the scan sits deepest.
        let depth = |needle: &str| {
            text.lines()
                .find(|l| l.contains(needle))
                .map(|l| l.len() - l.trim_start().len())
                .unwrap()
        };
        assert!(depth("Scan") > depth("OrderBy"));
    }

    #[test]
    fn report_renders_estimate_vs_actual() {
        let report = PlanReport {
            mode: OptimizeMode::CostBased,
            physical: "Project\n".into(),
            decisions: vec!["combine 2 conjunct filters".into()],
            estimate: CostEstimate {
                hits: 10.0,
                rounds: 2.0,
                assignments: 50.0,
                dollars: 0.75,
                latency_secs: 600.0,
            },
        };
        let actual = BackendUsage {
            hits_posted: 9,
            assignments: 45,
            dollars: 0.675,
            elapsed_secs: 540.0,
        };
        let text = report.render(Some(&actual));
        assert!(text.contains("combine 2 conjunct filters"), "{text}");
        assert!(text.contains("estimated vs actual"), "{text}");
        assert!(text.contains("0.75"), "{text}");
        assert!(text.contains("0.68"), "{text}");
        let no_actual = report.render(None);
        assert!(no_actual.contains("estimated: 10 HITs"), "{no_actual}");
    }
}
