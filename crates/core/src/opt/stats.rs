//! The statistics store the paper says Qurk lacks.
//!
//! §2.5: "Qurk currently lacks selectivity estimation, so it orders
//! filters and joins as they appear in the query." This module is that
//! missing piece: a [`StatisticsStore`] that learns, from completed
//! crowd work, exactly the quantities the paper's experiments measure
//! by hand —
//!
//! * per-filter-task **selectivity** (fraction of tuples passing, the
//!   σ driving §2.5 filter ordering),
//! * per-join-task **match selectivity** (matches / pairs asked, the
//!   cardinality input to §3.1's batching arithmetic),
//! * per-feature **Fleiss κ ambiguity and selectivity** (§3.2's two
//!   automatic feature-filter tests, remembered across queries so a
//!   known-bad feature is never sampled again — the §5.4 threshold),
//! * per-dimension **sort ambiguity** (worker disagreement, Figure 6's
//!   κ signal, deciding Compare vs Rate vs Hybrid per §4.3),
//! * observed **seconds-per-HIT** from metering epochs (the latency
//!   leg of the cost model).
//!
//! Observations are running tallies: the store starts empty, every
//! executed operator feeds it, and estimates are exposed as `Option` —
//! `None` means "no evidence", which the planner treats as "keep the
//! as-written plan".
//!
//! For the multi-tenant service ([`crate::service`]) the store comes in
//! a thread-safe flavor, [`SharedStatistics`], with **merge-on-commit**
//! semantics: each query takes a [`SharedStatistics::snapshot`] at
//! admission, learns into its private copy while running, and commits
//! only the [`StatisticsStore::diff`] against its snapshot when it
//! completes. Concurrent queries therefore never observe each other's
//! half-finished evidence (snapshot isolation), and no update is lost
//! (deltas of monotone counters merge associatively).

use std::collections::HashMap;
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A pass/fail tally (filter tuples, join pairs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Tally {
    pub seen: u64,
    pub passed: u64,
}

impl Tally {
    /// Observed pass fraction; `None` until something was seen.
    pub fn fraction(&self) -> Option<f64> {
        (self.seen > 0).then(|| self.passed as f64 / self.seen as f64)
    }
}

/// Learned quality numbers for one feature-extraction task (§3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureStat {
    /// Pooled Fleiss κ over the last sampled extraction.
    pub kappa: f64,
    /// Estimated pair selectivity σ = Σ ρL·ρR.
    pub selectivity: f64,
}

/// Running mean without the sample history.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct Avg {
    pub(crate) n: u64,
    pub(crate) sum: f64,
}

impl Avg {
    fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
    }

    fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }
}

/// Cross-query operator statistics, owned by a
/// [`Session`](crate::session::Session) and fed by every executed
/// crowd operator plus the per-query metering epochs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatisticsStore {
    /// Filter-task pass tallies, keyed by the task's oracle key.
    pub(crate) filters: HashMap<String, Tally>,
    /// Join-task (pairs asked, matches) tallies, keyed by task name.
    pub(crate) joins: HashMap<String, Tally>,
    /// Feature-task κ/σ from sampled extractions, keyed by task name.
    pub(crate) features: HashMap<String, FeatureStat>,
    /// Sort-dimension ambiguity in [0, 1], keyed by dimension name.
    pub(crate) sorts: HashMap<String, Avg>,
    /// Observed crowd latency: total HITs and elapsed seconds across
    /// completed metering epochs.
    pub(crate) epoch_hits: u64,
    pub(crate) epoch_secs: f64,
    /// Per-round observations for the latency regression
    /// `round_secs ≈ α + β · work_units`: count, Σw, Σt, Σw², Σw·t.
    pub(crate) rounds: RoundSums,
}

#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct RoundSums {
    pub(crate) n: u64,
    pub(crate) sum_h: f64,
    pub(crate) sum_t: f64,
    pub(crate) sum_hh: f64,
    pub(crate) sum_ht: f64,
}

impl StatisticsStore {
    pub fn new() -> Self {
        StatisticsStore::default()
    }

    /// True if nothing has been observed yet (the planner degrades to
    /// as-written plans in that case).
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
            && self.joins.is_empty()
            && self.features.is_empty()
            && self.sorts.is_empty()
            && self.epoch_hits == 0
            && self.rounds.n == 0
    }

    /// Forget everything.
    pub fn clear(&mut self) {
        *self = StatisticsStore::default();
    }

    // ---------------------------------------------------- observation

    /// A crowd filter evaluated `seen` tuples and passed `passed`.
    pub fn record_filter(&mut self, task: &str, seen: usize, passed: usize) {
        let t = self.filters.entry(task.to_owned()).or_default();
        t.seen += seen as u64;
        t.passed += passed as u64;
    }

    /// A crowd join scored `pairs` candidate pairs and matched
    /// `matches` of them.
    pub fn record_join(&mut self, task: &str, pairs: usize, matches: usize) {
        let t = self.joins.entry(task.to_owned()).or_default();
        t.seen += pairs as u64;
        t.passed += matches as u64;
    }

    /// A feature extraction measured this κ and selectivity (§3.2's
    /// sampled tests). Later observations replace earlier ones — the
    /// freshest sample wins.
    pub fn record_feature(&mut self, task: &str, kappa: f64, selectivity: f64) {
        self.features
            .insert(task.to_owned(), FeatureStat { kappa, selectivity });
    }

    /// A crowd sort of this dimension measured worker disagreement
    /// `ambiguity` ∈ [0, 1] (0 = unanimous, 1 = coin flips).
    pub fn record_sort(&mut self, dimension: &str, ambiguity: f64) {
        self.sorts
            .entry(dimension.to_owned())
            .or_default()
            .push(ambiguity.clamp(0.0, 1.0));
    }

    /// One completed metering epoch: `hits` HITs took `secs` of
    /// virtual time. Epochs with no HITs teach nothing about latency.
    pub fn record_epoch(&mut self, hits: u64, secs: f64) {
        if hits > 0 && secs.is_finite() && secs >= 0.0 {
            self.epoch_hits += hits;
            self.epoch_secs += secs;
        }
    }

    /// One completed HIT group (an operator round): `work_units` of
    /// total worker effort (Σ spec work-units × assignments) took
    /// `secs` from posting to last completion. Feeds the
    /// round-latency regression behind [`Self::latency_params`].
    pub fn record_round(&mut self, work_units: f64, secs: f64) {
        if work_units <= 0.0 || !work_units.is_finite() || !secs.is_finite() || secs <= 0.0 {
            return;
        }
        let h = work_units;
        self.rounds.n += 1;
        self.rounds.sum_h += h;
        self.rounds.sum_t += secs;
        self.rounds.sum_hh += h * h;
        self.rounds.sum_ht += h * secs;
    }

    // Legacy `observe_*` names, kept for source compatibility with the
    // pre-service API; new code uses `record_*`.

    /// Alias for [`Self::record_filter`].
    pub fn observe_filter(&mut self, task: &str, seen: usize, passed: usize) {
        self.record_filter(task, seen, passed);
    }

    /// Alias for [`Self::record_join`].
    pub fn observe_join(&mut self, task: &str, pairs: usize, matches: usize) {
        self.record_join(task, pairs, matches);
    }

    /// Alias for [`Self::record_feature`].
    pub fn observe_feature(&mut self, task: &str, kappa: f64, selectivity: f64) {
        self.record_feature(task, kappa, selectivity);
    }

    /// Alias for [`Self::record_sort`].
    pub fn observe_sort(&mut self, dimension: &str, ambiguity: f64) {
        self.record_sort(dimension, ambiguity);
    }

    /// Alias for [`Self::record_epoch`].
    pub fn observe_epoch(&mut self, hits: u64, secs: f64) {
        self.record_epoch(hits, secs);
    }

    /// Alias for [`Self::record_round`].
    pub fn observe_round(&mut self, work_units: f64, secs: f64) {
        self.record_round(work_units, secs);
    }

    // ------------------------------------------------------ estimates

    /// Observed selectivity of a filter task.
    pub fn filter_selectivity(&self, task: &str) -> Option<f64> {
        self.filters.get(task).and_then(Tally::fraction)
    }

    /// Observed match rate of a join task (matches per pair asked).
    pub fn join_selectivity(&self, task: &str) -> Option<f64> {
        self.joins.get(task).and_then(Tally::fraction)
    }

    /// Learned κ/σ for a feature task.
    pub fn feature(&self, task: &str) -> Option<FeatureStat> {
        self.features.get(task).copied()
    }

    /// Mean observed ambiguity of a sort dimension.
    pub fn sort_ambiguity(&self, dimension: &str) -> Option<f64> {
        self.sorts.get(dimension).and_then(Avg::mean)
    }

    /// Mean observed seconds of crowd latency per HIT.
    pub fn secs_per_hit(&self) -> Option<f64> {
        (self.epoch_hits > 0).then(|| self.epoch_secs / self.epoch_hits as f64)
    }

    /// Latency model parameters `(α, β)` with
    /// `round_secs ≈ α + β · work_units`: α is the fixed per-round
    /// overhead (posting, first worker arrivals — empirically the
    /// dominant term for small rounds, since workers rarely engage
    /// with groups offering little work), β the marginal service time
    /// per assignment work-unit. Least squares over observed rounds.
    ///
    /// Degenerate fits are split 50/50 between overhead and service:
    /// when every observed round had the same effort — or noise made
    /// the slope negative — half the mean round time is attributed to
    /// α and half spread over the mean effort, so both "many tiny
    /// rounds" and "one huge round" plans extrapolate sanely instead
    /// of collapsing to a pure per-unit (or pure per-round) rate.
    /// `None` with no observations.
    pub fn latency_params(&self) -> Option<(f64, f64)> {
        let r = &self.rounds;
        if r.n == 0 {
            return None;
        }
        let n = r.n as f64;
        let det = n * r.sum_hh - r.sum_h * r.sum_h;
        if r.n >= 2 && det.abs() > 1e-9 {
            let beta = (n * r.sum_ht - r.sum_h * r.sum_t) / det;
            let alpha = (r.sum_t - beta * r.sum_h) / n;
            if beta >= 0.0 && alpha >= 0.0 {
                return Some((alpha, beta));
            }
        }
        let mean_t = r.sum_t / n;
        let mean_h = r.sum_h / n;
        Some((0.5 * mean_t, 0.5 * mean_t / mean_h))
    }

    /// Fold another store's evidence into this one (e.g. importing a
    /// previous session's statistics).
    ///
    /// Merge is **associative**, and **commutative for every tallied
    /// quantity** (filters, joins, sorts, epochs, rounds are sums).
    /// The one documented tiebreak: `features` is latest-wins, so when
    /// both stores carry the same feature key, the store merged
    /// **later** (submission order in the service's commit loop)
    /// provides the surviving κ/σ sample. Up to that tiebreak, merge
    /// is order-insensitive (property-tested in
    /// `tests/statistics_persistence.rs`).
    pub fn merge(&mut self, other: &StatisticsStore) {
        for (k, t) in &other.filters {
            let e = self.filters.entry(k.clone()).or_default();
            e.seen += t.seen;
            e.passed += t.passed;
        }
        for (k, t) in &other.joins {
            let e = self.joins.entry(k.clone()).or_default();
            e.seen += t.seen;
            e.passed += t.passed;
        }
        for (k, f) in &other.features {
            self.features.insert(k.clone(), *f);
        }
        for (k, a) in &other.sorts {
            let e = self.sorts.entry(k.clone()).or_default();
            e.n += a.n;
            e.sum += a.sum;
        }
        self.epoch_hits += other.epoch_hits;
        self.epoch_secs += other.epoch_secs;
        self.rounds.n += other.rounds.n;
        self.rounds.sum_h += other.rounds.sum_h;
        self.rounds.sum_t += other.rounds.sum_t;
        self.rounds.sum_hh += other.rounds.sum_hh;
        self.rounds.sum_ht += other.rounds.sum_ht;
    }

    /// The evidence present in `self` but not in `base` — the inverse
    /// of [`Self::merge`] for the monotone counters:
    /// `base.merge(&grown.diff(&base))` reconstructs `grown` whenever
    /// `grown` was produced by recording into a clone of `base`.
    ///
    /// Latest-wins entries (features) are included whenever `self`'s
    /// value differs from `base`'s, so a re-sampled feature propagates
    /// on commit.
    pub fn diff(&self, base: &StatisticsStore) -> StatisticsStore {
        let mut out = StatisticsStore::default();
        for (k, t) in &self.filters {
            let b = base.filters.get(k).copied().unwrap_or_default();
            let d = Tally {
                seen: t.seen.saturating_sub(b.seen),
                passed: t.passed.saturating_sub(b.passed),
            };
            if d != Tally::default() {
                out.filters.insert(k.clone(), d);
            }
        }
        for (k, t) in &self.joins {
            let b = base.joins.get(k).copied().unwrap_or_default();
            let d = Tally {
                seen: t.seen.saturating_sub(b.seen),
                passed: t.passed.saturating_sub(b.passed),
            };
            if d != Tally::default() {
                out.joins.insert(k.clone(), d);
            }
        }
        for (k, f) in &self.features {
            if base.features.get(k) != Some(f) {
                out.features.insert(k.clone(), *f);
            }
        }
        for (k, a) in &self.sorts {
            let b = base.sorts.get(k).copied().unwrap_or_default();
            if a.n > b.n {
                out.sorts.insert(
                    k.clone(),
                    Avg {
                        n: a.n - b.n,
                        sum: (a.sum - b.sum).max(0.0),
                    },
                );
            }
        }
        if self.epoch_hits > base.epoch_hits {
            out.epoch_hits = self.epoch_hits - base.epoch_hits;
            out.epoch_secs = (self.epoch_secs - base.epoch_secs).max(0.0);
        }
        if self.rounds.n > base.rounds.n {
            out.rounds = RoundSums {
                n: self.rounds.n - base.rounds.n,
                sum_h: (self.rounds.sum_h - base.rounds.sum_h).max(0.0),
                sum_t: (self.rounds.sum_t - base.rounds.sum_t).max(0.0),
                sum_hh: (self.rounds.sum_hh - base.rounds.sum_hh).max(0.0),
                sum_ht: (self.rounds.sum_ht - base.rounds.sum_ht).max(0.0),
            };
        }
        out
    }
}

/// Thread-safe [`StatisticsStore`] for the multi-tenant service.
///
/// Two usage patterns, both safe under concurrency:
///
/// * **Merge-on-commit** (the service scheduler's pattern): call
///   [`snapshot`](Self::snapshot) when a query is admitted, let the
///   query learn into its private copy, then
///   [`commit`](Self::commit) the [`StatisticsStore::diff`] against
///   the snapshot when it finishes. Concurrent queries never see each
///   other's in-flight evidence, and committed deltas merge without
///   loss.
/// * **One-shot writers**: the `record_*` methods take the write lock
///   for a single observation.
///
/// A poisoned lock (a panicking writer) is recovered rather than
/// propagated: every recorded quantity is a monotone tally, so the
/// store is never left in a torn state worth discarding.
#[derive(Debug, Default)]
pub struct SharedStatistics {
    inner: RwLock<StatisticsStore>,
}

impl SharedStatistics {
    /// Wrap an existing store (empty via `SharedStatistics::default()`).
    pub fn new(initial: StatisticsStore) -> Self {
        SharedStatistics {
            inner: RwLock::new(initial),
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, StatisticsStore> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, StatisticsStore> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// A consistent copy of the current evidence.
    pub fn snapshot(&self) -> StatisticsStore {
        self.read().clone()
    }

    /// Merge a completed query's learning delta (see
    /// [`StatisticsStore::diff`]) into the shared evidence.
    pub fn commit(&self, delta: &StatisticsStore) {
        self.write().merge(delta);
    }

    /// Unwrap the store, recovering from poisoning.
    pub fn into_inner(self) -> StatisticsStore {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Thread-safe [`StatisticsStore::record_filter`].
    pub fn record_filter(&self, task: &str, seen: usize, passed: usize) {
        self.write().record_filter(task, seen, passed);
    }

    /// Thread-safe [`StatisticsStore::record_join`].
    pub fn record_join(&self, task: &str, pairs: usize, matches: usize) {
        self.write().record_join(task, pairs, matches);
    }

    /// Thread-safe [`StatisticsStore::record_feature`].
    pub fn record_feature(&self, task: &str, kappa: f64, selectivity: f64) {
        self.write().record_feature(task, kappa, selectivity);
    }

    /// Thread-safe [`StatisticsStore::record_sort`].
    pub fn record_sort(&self, dimension: &str, ambiguity: f64) {
        self.write().record_sort(dimension, ambiguity);
    }

    /// Thread-safe [`StatisticsStore::record_epoch`].
    pub fn record_epoch(&self, hits: u64, secs: f64) {
        self.write().record_epoch(hits, secs);
    }

    /// Thread-safe [`StatisticsStore::record_round`].
    pub fn record_round(&self, work_units: f64, secs: f64) {
        self.write().record_round(work_units, secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_store_has_no_estimates() {
        let s = StatisticsStore::new();
        assert!(s.is_empty());
        assert_eq!(s.filter_selectivity("f"), None);
        assert_eq!(s.join_selectivity("j"), None);
        assert!(s.feature("g").is_none());
        assert_eq!(s.sort_ambiguity("d"), None);
        assert_eq!(s.secs_per_hit(), None);
    }

    #[test]
    fn filter_selectivity_accumulates() {
        let mut s = StatisticsStore::new();
        s.observe_filter("f", 10, 2);
        s.observe_filter("f", 10, 4);
        assert_eq!(s.filter_selectivity("f"), Some(0.3));
        assert!(!s.is_empty());
    }

    #[test]
    fn feature_latest_sample_wins() {
        let mut s = StatisticsStore::new();
        s.observe_feature("hair", 0.9, 0.4);
        s.observe_feature("hair", 0.1, 0.5);
        let f = s.feature("hair").unwrap();
        assert_eq!(f.kappa, 0.1);
        assert_eq!(f.selectivity, 0.5);
    }

    #[test]
    fn sort_ambiguity_averages_and_clamps() {
        let mut s = StatisticsStore::new();
        s.observe_sort("area", 0.2);
        s.observe_sort("area", 1.8); // clamped to 1.0
        assert_eq!(s.sort_ambiguity("area"), Some(0.6));
    }

    #[test]
    fn epoch_latency_averages_per_hit() {
        let mut s = StatisticsStore::new();
        s.observe_epoch(0, 100.0); // no HITs: ignored
        s.observe_epoch(10, 200.0);
        s.observe_epoch(10, 400.0);
        assert_eq!(s.secs_per_hit(), Some(30.0));
    }

    #[test]
    fn latency_regression_separates_overhead_from_service() {
        let mut s = StatisticsStore::new();
        // round_secs = 100 + 20·units, exactly.
        s.observe_round(1.0, 120.0);
        s.observe_round(5.0, 200.0);
        s.observe_round(10.0, 300.0);
        let (alpha, beta) = s.latency_params().unwrap();
        assert!((alpha - 100.0).abs() < 1e-6, "alpha={alpha}");
        assert!((beta - 20.0).abs() < 1e-6, "beta={beta}");
    }

    #[test]
    fn latency_uniform_rounds_split_overhead_and_service() {
        let mut s = StatisticsStore::new();
        s.observe_round(4.0, 200.0);
        s.observe_round(4.0, 200.0);
        let (alpha, beta) = s.latency_params().unwrap();
        assert!((alpha - 100.0).abs() < 1e-9);
        assert!((beta - 25.0).abs() < 1e-9);
        assert_eq!(StatisticsStore::new().latency_params(), None);
    }

    #[test]
    fn latency_negative_slope_degrades_to_split() {
        let mut s = StatisticsStore::new();
        // Bigger round finished faster (noise): no negative β leaks.
        s.observe_round(10.0, 100.0);
        s.observe_round(2.0, 300.0);
        let (alpha, beta) = s.latency_params().unwrap();
        assert!(alpha >= 0.0 && beta >= 0.0, "({alpha}, {beta})");
    }

    #[test]
    fn merge_combines_evidence() {
        let mut a = StatisticsStore::new();
        a.observe_filter("f", 10, 5);
        a.observe_join("j", 100, 10);
        a.observe_sort("d", 0.4);
        let mut b = StatisticsStore::new();
        b.observe_filter("f", 10, 1);
        b.observe_feature("g", 0.8, 0.5);
        b.observe_epoch(5, 50.0);
        a.merge(&b);
        assert_eq!(a.filter_selectivity("f"), Some(0.3));
        assert_eq!(a.join_selectivity("j"), Some(0.1));
        assert!(a.feature("g").is_some());
        assert_eq!(a.secs_per_hit(), Some(10.0));
    }

    #[test]
    fn diff_then_merge_round_trips() {
        let mut base = StatisticsStore::new();
        base.record_filter("f", 10, 5);
        base.record_join("j", 100, 10);
        base.record_feature("g", 0.8, 0.5);
        base.record_sort("d", 0.4);
        base.record_epoch(5, 50.0);
        base.record_round(4.0, 200.0);

        let mut grown = base.clone();
        grown.record_filter("f", 10, 1);
        grown.record_filter("f2", 6, 6);
        grown.record_feature("g", 0.2, 0.3); // re-sampled
        grown.record_sort("d", 0.8);
        grown.record_epoch(10, 100.0);
        grown.record_round(8.0, 300.0);

        let delta = grown.diff(&base);
        // The delta carries only the new evidence…
        assert_eq!(delta.filter_selectivity("f"), Some(0.1));
        assert_eq!(delta.filter_selectivity("f2"), Some(1.0));
        assert_eq!(delta.join_selectivity("j"), None);
        assert_eq!(delta.feature("g").unwrap().kappa, 0.2);
        // …and replaying it over the base reconstructs the grown store.
        let mut replayed = base.clone();
        replayed.merge(&delta);
        assert_eq!(
            replayed.filter_selectivity("f"),
            grown.filter_selectivity("f")
        );
        assert_eq!(replayed.sort_ambiguity("d"), grown.sort_ambiguity("d"));
        assert_eq!(replayed.secs_per_hit(), grown.secs_per_hit());
        assert_eq!(replayed.latency_params(), grown.latency_params());
    }

    #[test]
    fn diff_of_unchanged_store_is_empty() {
        let mut base = StatisticsStore::new();
        base.record_filter("f", 10, 5);
        base.record_feature("g", 0.8, 0.5);
        let delta = base.clone().diff(&base);
        assert!(delta.is_empty());
    }

    #[test]
    fn shared_statistics_snapshot_commit_isolation() {
        let shared = SharedStatistics::new(StatisticsStore::new());
        shared.record_filter("f", 10, 5);

        // Two "queries" snapshot the same base and learn privately.
        let base_a = shared.snapshot();
        let base_b = shared.snapshot();
        let mut a = base_a.clone();
        a.record_filter("f", 10, 1);
        let mut b = base_b.clone();
        b.record_filter("f", 20, 8);

        // Neither sees the other before commit.
        assert_eq!(shared.snapshot().filter_selectivity("f"), Some(0.5));
        shared.commit(&a.diff(&base_a));
        shared.commit(&b.diff(&base_b));
        // 10+10+20 seen, 5+1+8 passed — both deltas landed.
        assert_eq!(shared.snapshot().filter_selectivity("f"), Some(0.35));
    }

    #[test]
    fn shared_statistics_concurrent_writers_lose_nothing() {
        use std::sync::Arc;
        let shared = Arc::new(SharedStatistics::default());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    for _ in 0..100 {
                        shared.record_filter("f", 1, 1);
                        shared.record_epoch(1, 2.0);
                    }
                });
            }
        });
        let store = Arc::try_unwrap(shared).unwrap().into_inner();
        assert_eq!(store.filter_selectivity("f"), Some(1.0));
        assert_eq!(store.secs_per_hit(), Some(2.0));
        let delta = store.diff(&StatisticsStore::new());
        assert_eq!(delta.filter_selectivity("f"), Some(1.0));
    }
}
