//! The cost-based crowd optimizer.
//!
//! The paper punts on optimization: "Qurk currently lacks selectivity
//! estimation, so it orders filters and joins as they appear in the
//! query" (§2.5) — yet §3–§5 derive exact HIT-count formulas for every
//! strategy choice. This subsystem closes that loop:
//!
//! * [`stats`] — a [`stats::StatisticsStore`] learning per-task
//!   selectivities, per-feature κ/σ, per-dimension sort ambiguity and
//!   crowd latency from completed runs;
//! * [`cost`] — the paper's HIT/assignment/dollar/latency formulas as
//!   a [`cost::CostModel`];
//! * [`physical`] — [`physical::compile`], lowering logical plans to
//!   [`physical::PhysicalPlan`]s, enumerating alternatives and picking
//!   the cheapest (or reproducing the as-written plan exactly when no
//!   statistics exist);
//! * [`explain`] — EXPLAIN rendering and the per-query
//!   [`explain::PlanReport`] (estimated vs actual).
//!
//! See `docs/optimizer.md` for the formula-to-paper-section map.

pub mod cost;
pub mod explain;
pub mod physical;
pub mod stats;

pub use cost::{CostEstimate, CostModel};
pub use explain::PlanReport;
pub use physical::{compile, CompiledPlan, OptimizeMode, PhysNode, PhysicalPlan, PinSet};
pub use stats::{SharedStatistics, StatisticsStore};
