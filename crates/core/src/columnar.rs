//! Column-major batches: the cache-side layout of a [`Relation`].
//!
//! Machine-side operators (predicate evaluation, sort keys, candidate
//! pre-pruning) touch one or two columns of many rows; the row-major
//! `Vec<Tuple>` layout makes every access chase a per-row heap `Vec`.
//! Each relation therefore also maintains a [`ColumnStore`]: one flat
//! `Vec<Value>` per column, appended in lock-step with the row view.
//! Since [`Value`](crate::Value) is a 16-byte `Copy` type (text is
//! interned), a column of n values is a contiguous 16·n-byte slab that
//! streams through the cache.
//!
//! Operators process columns in fixed-size windows
//! ([`PROCESSING_WINDOW_SIZE`] rows) so a working set of a few columns
//! stays cache-resident even for large relations; [`RelationWindow`]
//! hands out zero-copy `&[Value]` slices per column per window. The
//! row-level [`Tuple`](crate::Tuple) API stays intact as a view, so
//! callers migrate incrementally.
//!
//! [`Relation`]: crate::Relation
// lint:hot-path

use crate::value::Value;

/// Rows per processing window: 1024 rows × 16 B/value keeps a handful
/// of columns comfortably inside L2 while amortizing per-window
/// overhead.
pub const PROCESSING_WINDOW_SIZE: usize = 1024;

/// Column-major storage: `cols[c][r]` is row `r`'s value in column `c`.
/// Append-only, kept in lock-step with the owning relation's row view.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct ColumnStore {
    cols: Vec<Vec<Value>>,
    len: usize,
}

impl ColumnStore {
    pub(crate) fn new(width: usize) -> ColumnStore {
        ColumnStore {
            cols: vec![Vec::new(); width],
            len: 0,
        }
    }

    /// Build directly from pre-validated columns (all the same length).
    pub(crate) fn from_columns(cols: Vec<Vec<Value>>) -> ColumnStore {
        let len = cols.first().map(Vec::len).unwrap_or(0);
        debug_assert!(cols.iter().all(|c| c.len() == len));
        ColumnStore { cols, len }
    }

    pub(crate) fn push_row(&mut self, values: &[Value]) {
        debug_assert_eq!(values.len(), self.cols.len());
        for (col, v) in self.cols.iter_mut().zip(values) {
            col.push(*v);
        }
        self.len += 1;
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn column(&self, idx: usize) -> &[Value] {
        &self.cols[idx]
    }

    #[cfg(test)]
    pub(crate) fn width(&self) -> usize {
        self.cols.len()
    }
}

/// Zero-copy view of one processing window: a contiguous row range
/// with per-column `&[Value]` slices.
#[derive(Clone, Copy)]
pub struct RelationWindow<'a> {
    store: &'a ColumnStore,
    start: usize,
    end: usize,
}

impl<'a> RelationWindow<'a> {
    /// Index (into the whole relation) of this window's first row.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Rows in this window (≤ the window size it was cut with).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// This window's slice of column `idx` — zero-copy into the
    /// column store.
    pub fn column(&self, idx: usize) -> &'a [Value] {
        &self.store.column(idx)[self.start..self.end]
    }
}

/// Iterator over a column store in fixed-size windows.
pub(crate) fn windows(
    store: &ColumnStore,
    size: usize,
) -> impl Iterator<Item = RelationWindow<'_>> {
    let size = size.max(1);
    let n = store.len();
    (0..n.div_ceil(size)).map(move |w| {
        let start = w * size;
        RelationWindow {
            store,
            start,
            end: (start + size).min(n),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(n: usize) -> ColumnStore {
        let mut s = ColumnStore::new(2);
        for i in 0..n {
            s.push_row(&[Value::Int(i as i64), Value::text(format!("r{i}"))]);
        }
        s
    }

    #[test]
    fn lockstep_append_and_column_access() {
        let s = store(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.width(), 2);
        assert_eq!(s.column(0), &[Value::Int(0), Value::Int(1), Value::Int(2)]);
        assert_eq!(s.column(1)[2], Value::text("r2"));
    }

    #[test]
    fn windows_cover_all_rows_without_overlap() {
        let s = store(10);
        let w: Vec<_> = windows(&s, 4).collect();
        assert_eq!(w.len(), 3);
        assert_eq!((w[0].start(), w[0].len()), (0, 4));
        assert_eq!((w[1].start(), w[1].len()), (4, 4));
        assert_eq!((w[2].start(), w[2].len()), (8, 2));
        assert!(!w[2].is_empty());
        let reassembled: Vec<Value> = w.iter().flat_map(|w| w.column(0).iter().copied()).collect();
        assert_eq!(reassembled, s.column(0));
    }

    #[test]
    fn empty_store_yields_no_windows() {
        let s = ColumnStore::new(1);
        assert_eq!(windows(&s, 8).count(), 0);
    }

    #[test]
    fn exact_multiple_window() {
        let s = store(8);
        let w: Vec<_> = windows(&s, 4).collect();
        assert_eq!(w.len(), 2);
        assert_eq!(w[1].len(), 4);
    }

    #[test]
    fn from_columns_matches_push_row() {
        let a = store(5);
        let b = ColumnStore::from_columns(vec![a.column(0).to_vec(), a.column(1).to_vec()]);
        assert_eq!(a, b);
    }
}
