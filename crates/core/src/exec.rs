//! The legacy executor — now a thin shim over [`crate::session`].
//!
//! [`Executor`] predates the [`Session`](crate::session::Session) /
//! [`QueryBuilder`](crate::session::QueryBuilder) API and is kept so
//! existing call sites compile unchanged; it delegates every query to
//! a `Session` borrowing the same marketplace, so both paths produce
//! identical results on the same workload. (One caveat: the session's
//! cache dedupes whole HIT specs, where the old `TaskCache` cached
//! per question — overlapping-but-differently-batched queries re-ask
//! the crowd; exact re-runs stay free.) New code should use `Session`:
//!
//! ```text
//! // old                                   // new
//! let mut ex = Executor::new(&cat, &mut m);   let mut s = Session::builder()
//! ex.config.sort = mode;                          .catalog(&cat).backend(m)
//! ex.query(sql)?                                  .build();
//!                                             s.query(sql).sort(mode).run()?
//! ```
//!
//! `ExecConfig`, `SortMode` and `QueryReport` live in
//! [`crate::session`] and are re-exported here under their historical
//! paths.

use qurk_crowd::Marketplace;

use crate::catalog::Catalog;
use crate::error::Result;
use crate::plan::LogicalPlan;
use crate::relation::Relation;
use crate::session::Session;

pub use crate::session::{ExecConfig, QueryReport, SortMode};

/// Runs queries for one catalog against one marketplace.
#[deprecated(
    since = "0.1.0",
    note = "use session::Session with a CrowdBackend instead"
)]
pub struct Executor<'a> {
    session: Session<'a, &'a mut Marketplace>,
    /// Executor-wide configuration; mutate freely between queries
    /// (the `Session` API does this per query instead).
    pub config: ExecConfig,
}

#[allow(deprecated)]
impl<'a> Executor<'a> {
    pub fn new(catalog: &'a Catalog, market: &'a mut Marketplace) -> Self {
        Executor {
            session: Session::new(catalog, market),
            config: ExecConfig::default(),
        }
    }

    pub fn with_config(mut self, config: ExecConfig) -> Self {
        self.config = config;
        self
    }

    /// Parse, plan and execute a query.
    pub fn query(&mut self, sql: &str) -> Result<Relation> {
        Ok(self.query_report(sql)?.relation)
    }

    /// [`Self::query`] plus cost accounting and the plan explanation.
    pub fn query_report(&mut self, sql: &str) -> Result<QueryReport> {
        self.session.execute(sql, &self.config, None)
    }

    /// Execute a logical plan.
    pub fn run_plan(&mut self, plan: &LogicalPlan) -> Result<Relation> {
        self.session.execute_plan(plan, &self.config, None)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::error::QurkError;
    use crate::relation::Relation;
    use crate::schema::{Schema, ValueType};
    use crate::value::Value;
    use qurk_crowd::truth::{DimensionParams, PredicateTruth};
    use qurk_crowd::{CrowdConfig, EntityId, GroundTruth};

    /// A toy world: table `people` with items that have an `isTall`
    /// predicate, a `height` dimension, and entities for joining.
    fn setup() -> (Catalog, Marketplace) {
        let mut gt = GroundTruth::new();
        gt.define_dimension("height", DimensionParams::crisp(0.02));
        let items = gt.new_items(10);
        let photos = gt.new_items(10);
        for (i, &it) in items.iter().enumerate() {
            gt.set_predicate(
                it,
                "isTall",
                PredicateTruth {
                    value: i >= 5,
                    error_rate: 0.03,
                },
            );
            gt.set_score(it, "height", i as f64);
            gt.set_entity(it, EntityId(i as u64));
            gt.set_entity(photos[i], EntityId(i as u64));
        }
        let market = Marketplace::new(&CrowdConfig::default(), gt);

        let mut catalog = Catalog::new();
        let mut rel = Relation::new(Schema::new(&[
            ("id", ValueType::Int),
            ("name", ValueType::Text),
            ("img", ValueType::Item),
        ]));
        let mut prel = Relation::new(Schema::new(&[
            ("pid", ValueType::Int),
            ("img", ValueType::Item),
        ]));
        for (i, &it) in items.iter().enumerate() {
            rel.push(vec![
                Value::Int(i as i64),
                Value::text(format!("p{i}")),
                Value::Item(it),
            ])
            .unwrap();
            prel.push(vec![Value::Int(i as i64), Value::Item(photos[i])])
                .unwrap();
        }
        catalog.register_table("people", rel);
        catalog.register_table("photos", prel);
        catalog
            .define_tasks(
                r#"TASK isTall(field) TYPE Filter:
                    Prompt: "<img src='%s'> Tall?", tuple[field]
                   TASK samePerson(a, b) TYPE EquiJoin:
                    LeftNormal: "<img src='%s'>", tuple1[a]
                    RightNormal: "<img src='%s'>", tuple2[b]
                    Combiner: QualityAdjust
                   TASK byHeight(field) TYPE Rank:
                    SingularName: "person"
                    PluralName: "people"
                    OrderDimensionName: "height"
                    LeastName: "shortest"
                    MostName: "tallest"
                    Html: "<img src='%s'>", tuple[field]
                "#,
            )
            .unwrap();
        (catalog, market)
    }

    #[test]
    fn filter_query_end_to_end() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex
            .query("SELECT p.name FROM people AS p WHERE isTall(p.img)")
            .unwrap();
        assert_eq!(rel.schema().fields()[0].name, "p.name");
        let names: Vec<&str> = rel.rows().iter().map(|r| r[0].as_text().unwrap()).collect();
        // Mostly the tall half.
        let tall = names
            .iter()
            .filter(|n| n[1..].parse::<usize>().unwrap() >= 5)
            .count();
        assert!(tall >= names.len() - 1, "names={names:?}");
        assert!(names.len() >= 4);
    }

    #[test]
    fn machine_predicate_costs_no_hits() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let report = ex
            .query_report("SELECT p.name FROM people AS p WHERE p.id < 3")
            .unwrap();
        assert_eq!(report.relation.len(), 3);
        assert_eq!(report.hits_posted, 0);
        assert_eq!(report.cost_dollars, 0.0);
    }

    #[test]
    fn machine_filter_runs_before_crowd_filter() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let report = ex
            .query_report("SELECT p.name FROM people AS p WHERE isTall(p.img) AND p.id >= 8")
            .unwrap();
        // Only 2 rows survive the machine filter, so the crowd sees at
        // most one HIT (batch 5).
        assert_eq!(report.hits_posted, 1);
        assert!(report.relation.len() <= 2);
    }

    #[test]
    fn join_query_end_to_end() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex
            .query(
                "SELECT p.name, ph.pid FROM people p JOIN photos ph \
                 ON samePerson(p.img, ph.img)",
            )
            .unwrap();
        // Most of the 10 true matches, few errors.
        assert!(rel.len() >= 8, "matches={}", rel.len());
        let correct = rel
            .rows()
            .iter()
            .filter(|r| {
                r[0].as_text().unwrap()[1..].parse::<i64>().unwrap() == r[1].as_int().unwrap()
            })
            .count();
        assert!(correct >= rel.len() - 1);
    }

    #[test]
    fn order_by_crowd_rank() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex
            .query("SELECT p.id FROM people p ORDER BY byHeight(p.img) DESC")
            .unwrap();
        let ids: Vec<i64> = rel.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        // DESC: tallest first.
        let tau =
            qurk_metrics::tau_between_orders(&ids, &(0..10).rev().collect::<Vec<i64>>()).unwrap();
        assert!(tau > 0.9, "tau={tau}, ids={ids:?}");
    }

    #[test]
    fn order_by_asc_reverses() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex
            .query("SELECT p.id FROM people p ORDER BY byHeight(p.img) LIMIT 3")
            .unwrap();
        // ASC: shortest first; limit applies after sort.
        assert_eq!(rel.len(), 3);
        let ids: Vec<i64> = rel.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert!(ids.iter().all(|&i| i <= 4), "ids={ids:?}");
    }

    #[test]
    fn order_by_machine_column() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex
            .query("SELECT p.id FROM people p ORDER BY p.id DESC LIMIT 2")
            .unwrap();
        let ids: Vec<i64> = rel.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![9, 8]);
    }

    #[test]
    fn select_star() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex.query("SELECT * FROM people LIMIT 1").unwrap();
        assert_eq!(rel.schema().len(), 3);
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn unknown_column_errors() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        assert!(matches!(
            ex.query("SELECT nope FROM people"),
            Err(QurkError::UnknownColumn(_))
        ));
    }

    #[test]
    fn report_accounts_costs() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let report = ex
            .query_report("SELECT p.name FROM people AS p WHERE isTall(p.img)")
            .unwrap();
        // 10 items / batch 5 = 2 HITs x 5 assignments x $0.015.
        assert_eq!(report.hits_posted, 2);
        assert!((report.cost_dollars - 2.0 * 5.0 * 0.015).abs() < 1e-9);
        assert!(report.explain.contains("CrowdFilter"));
    }

    #[test]
    fn or_groups_execute() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex
            .query("SELECT p.id FROM people p WHERE isTall(p.img) OR p.id < 2")
            .unwrap();
        let ids: Vec<i64> = rel.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert!(ids.contains(&0) && ids.contains(&1), "ids={ids:?}");
        assert!(ids.iter().filter(|&&i| i >= 5).count() >= 4);
    }

    #[test]
    fn executor_and_session_agree() {
        // The deprecated path must produce the same rows as Session on
        // the same seeded world.
        let sql = "SELECT p.id FROM people p WHERE isTall(p.img) ORDER BY p.id";
        let (catalog, mut market) = setup();
        let via_executor = Executor::new(&catalog, &mut market).query(sql).unwrap();
        let (catalog2, market2) = setup();
        let via_session = Session::new(&catalog2, market2).run(sql).unwrap();
        assert_eq!(via_executor, via_session);
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod edge_tests {
    use super::*;
    use crate::schema::{Schema, ValueType};
    use crate::value::Value;
    use qurk_crowd::truth::PredicateTruth;
    use qurk_crowd::{CrowdConfig, GroundTruth};

    fn empty_world() -> (Catalog, Marketplace) {
        let gt = GroundTruth::new();
        let market = Marketplace::new(&CrowdConfig::default(), gt);
        let mut catalog = Catalog::new();
        catalog.register_table(
            "t",
            Relation::new(Schema::new(&[
                ("id", ValueType::Int),
                ("img", ValueType::Item),
            ])),
        );
        catalog
            .define_tasks(
                r#"TASK p(field) TYPE Filter:
                    Prompt: "%s?", tuple[field]
                   TASK j(a, b) TYPE EquiJoin:
                    Combiner: MajorityVote
                   TASK r(field) TYPE Rank:
                    OrderDimensionName: "d"
                "#,
            )
            .unwrap();
        (catalog, market)
    }

    #[test]
    fn empty_table_flows_through_every_operator() {
        let (catalog, mut market) = empty_world();
        let mut ex = Executor::new(&catalog, &mut market);
        for sql in [
            "SELECT id FROM t",
            "SELECT id FROM t WHERE p(t.img)",
            "SELECT id FROM t WHERE id < 5 AND p(t.img)",
            "SELECT t.id FROM t JOIN t AS u ON j(t.img, u.img)",
            "SELECT id FROM t ORDER BY r(t.img) LIMIT 3",
            "SELECT * FROM t LIMIT 0",
        ] {
            let rel = ex.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            assert_eq!(rel.len(), 0, "{sql}");
        }
        drop(ex);
        assert_eq!(market.hits_posted(), 0, "empty inputs must not post HITs");
    }

    #[test]
    fn null_items_fail_crowd_filters() {
        let mut gt = GroundTruth::new();
        let item = gt.new_item();
        gt.set_predicate(
            item,
            "p",
            PredicateTruth {
                value: true,
                error_rate: 0.02,
            },
        );
        let mut catalog = Catalog::new();
        let mut rel = Relation::new(Schema::new(&[
            ("id", ValueType::Int),
            ("img", ValueType::Item),
        ]));
        rel.push(vec![Value::Int(0), Value::Item(item)]).unwrap();
        rel.push(vec![Value::Int(1), Value::Null]).unwrap();
        catalog.register_table("t", rel);
        catalog
            .define_tasks("TASK p(field) TYPE Filter:\n Prompt: \"%s?\", tuple[field]")
            .unwrap();
        let mut market = Marketplace::new(&CrowdConfig::default(), gt);
        let mut ex = Executor::new(&catalog, &mut market);
        let out = ex.query("SELECT id FROM t WHERE p(t.img)").unwrap();
        let ids: Vec<i64> = out.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert!(!ids.contains(&1), "NULL-item row must not pass: {ids:?}");
    }

    #[test]
    fn limit_zero_and_oversized_limit() {
        let (catalog, mut market) = empty_world();
        let mut ex = Executor::new(&catalog, &mut market);
        assert_eq!(ex.query("SELECT id FROM t LIMIT 0").unwrap().len(), 0);
        assert_eq!(ex.query("SELECT id FROM t LIMIT 999").unwrap().len(), 0);
    }

    #[test]
    fn self_join_uses_aliases() {
        // Regression: both sides of a self-join resolve their own
        // qualified columns.
        let mut gt = GroundTruth::new();
        let a = gt.new_item();
        let b = gt.new_item();
        gt.set_entity(a, qurk_crowd::EntityId(1));
        gt.set_entity(b, qurk_crowd::EntityId(1));
        let mut catalog = Catalog::new();
        let mut rel = Relation::new(Schema::new(&[
            ("id", ValueType::Int),
            ("img", ValueType::Item),
        ]));
        rel.push(vec![Value::Int(0), Value::Item(a)]).unwrap();
        rel.push(vec![Value::Int(1), Value::Item(b)]).unwrap();
        catalog.register_table("t", rel);
        catalog
            .define_tasks("TASK j(a, b) TYPE EquiJoin:\n Combiner: MajorityVote")
            .unwrap();
        let mut market = Marketplace::new(&CrowdConfig::default(), gt);
        let mut ex = Executor::new(&catalog, &mut market);
        let out = ex
            .query("SELECT x.id, y.id FROM t AS x JOIN t AS y ON j(x.img, y.img)")
            .unwrap();
        // Items a and b depict the same entity: all 4 crossings match.
        assert!(out.len() >= 3, "self-join found {} pairs", out.len());
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod max_min_tests {
    use super::*;
    use crate::schema::{Schema, ValueType};
    use crate::value::Value;
    use qurk_crowd::truth::DimensionParams;
    use qurk_crowd::{CrowdConfig, GroundTruth};

    fn world(n: usize) -> (Catalog, Marketplace) {
        let mut gt = GroundTruth::new();
        gt.define_dimension("d", DimensionParams::crisp(0.02));
        let items = gt.new_items(n);
        let mut rel = Relation::new(Schema::new(&[
            ("id", ValueType::Int),
            ("img", ValueType::Item),
        ]));
        for (i, &it) in items.iter().enumerate() {
            gt.set_score(it, "d", i as f64);
            rel.push(vec![Value::Int(i as i64), Value::Item(it)])
                .unwrap();
        }
        let mut catalog = Catalog::new();
        catalog.register_table("t", rel);
        catalog
            .define_tasks("TASK byD(field) TYPE Rank:\n OrderDimensionName: \"d\"")
            .unwrap();
        (catalog, Marketplace::new(&CrowdConfig::default(), gt))
    }

    #[test]
    fn limit_one_desc_runs_max_extraction() {
        let (catalog, mut market) = world(20);
        let mut ex = Executor::new(&catalog, &mut market);
        let report = ex
            .query_report("SELECT id FROM t ORDER BY byD(t.img) DESC LIMIT 1")
            .unwrap();
        assert_eq!(report.relation.len(), 1);
        assert_eq!(report.relation.rows()[0][0], Value::Int(19));
        // Tournament over 20 items in batches of 5: 4 + 1 = 5 HITs —
        // far below the ~19-group full sort.
        assert!(report.hits_posted <= 6, "hits={}", report.hits_posted);
    }

    #[test]
    fn limit_one_asc_runs_min_extraction() {
        let (catalog, mut market) = world(20);
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex
            .query("SELECT id FROM t ORDER BY byD(t.img) LIMIT 1")
            .unwrap();
        assert_eq!(rel.rows()[0][0], Value::Int(0));
    }

    #[test]
    fn limit_two_still_does_full_sort() {
        let (catalog, mut market) = world(10);
        let mut ex = Executor::new(&catalog, &mut market);
        let report = ex
            .query_report("SELECT id FROM t ORDER BY byD(t.img) DESC LIMIT 2")
            .unwrap();
        assert_eq!(report.relation.len(), 2);
        let ids: Vec<i64> = report
            .relation
            .rows()
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![9, 8]);
    }

    #[test]
    fn limit_one_on_empty_is_empty() {
        let (catalog, mut market) = world(20);
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex
            .query("SELECT id FROM t WHERE id < 0 ORDER BY byD(t.img) LIMIT 1")
            .unwrap();
        assert!(rel.is_empty());
    }
}

#[cfg(test)]
mod ban_tests {
    use super::*;
    use crate::ops::join::{identify_spammers, JoinOp};
    use crate::schema::Schema;
    use qurk_crowd::{CrowdConfig, EntityId, GroundTruth};

    /// §6: QA spam scores identify bad workers; banning them improves a
    /// *subsequent* run on the same marketplace.
    #[test]
    fn qa_identifies_spammers_and_bans_stick() {
        let mut gt = GroundTruth::new();
        let left = gt.new_items(12);
        let right = gt.new_items(12);
        for i in 0..12 {
            gt.set_entity(left[i], EntityId(i as u64));
            gt.set_entity(right[i], EntityId(i as u64));
        }
        let mut cfg = CrowdConfig::default().with_seed(99);
        cfg.workers.spammer_fraction = 0.25;
        let mut market = Marketplace::new(&cfg, gt);
        let op = JoinOp::default();
        let out = op.run(&mut market, &left, &right, None).unwrap();
        let spammers = identify_spammers(&out.pair_votes, 0.9);
        assert!(!spammers.is_empty(), "should flag some spam workers");
        // Flagged workers are predominantly actual spammers.
        let truly_spam = spammers
            .iter()
            .filter(|w| {
                matches!(
                    market.pool().get(**w).archetype,
                    qurk_crowd::WorkerArchetype::Spammer(_)
                )
            })
            .count();
        assert!(
            truly_spam * 3 >= spammers.len() * 2,
            "{truly_spam}/{} flagged are real spammers",
            spammers.len()
        );
        market.ban_workers(spammers.iter().copied());
        assert_eq!(market.banned_count(), spammers.len());

        // Second run: banned workers contribute no votes.
        let out2 = op.run(&mut market, &left, &right, None).unwrap();
        let banned: std::collections::HashSet<_> = spammers.into_iter().collect();
        for votes in out2.pair_votes.values() {
            for (w, _) in votes {
                assert!(!banned.contains(w), "banned worker {w:?} still answering");
            }
        }
        let _ = Schema::default();
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod combining_tests {
    use super::*;
    use crate::schema::{Schema, ValueType};
    use crate::value::Value;
    use qurk_crowd::truth::PredicateTruth;
    use qurk_crowd::{CrowdConfig, GroundTruth};

    fn world() -> (Catalog, Marketplace) {
        let mut gt = GroundTruth::new();
        let items = gt.new_items(20);
        let mut rel = Relation::new(Schema::new(&[
            ("id", ValueType::Int),
            ("img", ValueType::Item),
        ]));
        for (i, &it) in items.iter().enumerate() {
            gt.set_predicate(
                it,
                "a",
                PredicateTruth {
                    value: i % 2 == 0,
                    error_rate: 0.03,
                },
            );
            gt.set_predicate(
                it,
                "b",
                PredicateTruth {
                    value: i % 3 == 0,
                    error_rate: 0.03,
                },
            );
            rel.push(vec![Value::Int(i as i64), Value::Item(it)])
                .unwrap();
        }
        let mut catalog = Catalog::new();
        catalog.register_table("t", rel);
        catalog
            .define_tasks(
                "TASK a(field) TYPE Filter:\n Prompt: \"%s?\", tuple[field]\n\
                 TASK b(field) TYPE Filter:\n Prompt: \"%s?\", tuple[field]",
            )
            .unwrap();
        (catalog, Marketplace::new(&CrowdConfig::default(), gt))
    }

    /// §2.6 footnote 2: combining asks more questions (the second
    /// filter sees tuples the first would have discarded) but posts
    /// fewer HITs; serial execution posts more HITs but asks less.
    #[test]
    fn combining_cuts_hits_at_equal_answers() {
        let (catalog, mut market) = world();
        let mut ex = Executor::new(&catalog, &mut market);
        let serial = ex
            .query_report("SELECT id FROM t WHERE a(t.img) AND b(t.img)")
            .unwrap();
        let (catalog, mut market) = world();
        let mut ex = Executor::new(&catalog, &mut market);
        ex.config.combine_conjunct_filters = true;
        let combined = ex
            .query_report("SELECT id FROM t WHERE a(t.img) AND b(t.img)")
            .unwrap();
        // Serial: 4 HITs for `a` + ~2 for survivors of `a`.
        // Combined: 4 HITs carrying both questions.
        assert!(
            combined.hits_posted < serial.hits_posted,
            "combined={} serial={}",
            combined.hits_posted,
            serial.hits_posted
        );
        // Same survivors (ids divisible by 6, modulo crowd noise).
        let ids = |r: &Relation| -> Vec<i64> {
            r.rows().iter().map(|t| t[0].as_int().unwrap()).collect()
        };
        let mut s = ids(&serial.relation);
        let mut c = ids(&combined.relation);
        s.sort_unstable();
        c.sort_unstable();
        for want in [0i64, 6, 12, 18] {
            assert!(c.contains(&want), "combined missing {want}: {c:?}");
        }
        assert!(
            s.len().abs_diff(c.len()) <= 1,
            "serial {s:?} combined {c:?}"
        );
    }
}
