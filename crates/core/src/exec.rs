//! The executor: runs logical plans against the crowd marketplace.

use std::collections::HashMap;

use qurk_crowd::{ItemId, Marketplace};

use crate::catalog::Catalog;
use crate::error::{QurkError, Result};
use crate::hit::cache::TaskCache;
use crate::lang::ast::{
    CmpOp, Expr, Literal, OrderExpr, PossiblyClause, Predicate, SelectItem, UdfCall,
};
use crate::lang::parser::parse_query;
use crate::ops::filter::FilterOp;
use crate::ops::generative::GenerativeOp;
use crate::ops::join::feature_filter::{FeatureFilter, FeatureFilterConfig, FeatureSpec};
use crate::ops::join::JoinOp;
use crate::ops::sort::{CompareSort, HybridSort, RateSort};
use crate::plan::{plan_query, LogicalPlan};
use crate::relation::Relation;
use crate::schema::ValueType;
use crate::task::TaskType;
use crate::tuple::Tuple;
use crate::value::Value;

/// Which sort implementation ORDER BY uses (§4.1).
#[derive(Debug, Clone)]
pub enum SortMode {
    Compare(CompareSort),
    Rate(RateSort),
    /// Hybrid with a fixed comparison budget (§4.1.3: "the user can
    /// control the resulting accuracy and cost by specifying the
    /// number of iterations").
    Hybrid(HybridSort, usize),
}

impl Default for SortMode {
    fn default() -> Self {
        SortMode::Compare(CompareSort::default())
    }
}

/// Executor-wide configuration.
#[derive(Debug, Clone, Default)]
pub struct ExecConfig {
    pub filter: FilterOp,
    pub join: JoinOp,
    pub feature_filter: FeatureFilterConfig,
    pub sort: SortMode,
    /// §2.6 *combining*: evaluate conjunctive WHERE filters in one HIT
    /// per tuple instead of serially. Footnote 2: this does more
    /// "work" (tuples the first filter would discard still reach the
    /// second) but cuts the total HIT count whenever the first filter
    /// passes anything.
    pub combine_conjunct_filters: bool,
}

/// Per-query execution report.
#[derive(Debug, Clone)]
pub struct QueryReport {
    pub relation: Relation,
    /// HITs posted while executing this query.
    pub hits_posted: usize,
    /// Dollars spent on this query (assignments × price).
    pub cost_dollars: f64,
    /// EXPLAIN text of the executed plan.
    pub explain: String,
}

/// Runs queries for one catalog against one marketplace.
pub struct Executor<'a> {
    catalog: &'a Catalog,
    market: &'a mut Marketplace,
    pub config: ExecConfig,
    pub cache: TaskCache,
}

impl<'a> Executor<'a> {
    pub fn new(catalog: &'a Catalog, market: &'a mut Marketplace) -> Self {
        Executor {
            catalog,
            market,
            config: ExecConfig::default(),
            cache: TaskCache::new(),
        }
    }

    pub fn with_config(mut self, config: ExecConfig) -> Self {
        self.config = config;
        self
    }

    /// Parse, plan and execute a query.
    pub fn query(&mut self, sql: &str) -> Result<Relation> {
        Ok(self.query_report(sql)?.relation)
    }

    /// [`Self::query`] plus cost accounting and the plan explanation.
    pub fn query_report(&mut self, sql: &str) -> Result<QueryReport> {
        let parsed = parse_query(sql)?;
        let plan = plan_query(&parsed, self.catalog)?;
        let hits_before = self.market.hits_posted();
        let spend_before = self.market.ledger.total();
        let relation = self.run_plan(&plan)?;
        Ok(QueryReport {
            relation,
            hits_posted: self.market.hits_posted() - hits_before,
            cost_dollars: self.market.ledger.total() - spend_before,
            explain: plan.explain(),
        })
    }

    /// Execute a logical plan.
    pub fn run_plan(&mut self, plan: &LogicalPlan) -> Result<Relation> {
        match plan {
            LogicalPlan::Scan { table, alias } => {
                Ok(self.catalog.table(table)?.clone().qualified(alias))
            }
            LogicalPlan::MachineFilter { input, predicates } => {
                let rel = self.run_plan(input)?;
                self.machine_filter(rel, predicates)
            }
            LogicalPlan::CrowdFilter { input, conjuncts } => {
                let mut rel = self.run_plan(input)?;
                if self.config.combine_conjunct_filters && conjuncts.len() > 1 {
                    rel = self.crowd_filter_combined(rel, conjuncts)?;
                } else {
                    // §2.5: conjuncts issue serially by default.
                    for call in conjuncts {
                        rel = self.crowd_filter(rel, call)?;
                    }
                }
                Ok(rel)
            }
            LogicalPlan::CrowdFilterOr { input, groups } => {
                let rel = self.run_plan(input)?;
                self.crowd_filter_or(rel, groups)
            }
            LogicalPlan::Join {
                left,
                right,
                clause,
            } => {
                let l = self.run_plan(left)?;
                let r = self.run_plan(right)?;
                self.crowd_join(l, r, clause)
            }
            LogicalPlan::OrderBy { input, keys } => {
                let rel = self.run_plan(input)?;
                self.order_by(rel, keys)
            }
            LogicalPlan::Limit { input, n } => {
                // §2.3: "For MAX/MIN, we use an interface that extracts
                // the best element from a batch at a time" — LIMIT 1
                // over a single crowd sort key runs the tournament
                // extraction instead of a full O(N²) sort.
                if *n == 1 {
                    if let LogicalPlan::OrderBy {
                        input: sort_input,
                        keys,
                    } = input.as_ref()
                    {
                        if let [OrderExpr {
                            expr: Expr::Udf(call),
                            desc,
                        }] = keys.as_slice()
                        {
                            let rel = self.run_plan(sort_input)?;
                            return self.extract_extreme(rel, call, *desc);
                        }
                    }
                }
                let rel = self.run_plan(input)?;
                let mut out = Relation::new(rel.schema().clone());
                for row in rel.rows().iter().take(*n) {
                    out.push_unchecked(row.clone());
                }
                Ok(out)
            }
            LogicalPlan::Project { input, items } => {
                let rel = self.run_plan(input)?;
                self.project(rel, items)
            }
        }
    }

    // ---------------- helpers ----------------

    fn eval_expr(&self, rel: &Relation, row: &Tuple, e: &Expr) -> Result<Value> {
        match e {
            Expr::Column(name) => row
                .field(rel.schema(), name)
                .cloned()
                .ok_or_else(|| QurkError::UnknownColumn(name.clone())),
            Expr::Literal(Literal::Number(n)) => {
                if n.fract() == 0.0 {
                    Ok(Value::Int(*n as i64))
                } else {
                    Ok(Value::Float(*n))
                }
            }
            Expr::Literal(Literal::Str(s)) => Ok(Value::text(s.clone())),
            Expr::Udf(_) => Err(QurkError::Other(
                "UDF calls cannot be evaluated by machine".into(),
            )),
        }
    }

    fn machine_filter(&self, rel: Relation, predicates: &[Predicate]) -> Result<Relation> {
        let mut out = Relation::new(rel.schema().clone());
        'rows: for row in rel.rows() {
            for p in predicates {
                let Predicate::Compare { left, op, right } = p else {
                    return Err(QurkError::Other(
                        "machine filter received a crowd predicate".into(),
                    ));
                };
                let l = self.eval_expr(&rel, row, left)?;
                let r = self.eval_expr(&rel, row, right)?;
                match l.sql_cmp(&r) {
                    Some(ord) if op.eval(ord) => {}
                    _ => continue 'rows, // false or NULL
                }
            }
            out.push_unchecked(row.clone());
        }
        Ok(out)
    }

    /// Resolve a UDF argument to an Item-typed column index.
    fn resolve_item_col(&self, rel: &Relation, e: &Expr) -> Result<usize> {
        let Expr::Column(name) = e else {
            return Err(QurkError::Other(format!(
                "crowd UDF argument must be a column, got {e:?}"
            )));
        };
        if let Some(i) = rel.schema().resolve(name) {
            if rel.schema().fields()[i].ty == ValueType::Item {
                return Ok(i);
            }
        }
        // Whole-tuple reference (`isFemale(c)`): the single Item column
        // under that alias.
        let prefix = format!("{name}.");
        let candidates: Vec<usize> = rel
            .schema()
            .fields()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.ty == ValueType::Item && f.name.starts_with(&prefix))
            .map(|(i, _)| i)
            .collect();
        if candidates.len() == 1 {
            Ok(candidates[0])
        } else {
            Err(QurkError::UnknownColumn(name.clone()))
        }
    }

    fn crowd_filter(&mut self, rel: Relation, call: &UdfCall) -> Result<Relation> {
        let task = self.catalog.task(&call.name)?;
        if task.ty != TaskType::Filter {
            return Err(QurkError::TaskTypeMismatch {
                task: call.name.clone(),
                expected: "Filter",
                found: task.ty.name(),
            });
        }
        let arg = call
            .args
            .first()
            .ok_or_else(|| QurkError::Other(format!("filter {} needs an argument", call.name)))?;
        let col = self.resolve_item_col(&rel, arg)?;
        // Rows with NULL items cannot be asked about and fail the
        // filter.
        let mut items = Vec::new();
        let mut item_rows = Vec::new();
        for (ri, row) in rel.rows().iter().enumerate() {
            if let Some(item) = row[col].as_item() {
                items.push(item);
                item_rows.push(ri);
            }
        }
        let op = FilterOp {
            combiner: task.combiner,
            ..self.config.filter.clone()
        };
        let mask = op.run(self.market, &mut self.cache, task.oracle_key(), &items)?;
        let mut out = Relation::new(rel.schema().clone());
        for (k, &ri) in item_rows.iter().enumerate() {
            if mask[k] {
                out.push_unchecked(rel.rows()[ri].clone());
            }
        }
        Ok(out)
    }

    /// §2.6 combining: all conjunct filters of a tuple in one HIT.
    fn crowd_filter_combined(&mut self, rel: Relation, conjuncts: &[UdfCall]) -> Result<Relation> {
        // Resolve every task and argument column up front; all
        // conjuncts must address the same Item column set per row.
        let mut predicates: Vec<&str> = Vec::with_capacity(conjuncts.len());
        let mut cols: Vec<usize> = Vec::with_capacity(conjuncts.len());
        for call in conjuncts {
            let task = self.catalog.task(&call.name)?;
            if task.ty != TaskType::Filter {
                return Err(QurkError::TaskTypeMismatch {
                    task: call.name.clone(),
                    expected: "Filter",
                    found: task.ty.name(),
                });
            }
            let arg = call.args.first().ok_or_else(|| {
                QurkError::Other(format!("filter {} needs an argument", call.name))
            })?;
            cols.push(self.resolve_item_col(&rel, arg)?);
            predicates.push(task.oracle_key());
        }
        // Combining requires one shared item per tuple (the paper
        // combines tasks over "the same tuple"); fall back to the
        // first column's item.
        let col = cols[0];
        let mut items = Vec::new();
        let mut item_rows = Vec::new();
        for (ri, row) in rel.rows().iter().enumerate() {
            if let Some(item) = row[col].as_item() {
                items.push(item);
                item_rows.push(ri);
            }
        }
        let op = FilterOp {
            ..self.config.filter.clone()
        };
        let masks = op.run_combined(self.market, &mut self.cache, &predicates, &items)?;
        let mut out = Relation::new(rel.schema().clone());
        for (k, &ri) in item_rows.iter().enumerate() {
            if masks[k].iter().all(|&b| b) {
                out.push_unchecked(rel.rows()[ri].clone());
            }
        }
        Ok(out)
    }

    fn crowd_filter_or(&mut self, rel: Relation, groups: &[Vec<Predicate>]) -> Result<Relation> {
        // §2.5: disjuncts are issued in parallel; each group's verdict
        // is the AND of its predicates, a row passes if any group does.
        let mut keep = vec![false; rel.len()];
        for group in groups {
            let mut group_mask = vec![true; rel.len()];
            for p in group {
                match p {
                    Predicate::Compare { left, op, right } => {
                        for (ri, row) in rel.rows().iter().enumerate() {
                            if group_mask[ri] {
                                let l = self.eval_expr(&rel, row, left)?;
                                let r = self.eval_expr(&rel, row, right)?;
                                group_mask[ri] = matches!(
                                    l.sql_cmp(&r),
                                    Some(ord) if op.eval(ord)
                                );
                            }
                        }
                    }
                    Predicate::Udf(call) => {
                        let task = self.catalog.task(&call.name)?;
                        let arg = call.args.first().ok_or_else(|| {
                            QurkError::Other(format!("filter {} needs an argument", call.name))
                        })?;
                        let col = self.resolve_item_col(&rel, arg)?;
                        let mut items = Vec::new();
                        let mut rows = Vec::new();
                        for (ri, row) in rel.rows().iter().enumerate() {
                            if group_mask[ri] {
                                match row[col].as_item() {
                                    Some(it) => {
                                        items.push(it);
                                        rows.push(ri);
                                    }
                                    None => group_mask[ri] = false,
                                }
                            }
                        }
                        let op = FilterOp {
                            combiner: task.combiner,
                            ..self.config.filter.clone()
                        };
                        let mask =
                            op.run(self.market, &mut self.cache, task.oracle_key(), &items)?;
                        for (k, &ri) in rows.iter().enumerate() {
                            group_mask[ri] = mask[k];
                        }
                    }
                }
            }
            for (ri, &g) in group_mask.iter().enumerate() {
                keep[ri] = keep[ri] || g;
            }
        }
        let mut out = Relation::new(rel.schema().clone());
        for (ri, row) in rel.rows().iter().enumerate() {
            if keep[ri] {
                out.push_unchecked(row.clone());
            }
        }
        Ok(out)
    }

    fn crowd_join(
        &mut self,
        left: Relation,
        right: Relation,
        clause: &crate::lang::ast::JoinClause,
    ) -> Result<Relation> {
        let join_task = self.catalog.task(&clause.on.name)?;
        if join_task.ty != TaskType::EquiJoin {
            return Err(QurkError::TaskTypeMismatch {
                task: clause.on.name.clone(),
                expected: "EquiJoin",
                found: join_task.ty.name(),
            });
        }
        if clause.on.args.len() != 2 {
            return Err(QurkError::Other(format!(
                "join predicate {} needs two arguments",
                clause.on.name
            )));
        }
        // Which argument refers to which side?
        let (lcol, rcol) = match (
            self.resolve_item_col(&left, &clause.on.args[0]),
            self.resolve_item_col(&right, &clause.on.args[1]),
        ) {
            (Ok(l), Ok(r)) => (l, r),
            _ => {
                // Swapped argument order.
                let l = self.resolve_item_col(&left, &clause.on.args[1])?;
                let r = self.resolve_item_col(&right, &clause.on.args[0])?;
                (l, r)
            }
        };

        // Literal POSSIBLY clauses prefilter one side (the §5 movie
        // query's numInScene); equality clauses drive pairwise feature
        // filtering.
        let mut left_rel = left;
        let mut right_rel = right;
        let mut eq_specs: Vec<FeatureSpec> = Vec::new();
        for p in &clause.possibly {
            match p {
                PossiblyClause::FeatureLit { call, op, value } => {
                    let (is_left, moved) = {
                        let arg = call.args.first().ok_or_else(|| {
                            QurkError::Other("feature call needs an argument".into())
                        })?;
                        if let Ok(col) = self.resolve_item_col(&left_rel, arg) {
                            (
                                true,
                                self.prefilter_literal(&left_rel, col, call, *op, value)?,
                            )
                        } else {
                            let col = self.resolve_item_col(&right_rel, arg)?;
                            (
                                false,
                                self.prefilter_literal(&right_rel, col, call, *op, value)?,
                            )
                        }
                    };
                    if is_left {
                        left_rel = moved;
                    } else {
                        right_rel = moved;
                    }
                }
                PossiblyClause::FeatureEq {
                    left: lc,
                    right: rc,
                } => {
                    let task = self.catalog.task(&lc.name)?;
                    if rc.name != lc.name {
                        return Err(QurkError::Other(format!(
                            "POSSIBLY compares different features: {} vs {}",
                            lc.name, rc.name
                        )));
                    }
                    let (opts, _) = task.feature_options().ok_or_else(|| {
                        QurkError::Other(format!(
                            "feature task {} must have a Radio response",
                            lc.name
                        ))
                    })?;
                    eq_specs.push(FeatureSpec {
                        name: task.oracle_key().to_owned(),
                        num_options: opts.len(),
                    });
                }
            }
        }

        let collect_items = |rel: &Relation, col: usize| -> Vec<ItemId> {
            rel.rows()
                .iter()
                .map(|row| row[col].as_item().unwrap_or(ItemId(u64::MAX)))
                .collect()
        };
        let left_items = collect_items(&left_rel, lcol);
        let right_items = collect_items(&right_rel, rcol);

        let candidates = if eq_specs.is_empty() {
            None
        } else {
            let ff = FeatureFilter::new(self.config.feature_filter.clone());
            let outcome = ff.run(self.market, &eq_specs, &left_items, &right_items)?;
            Some(outcome.candidates)
        };

        let op = JoinOp {
            combiner: join_task.combiner,
            ..self.config.join.clone()
        };
        let outcome = op.run(self.market, &left_items, &right_items, candidates.as_ref())?;

        let schema = left_rel.schema().join(right_rel.schema());
        let mut out = Relation::new(schema);
        for &(i, j) in &outcome.matches {
            out.push_unchecked(left_rel.rows()[i].concat(&right_rel.rows()[j]));
        }
        Ok(out)
    }

    fn prefilter_literal(
        &mut self,
        rel: &Relation,
        col: usize,
        call: &UdfCall,
        op: CmpOp,
        value: &Literal,
    ) -> Result<Relation> {
        let task = self.catalog.task(&call.name)?;
        let (opts, _) = task.feature_options().ok_or_else(|| {
            QurkError::Other(format!("feature task {} must be categorical", call.name))
        })?;
        let items: Vec<ItemId> = rel.rows().iter().filter_map(|r| r[col].as_item()).collect();
        let gen = GenerativeOp {
            batch_size: self.config.feature_filter.batch_size,
            combined_interface: false,
            assignments: self.config.feature_filter.assignments,
            limit_secs: self.config.feature_filter.limit_secs,
        };
        let outcome = gen.run(self.market, task, &items)?;
        let want = match value {
            Literal::Str(s) => s.clone(),
            Literal::Number(n) => {
                if n.fract() == 0.0 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
        };
        let mut out = Relation::new(rel.schema().clone());
        let mut k = 0usize;
        for row in rel.rows() {
            if row[col].as_item().is_none() {
                continue;
            }
            let extracted = outcome.rows[k].get("value").cloned().unwrap_or(Value::Null);
            k += 1;
            let pass = match (&extracted, op) {
                (Value::Null, _) => true, // UNKNOWN matches anything
                (Value::Text(t), CmpOp::Eq) => *t == want,
                (Value::Text(t), CmpOp::Ne) => *t != want,
                (Value::Text(t), _) => {
                    // Ordered comparison over the option order.
                    let ti = opts.iter().position(|o| o == t);
                    let wi = opts.iter().position(|o| *o == want);
                    match (ti, wi) {
                        (Some(a), Some(b)) => op.eval(a.cmp(&b)),
                        _ => false,
                    }
                }
                _ => false,
            };
            if pass {
                out.push_unchecked(row.clone());
            }
        }
        Ok(out)
    }

    /// MAX/MIN aggregate: tournament extraction of the single best
    /// (DESC) or worst (ASC) row by a Rank task (§2.3).
    fn extract_extreme(&mut self, rel: Relation, call: &UdfCall, desc: bool) -> Result<Relation> {
        let task = self.catalog.task(&call.name)?;
        if task.ty != TaskType::Rank {
            return Err(QurkError::TaskTypeMismatch {
                task: call.name.clone(),
                expected: "Rank",
                found: task.ty.name(),
            });
        }
        let mut out = Relation::new(rel.schema().clone());
        if rel.is_empty() {
            return Ok(out);
        }
        let arg = call.args.first().ok_or_else(|| {
            QurkError::Other(format!("rank task {} needs an argument", call.name))
        })?;
        let col = self.resolve_item_col(&rel, arg)?;
        let items: Vec<ItemId> = rel.rows().iter().filter_map(|r| r[col].as_item()).collect();
        if items.is_empty() {
            return Ok(out);
        }
        // DESC LIMIT 1 = MAX ("most"); ASC LIMIT 1 = MIN ("least").
        // Batches of 5, the paper's comparison group size.
        let (best, _hits) =
            crate::ops::sort::extract_best(self.market, &items, task.oracle_key(), 5, desc, None)?;
        if let Some(row) = rel.rows().iter().find(|r| r[col].as_item() == Some(best)) {
            out.push_unchecked(row.clone());
        }
        Ok(out)
    }

    fn order_by(&mut self, rel: Relation, keys: &[OrderExpr]) -> Result<Relation> {
        // Split keys: machine columns first, then at most one Rank UDF.
        let mut machine: Vec<(usize, bool)> = Vec::new();
        let mut crowd: Option<(&UdfCall, bool)> = None;
        for (ki, k) in keys.iter().enumerate() {
            match &k.expr {
                Expr::Column(name) => {
                    if crowd.is_some() {
                        return Err(QurkError::Other(
                            "machine sort keys must precede the crowd key".into(),
                        ));
                    }
                    let idx = rel
                        .schema()
                        .resolve(name)
                        .ok_or_else(|| QurkError::UnknownColumn(name.clone()))?;
                    machine.push((idx, k.desc));
                }
                Expr::Udf(call) => {
                    if crowd.is_some() || ki != keys.len() - 1 {
                        return Err(QurkError::Other(
                            "only one crowd sort key is supported, and it must be last".into(),
                        ));
                    }
                    crowd = Some((call, k.desc));
                }
                Expr::Literal(_) => {
                    return Err(QurkError::Other("cannot order by a literal".into()))
                }
            }
        }

        // Machine sort (stable).
        let mut order: Vec<usize> = (0..rel.len()).collect();
        order.sort_by(|&a, &b| {
            for &(col, desc) in &machine {
                let va = &rel.rows()[a][col];
                let vb = &rel.rows()[b][col];
                let ord = va.sql_cmp(vb).unwrap_or(std::cmp::Ordering::Equal);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });

        if let Some((call, desc)) = crowd {
            let task = self.catalog.task(&call.name)?;
            if task.ty != TaskType::Rank {
                return Err(QurkError::TaskTypeMismatch {
                    task: call.name.clone(),
                    expected: "Rank",
                    found: task.ty.name(),
                });
            }
            let arg = call.args.first().ok_or_else(|| {
                QurkError::Other(format!("rank task {} needs an argument", call.name))
            })?;
            let col = self.resolve_item_col(&rel, arg)?;
            let dimension = task.oracle_key().to_owned();

            // Group rows sharing the machine-key prefix, sort each
            // group with the crowd (§5's per-actor scene ordering).
            let mut grouped: Vec<Vec<usize>> = Vec::new();
            for &ri in &order {
                let same_group = grouped.last().is_some_and(|g: &Vec<usize>| {
                    machine
                        .iter()
                        .all(|&(c, _)| rel.rows()[g[0]][c].sql_eq(&rel.rows()[ri][c]) == Some(true))
                });
                if same_group {
                    grouped.last_mut().unwrap().push(ri);
                } else {
                    grouped.push(vec![ri]);
                }
            }
            let mut final_order = Vec::with_capacity(rel.len());
            for group in grouped {
                let items: Vec<ItemId> = group
                    .iter()
                    .filter_map(|&ri| rel.rows()[ri][col].as_item())
                    .collect();
                if items.len() <= 1 {
                    final_order.extend(group);
                    continue;
                }
                let sorted_items = match &self.config.sort {
                    SortMode::Compare(op) => op.run(self.market, &items, &dimension)?.order,
                    SortMode::Rate(op) => op.run(self.market, &items, &dimension)?.order,
                    SortMode::Hybrid(op, iterations) => {
                        let out = op.run(self.market, &items, &dimension, *iterations)?;
                        out.trajectory.last().cloned().unwrap_or(out.initial.order)
                    }
                };
                // Sort outcome is best-first ("Most" first); SQL ASC
                // means least-first.
                let item_rank: HashMap<ItemId, usize> = sorted_items
                    .iter()
                    .enumerate()
                    .map(|(i, &it)| (it, i))
                    .collect();
                let mut group_sorted = group.clone();
                group_sorted.sort_by_key(|&ri| {
                    rel.rows()[ri][col]
                        .as_item()
                        .and_then(|it| item_rank.get(&it).copied())
                        .unwrap_or(usize::MAX)
                });
                if !desc {
                    group_sorted.reverse();
                }
                final_order.extend(group_sorted);
            }
            order = final_order;
        }

        let mut out = Relation::new(rel.schema().clone());
        for ri in order {
            out.push_unchecked(rel.rows()[ri].clone());
        }
        Ok(out)
    }

    fn project(&mut self, rel: Relation, items: &[SelectItem]) -> Result<Relation> {
        // Fast path: SELECT *.
        if items.len() == 1 && matches!(items[0], SelectItem::Star) {
            return Ok(rel);
        }
        let mut schema = crate::schema::Schema::default();
        // Each output column: either a copy of an input column or a
        // generative field.
        enum Col {
            Copy(usize),
            Gen { values: Vec<Value> },
        }
        let mut cols: Vec<Col> = Vec::new();
        // Cache generative runs per (task, arg) to avoid re-asking for
        // each selected field (the Fields mechanism answers them all at
        // once, §2.2).
        let mut gen_cache: HashMap<String, Vec<crate::ops::generative::GenRow>> = HashMap::new();

        for item in items {
            match item {
                SelectItem::Star => {
                    for (i, f) in rel.schema().fields().iter().enumerate() {
                        schema.push_field(&f.name, f.ty);
                        cols.push(Col::Copy(i));
                    }
                }
                SelectItem::Column(name) => {
                    let idx = rel
                        .schema()
                        .resolve(name)
                        .ok_or_else(|| QurkError::UnknownColumn(name.clone()))?;
                    let f = &rel.schema().fields()[idx];
                    let out_name = if schema.index_of(name).is_none() {
                        name.clone()
                    } else {
                        format!("{name}#{}", cols.len())
                    };
                    schema.push_field(&out_name, f.ty);
                    cols.push(Col::Copy(idx));
                }
                SelectItem::Udf { call, field } => {
                    let task = self.catalog.task(&call.name)?;
                    if task.ty != TaskType::Generative {
                        return Err(QurkError::TaskTypeMismatch {
                            task: call.name.clone(),
                            expected: "Generative",
                            found: task.ty.name(),
                        });
                    }
                    let key = format!("{call:?}");
                    if !gen_cache.contains_key(&key) {
                        let arg = call.args.first().ok_or_else(|| {
                            QurkError::Other(format!("task {} needs an argument", call.name))
                        })?;
                        let col = self.resolve_item_col(&rel, arg)?;
                        let items_vec: Vec<ItemId> = rel
                            .rows()
                            .iter()
                            .map(|r| r[col].as_item().unwrap_or(ItemId(u64::MAX)))
                            .collect();
                        let gen = GenerativeOp::default();
                        let out = gen.run(self.market, task, &items_vec)?;
                        gen_cache.insert(key.clone(), out.rows);
                    }
                    let rows = &gen_cache[&key];
                    let fname = field.clone().unwrap_or_else(|| "value".to_owned());
                    let out_name = match field {
                        Some(f) => format!("{}.{f}", call.name),
                        None => call.name.clone(),
                    };
                    let values: Vec<Value> = rows
                        .iter()
                        .map(|r| r.get(&fname).cloned().unwrap_or(Value::Null))
                        .collect();
                    schema.push_field(&out_name, ValueType::Text);
                    cols.push(Col::Gen { values });
                }
            }
        }

        let mut out = Relation::new(schema);
        for (ri, row) in rel.rows().iter().enumerate() {
            let values: Vec<Value> = cols
                .iter()
                .map(|c| match c {
                    Col::Copy(i) => row[*i].clone(),
                    Col::Gen { values } => values.get(ri).cloned().unwrap_or(Value::Null),
                })
                .collect();
            out.push_unchecked(Tuple::new(values));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use qurk_crowd::truth::{DimensionParams, PredicateTruth};
    use qurk_crowd::{CrowdConfig, EntityId, GroundTruth};

    /// A toy world: table `people` with items that have an `isTall`
    /// predicate, a `height` dimension, and entities for joining.
    fn setup() -> (Catalog, Marketplace) {
        let mut gt = GroundTruth::new();
        gt.define_dimension("height", DimensionParams::crisp(0.02));
        let items = gt.new_items(10);
        let photos = gt.new_items(10);
        for (i, &it) in items.iter().enumerate() {
            gt.set_predicate(
                it,
                "isTall",
                PredicateTruth {
                    value: i >= 5,
                    error_rate: 0.03,
                },
            );
            gt.set_score(it, "height", i as f64);
            gt.set_entity(it, EntityId(i as u64));
            gt.set_entity(photos[i], EntityId(i as u64));
        }
        let market = Marketplace::new(&CrowdConfig::default(), gt);

        let mut catalog = Catalog::new();
        let mut rel = Relation::new(Schema::new(&[
            ("id", ValueType::Int),
            ("name", ValueType::Text),
            ("img", ValueType::Item),
        ]));
        let mut prel = Relation::new(Schema::new(&[
            ("pid", ValueType::Int),
            ("img", ValueType::Item),
        ]));
        for (i, &it) in items.iter().enumerate() {
            rel.push(vec![
                Value::Int(i as i64),
                Value::text(format!("p{i}")),
                Value::Item(it),
            ])
            .unwrap();
            prel.push(vec![Value::Int(i as i64), Value::Item(photos[i])])
                .unwrap();
        }
        catalog.register_table("people", rel);
        catalog.register_table("photos", prel);
        catalog
            .define_tasks(
                r#"TASK isTall(field) TYPE Filter:
                    Prompt: "<img src='%s'> Tall?", tuple[field]
                   TASK samePerson(a, b) TYPE EquiJoin:
                    LeftNormal: "<img src='%s'>", tuple1[a]
                    RightNormal: "<img src='%s'>", tuple2[b]
                    Combiner: QualityAdjust
                   TASK byHeight(field) TYPE Rank:
                    SingularName: "person"
                    PluralName: "people"
                    OrderDimensionName: "height"
                    LeastName: "shortest"
                    MostName: "tallest"
                    Html: "<img src='%s'>", tuple[field]
                "#,
            )
            .unwrap();
        (catalog, market)
    }

    #[test]
    fn filter_query_end_to_end() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex
            .query("SELECT p.name FROM people AS p WHERE isTall(p.img)")
            .unwrap();
        assert_eq!(rel.schema().fields()[0].name, "p.name");
        let names: Vec<&str> = rel.rows().iter().map(|r| r[0].as_text().unwrap()).collect();
        // Mostly the tall half.
        let tall = names
            .iter()
            .filter(|n| n[1..].parse::<usize>().unwrap() >= 5)
            .count();
        assert!(tall >= names.len() - 1, "names={names:?}");
        assert!(names.len() >= 4);
    }

    #[test]
    fn machine_predicate_costs_no_hits() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let report = ex
            .query_report("SELECT p.name FROM people AS p WHERE p.id < 3")
            .unwrap();
        assert_eq!(report.relation.len(), 3);
        assert_eq!(report.hits_posted, 0);
        assert_eq!(report.cost_dollars, 0.0);
    }

    #[test]
    fn machine_filter_runs_before_crowd_filter() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let report = ex
            .query_report("SELECT p.name FROM people AS p WHERE isTall(p.img) AND p.id >= 8")
            .unwrap();
        // Only 2 rows survive the machine filter, so the crowd sees at
        // most one HIT (batch 5).
        assert_eq!(report.hits_posted, 1);
        assert!(report.relation.len() <= 2);
    }

    #[test]
    fn join_query_end_to_end() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex
            .query(
                "SELECT p.name, ph.pid FROM people p JOIN photos ph \
                 ON samePerson(p.img, ph.img)",
            )
            .unwrap();
        // Most of the 10 true matches, few errors.
        assert!(rel.len() >= 8, "matches={}", rel.len());
        let correct = rel
            .rows()
            .iter()
            .filter(|r| {
                r[0].as_text().unwrap()[1..].parse::<i64>().unwrap() == r[1].as_int().unwrap()
            })
            .count();
        assert!(correct >= rel.len() - 1);
    }

    #[test]
    fn order_by_crowd_rank() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex
            .query("SELECT p.id FROM people p ORDER BY byHeight(p.img) DESC")
            .unwrap();
        let ids: Vec<i64> = rel.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        // DESC: tallest first.
        let tau =
            qurk_metrics::tau_between_orders(&ids, &(0..10).rev().collect::<Vec<i64>>()).unwrap();
        assert!(tau > 0.9, "tau={tau}, ids={ids:?}");
    }

    #[test]
    fn order_by_asc_reverses() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex
            .query("SELECT p.id FROM people p ORDER BY byHeight(p.img) LIMIT 3")
            .unwrap();
        // ASC: shortest first; limit applies after sort.
        assert_eq!(rel.len(), 3);
        let ids: Vec<i64> = rel.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert!(ids.iter().all(|&i| i <= 4), "ids={ids:?}");
    }

    #[test]
    fn order_by_machine_column() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex
            .query("SELECT p.id FROM people p ORDER BY p.id DESC LIMIT 2")
            .unwrap();
        let ids: Vec<i64> = rel.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![9, 8]);
    }

    #[test]
    fn select_star() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex.query("SELECT * FROM people LIMIT 1").unwrap();
        assert_eq!(rel.schema().len(), 3);
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn unknown_column_errors() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        assert!(matches!(
            ex.query("SELECT nope FROM people"),
            Err(QurkError::UnknownColumn(_))
        ));
    }

    #[test]
    fn report_accounts_costs() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let report = ex
            .query_report("SELECT p.name FROM people AS p WHERE isTall(p.img)")
            .unwrap();
        // 10 items / batch 5 = 2 HITs x 5 assignments x $0.015.
        assert_eq!(report.hits_posted, 2);
        assert!((report.cost_dollars - 2.0 * 5.0 * 0.015).abs() < 1e-9);
        assert!(report.explain.contains("CrowdFilter"));
    }

    #[test]
    fn or_groups_execute() {
        let (catalog, mut market) = setup();
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex
            .query("SELECT p.id FROM people p WHERE isTall(p.img) OR p.id < 2")
            .unwrap();
        let ids: Vec<i64> = rel.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert!(ids.contains(&0) && ids.contains(&1), "ids={ids:?}");
        assert!(ids.iter().filter(|&&i| i >= 5).count() >= 4);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::schema::Schema;
    use qurk_crowd::truth::PredicateTruth;
    use qurk_crowd::{CrowdConfig, GroundTruth};

    fn empty_world() -> (Catalog, Marketplace) {
        let gt = GroundTruth::new();
        let market = Marketplace::new(&CrowdConfig::default(), gt);
        let mut catalog = Catalog::new();
        catalog.register_table(
            "t",
            Relation::new(Schema::new(&[
                ("id", ValueType::Int),
                ("img", ValueType::Item),
            ])),
        );
        catalog
            .define_tasks(
                r#"TASK p(field) TYPE Filter:
                    Prompt: "%s?", tuple[field]
                   TASK j(a, b) TYPE EquiJoin:
                    Combiner: MajorityVote
                   TASK r(field) TYPE Rank:
                    OrderDimensionName: "d"
                "#,
            )
            .unwrap();
        (catalog, market)
    }

    #[test]
    fn empty_table_flows_through_every_operator() {
        let (catalog, mut market) = empty_world();
        let mut ex = Executor::new(&catalog, &mut market);
        for sql in [
            "SELECT id FROM t",
            "SELECT id FROM t WHERE p(t.img)",
            "SELECT id FROM t WHERE id < 5 AND p(t.img)",
            "SELECT t.id FROM t JOIN t AS u ON j(t.img, u.img)",
            "SELECT id FROM t ORDER BY r(t.img) LIMIT 3",
            "SELECT * FROM t LIMIT 0",
        ] {
            let rel = ex.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            assert_eq!(rel.len(), 0, "{sql}");
        }
        assert_eq!(market.hits_posted(), 0, "empty inputs must not post HITs");
    }

    #[test]
    fn null_items_fail_crowd_filters() {
        let mut gt = GroundTruth::new();
        let item = gt.new_item();
        gt.set_predicate(
            item,
            "p",
            PredicateTruth {
                value: true,
                error_rate: 0.02,
            },
        );
        let mut catalog = Catalog::new();
        let mut rel = Relation::new(Schema::new(&[
            ("id", ValueType::Int),
            ("img", ValueType::Item),
        ]));
        rel.push(vec![Value::Int(0), Value::Item(item)]).unwrap();
        rel.push(vec![Value::Int(1), Value::Null]).unwrap();
        catalog.register_table("t", rel);
        catalog
            .define_tasks("TASK p(field) TYPE Filter:\n Prompt: \"%s?\", tuple[field]")
            .unwrap();
        let mut market = Marketplace::new(&CrowdConfig::default(), gt);
        let mut ex = Executor::new(&catalog, &mut market);
        let out = ex.query("SELECT id FROM t WHERE p(t.img)").unwrap();
        let ids: Vec<i64> = out.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert!(!ids.contains(&1), "NULL-item row must not pass: {ids:?}");
    }

    #[test]
    fn limit_zero_and_oversized_limit() {
        let (catalog, mut market) = empty_world();
        let mut ex = Executor::new(&catalog, &mut market);
        assert_eq!(ex.query("SELECT id FROM t LIMIT 0").unwrap().len(), 0);
        assert_eq!(ex.query("SELECT id FROM t LIMIT 999").unwrap().len(), 0);
    }

    #[test]
    fn self_join_uses_aliases() {
        // Regression: both sides of a self-join resolve their own
        // qualified columns.
        let mut gt = GroundTruth::new();
        let a = gt.new_item();
        let b = gt.new_item();
        gt.set_entity(a, qurk_crowd::EntityId(1));
        gt.set_entity(b, qurk_crowd::EntityId(1));
        let mut catalog = Catalog::new();
        let mut rel = Relation::new(Schema::new(&[
            ("id", ValueType::Int),
            ("img", ValueType::Item),
        ]));
        rel.push(vec![Value::Int(0), Value::Item(a)]).unwrap();
        rel.push(vec![Value::Int(1), Value::Item(b)]).unwrap();
        catalog.register_table("t", rel);
        catalog
            .define_tasks("TASK j(a, b) TYPE EquiJoin:\n Combiner: MajorityVote")
            .unwrap();
        let mut market = Marketplace::new(&CrowdConfig::default(), gt);
        let mut ex = Executor::new(&catalog, &mut market);
        let out = ex
            .query("SELECT x.id, y.id FROM t AS x JOIN t AS y ON j(x.img, y.img)")
            .unwrap();
        // Items a and b depict the same entity: all 4 crossings match.
        assert!(out.len() >= 3, "self-join found {} pairs", out.len());
    }
}

#[cfg(test)]
mod max_min_tests {
    use super::*;
    use crate::schema::Schema;
    use qurk_crowd::truth::DimensionParams;
    use qurk_crowd::{CrowdConfig, GroundTruth};

    fn world(n: usize) -> (Catalog, Marketplace) {
        let mut gt = GroundTruth::new();
        gt.define_dimension("d", DimensionParams::crisp(0.02));
        let items = gt.new_items(n);
        let mut rel = Relation::new(Schema::new(&[
            ("id", ValueType::Int),
            ("img", ValueType::Item),
        ]));
        for (i, &it) in items.iter().enumerate() {
            gt.set_score(it, "d", i as f64);
            rel.push(vec![Value::Int(i as i64), Value::Item(it)])
                .unwrap();
        }
        let mut catalog = Catalog::new();
        catalog.register_table("t", rel);
        catalog
            .define_tasks("TASK byD(field) TYPE Rank:\n OrderDimensionName: \"d\"")
            .unwrap();
        (catalog, Marketplace::new(&CrowdConfig::default(), gt))
    }

    #[test]
    fn limit_one_desc_runs_max_extraction() {
        let (catalog, mut market) = world(20);
        let mut ex = Executor::new(&catalog, &mut market);
        let report = ex
            .query_report("SELECT id FROM t ORDER BY byD(t.img) DESC LIMIT 1")
            .unwrap();
        assert_eq!(report.relation.len(), 1);
        assert_eq!(report.relation.rows()[0][0], Value::Int(19));
        // Tournament over 20 items in batches of 5: 4 + 1 = 5 HITs —
        // far below the ~19-group full sort.
        assert!(report.hits_posted <= 6, "hits={}", report.hits_posted);
    }

    #[test]
    fn limit_one_asc_runs_min_extraction() {
        let (catalog, mut market) = world(20);
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex
            .query("SELECT id FROM t ORDER BY byD(t.img) LIMIT 1")
            .unwrap();
        assert_eq!(rel.rows()[0][0], Value::Int(0));
    }

    #[test]
    fn limit_two_still_does_full_sort() {
        let (catalog, mut market) = world(10);
        let mut ex = Executor::new(&catalog, &mut market);
        let report = ex
            .query_report("SELECT id FROM t ORDER BY byD(t.img) DESC LIMIT 2")
            .unwrap();
        assert_eq!(report.relation.len(), 2);
        let ids: Vec<i64> = report
            .relation
            .rows()
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![9, 8]);
    }

    #[test]
    fn limit_one_on_empty_is_empty() {
        let (catalog, mut market) = world(20);
        let mut ex = Executor::new(&catalog, &mut market);
        let rel = ex
            .query("SELECT id FROM t WHERE id < 0 ORDER BY byD(t.img) LIMIT 1")
            .unwrap();
        assert!(rel.is_empty());
    }
}

#[cfg(test)]
mod ban_tests {
    use super::*;
    use crate::ops::join::{identify_spammers, JoinOp};
    use crate::schema::Schema;
    use qurk_crowd::{CrowdConfig, EntityId, GroundTruth};

    /// §6: QA spam scores identify bad workers; banning them improves a
    /// *subsequent* run on the same marketplace.
    #[test]
    fn qa_identifies_spammers_and_bans_stick() {
        let mut gt = GroundTruth::new();
        let left = gt.new_items(12);
        let right = gt.new_items(12);
        for i in 0..12 {
            gt.set_entity(left[i], EntityId(i as u64));
            gt.set_entity(right[i], EntityId(i as u64));
        }
        let mut cfg = CrowdConfig::default().with_seed(99);
        cfg.workers.spammer_fraction = 0.25;
        let mut market = Marketplace::new(&cfg, gt);
        let op = JoinOp::default();
        let out = op.run(&mut market, &left, &right, None).unwrap();
        let spammers = identify_spammers(&out.pair_votes, 0.9);
        assert!(!spammers.is_empty(), "should flag some spam workers");
        // Flagged workers are predominantly actual spammers.
        let truly_spam = spammers
            .iter()
            .filter(|w| {
                matches!(
                    market.pool().get(**w).archetype,
                    qurk_crowd::WorkerArchetype::Spammer(_)
                )
            })
            .count();
        assert!(
            truly_spam * 3 >= spammers.len() * 2,
            "{truly_spam}/{} flagged are real spammers",
            spammers.len()
        );
        market.ban_workers(spammers.iter().copied());
        assert_eq!(market.banned_count(), spammers.len());

        // Second run: banned workers contribute no votes.
        let out2 = op.run(&mut market, &left, &right, None).unwrap();
        let banned: std::collections::HashSet<_> = spammers.into_iter().collect();
        for votes in out2.pair_votes.values() {
            for (w, _) in votes {
                assert!(!banned.contains(w), "banned worker {w:?} still answering");
            }
        }
        let _ = Schema::default();
    }
}

#[cfg(test)]
mod combining_tests {
    use super::*;
    use crate::schema::Schema;
    use qurk_crowd::truth::PredicateTruth;
    use qurk_crowd::{CrowdConfig, GroundTruth};

    fn world() -> (Catalog, Marketplace) {
        let mut gt = GroundTruth::new();
        let items = gt.new_items(20);
        let mut rel = Relation::new(Schema::new(&[
            ("id", ValueType::Int),
            ("img", ValueType::Item),
        ]));
        for (i, &it) in items.iter().enumerate() {
            gt.set_predicate(
                it,
                "a",
                PredicateTruth {
                    value: i % 2 == 0,
                    error_rate: 0.03,
                },
            );
            gt.set_predicate(
                it,
                "b",
                PredicateTruth {
                    value: i % 3 == 0,
                    error_rate: 0.03,
                },
            );
            rel.push(vec![Value::Int(i as i64), Value::Item(it)])
                .unwrap();
        }
        let mut catalog = Catalog::new();
        catalog.register_table("t", rel);
        catalog
            .define_tasks(
                "TASK a(field) TYPE Filter:\n Prompt: \"%s?\", tuple[field]\n\
                 TASK b(field) TYPE Filter:\n Prompt: \"%s?\", tuple[field]",
            )
            .unwrap();
        (catalog, Marketplace::new(&CrowdConfig::default(), gt))
    }

    /// §2.6 footnote 2: combining asks more questions (the second
    /// filter sees tuples the first would have discarded) but posts
    /// fewer HITs; serial execution posts more HITs but asks less.
    #[test]
    fn combining_cuts_hits_at_equal_answers() {
        let (catalog, mut market) = world();
        let mut ex = Executor::new(&catalog, &mut market);
        let serial = ex
            .query_report("SELECT id FROM t WHERE a(t.img) AND b(t.img)")
            .unwrap();
        let (catalog, mut market) = world();
        let mut ex = Executor::new(&catalog, &mut market);
        ex.config.combine_conjunct_filters = true;
        let combined = ex
            .query_report("SELECT id FROM t WHERE a(t.img) AND b(t.img)")
            .unwrap();
        // Serial: 4 HITs for `a` + ~2 for survivors of `a`.
        // Combined: 4 HITs carrying both questions.
        assert!(
            combined.hits_posted < serial.hits_posted,
            "combined={} serial={}",
            combined.hits_posted,
            serial.hits_posted
        );
        // Same survivors (ids divisible by 6, modulo crowd noise).
        let ids = |r: &Relation| -> Vec<i64> {
            r.rows().iter().map(|t| t[0].as_int().unwrap()).collect()
        };
        let mut s = ids(&serial.relation);
        let mut c = ids(&combined.relation);
        s.sort_unstable();
        c.sort_unstable();
        for want in [0i64, 6, 12, 18] {
            assert!(c.contains(&want), "combined missing {want}: {c:?}");
        }
        assert!(
            s.len().abs_diff(c.len()) <= 1,
            "serial {s:?} combined {c:?}"
        );
    }
}
