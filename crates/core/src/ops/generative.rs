//! The generative operator (§2.2) and categorical feature extraction.
//!
//! Generative tasks collect unconstrained input (free text, normalized
//! before combination) or constrained input (Radio responses, used by
//! join feature filtering). Multi-field tasks ask every field of a
//! tuple in one HIT; merging batches multiple tuples per HIT.

use std::collections::HashMap;

use qurk_combine::em::{LabelObservation, QualityAdjust, QualityAdjustConfig};
use qurk_combine::majority_vote;
use qurk_crowd::question::{HitKind, Question, UNKNOWN};
use qurk_crowd::ItemId;

use crate::backend::CrowdBackend;
use crate::error::{QurkError, Result};
use crate::hit::batch::combine_questions;
use crate::lang::ast::{ResponseOption, ResponseSpec};
use crate::ops::common::{Round, WorkerInterner, DEFAULT_ROUND_LIMIT_SECS};
use crate::task::{CombinerKind, TaskDef, TaskType};
use crate::value::Value;

/// Combined output for one tuple: field name → value. Categorical
/// fields yield the option label (or NULL for UNKNOWN); text fields
/// the normalized majority string.
pub type GenRow = HashMap<String, Value>;

/// Raw categorical votes per item, for κ computations:
/// `votes[item_idx][field_idx]` = per-worker option indices (UNKNOWN
/// mapped to the extra index `num_options`).
pub type CategoricalVotes = Vec<Vec<Vec<usize>>>;

/// Configuration for one generative execution.
#[derive(Debug, Clone)]
pub struct GenerativeOp {
    /// Tuples per HIT.
    pub batch_size: usize,
    /// Ask all fields in one HIT (`FeatureCombined` framing) or one
    /// field at a time (`FeatureSingle`). §3.3.4 compares the two.
    pub combined_interface: bool,
    pub assignments: Option<u32>,
    pub limit_secs: f64,
}

impl Default for GenerativeOp {
    fn default() -> Self {
        GenerativeOp {
            batch_size: 5,
            combined_interface: true,
            assignments: None,
            limit_secs: DEFAULT_ROUND_LIMIT_SECS,
        }
    }
}

/// Result of a generative run.
#[derive(Debug)]
pub struct GenOutcome {
    pub rows: Vec<GenRow>,
    /// Categorical votes for agreement analysis (empty vecs for text
    /// fields).
    pub votes: CategoricalVotes,
    pub hits_posted: usize,
}

impl GenerativeOp {
    /// Run `task` (type Generative) over `items`.
    #[allow(clippy::needless_range_loop)] // ii indexes parallel rows/votes/items arrays
    pub fn run<B: CrowdBackend + ?Sized>(
        &self,
        backend: &mut B,
        task: &TaskDef,
        items: &[ItemId],
    ) -> Result<GenOutcome> {
        assert_eq!(task.ty, TaskType::Generative, "not a generative task");
        if items.is_empty() {
            return Ok(GenOutcome {
                rows: Vec::new(),
                votes: Vec::new(),
                hits_posted: 0,
            });
        }
        let kind = if self.combined_interface && task.fields.len() > 1 {
            HitKind::FeatureCombined
        } else {
            HitKind::FeatureSingle
        };

        // Build one question stream per field.
        let streams: Vec<Vec<Question>> = task
            .fields
            .iter()
            .map(|f| {
                items
                    .iter()
                    .map(|&item| match &f.response {
                        ResponseSpec::Radio { options, .. } => Question::Feature {
                            item,
                            // Single-field tasks key the oracle by
                            // task name; multi-field by field name.
                            feature: if task.fields.len() == 1 {
                                task.name.clone()
                            } else {
                                f.name.clone()
                            },
                            num_options: options
                                .iter()
                                .filter(|o| matches!(o, ResponseOption::Value(_)))
                                .count(),
                        },
                        ResponseSpec::Text { .. } => Question::Generative {
                            item,
                            field: f.name.clone(),
                        },
                    })
                    .collect()
            })
            .collect();

        let specs = if self.combined_interface || streams.len() == 1 {
            combine_questions(streams, self.batch_size, kind)
        } else {
            // Separate interfaces: one group of HITs per field,
            // concatenated (posted together, §2.5 runs them in parallel).
            let mut all = Vec::new();
            for s in streams {
                all.extend(combine_questions(vec![s], self.batch_size, kind));
            }
            all
        };
        let num_specs = specs.len();
        let round = Round::post(backend, specs, self.assignments);
        let group = round.group();
        let by_hit = round.complete(backend, self.limit_secs)?;

        // Flattened question order -> (item_idx, field_idx).
        let nf = task.fields.len();
        let flat: Vec<(usize, usize)> = if self.combined_interface || nf == 1 {
            (0..items.len())
                .flat_map(|ii| (0..nf).map(move |fi| (ii, fi)))
                .collect()
        } else {
            (0..nf)
                .flat_map(|fi| (0..items.len()).map(move |ii| (ii, fi)))
                .collect()
        };

        // Gather per-cell votes.
        let mut text_votes: HashMap<(usize, usize), Vec<String>> = HashMap::new();
        let mut cat_votes: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
        let mut interner = WorkerInterner::new();
        let mut qcursor = 0usize;
        for hit_id in backend.group_hits(group) {
            let nq = backend.hit_question_count(hit_id);
            if let Some(assignments) = by_hit.get(&hit_id) {
                for a in assignments {
                    let w = interner.intern(a.worker);
                    for (qi, ans) in a.answers.iter().enumerate() {
                        let cell = flat[qcursor + qi];
                        match ans {
                            qurk_crowd::Answer::Text(t) => {
                                text_votes.entry(cell).or_default().push(t.clone())
                            }
                            qurk_crowd::Answer::Category(c) => {
                                cat_votes.entry(cell).or_default().push((w, *c))
                            }
                            _ => {}
                        }
                    }
                }
            }
            qcursor += nq;
        }

        // Combine.
        let mut rows: Vec<GenRow> = vec![GenRow::new(); items.len()];
        let mut votes: CategoricalVotes = vec![vec![Vec::new(); nf]; items.len()];
        for (fi, f) in task.fields.iter().enumerate() {
            match &f.response {
                ResponseSpec::Text { .. } => {
                    for ii in 0..items.len() {
                        if let Some(vs) = text_votes.get(&(ii, fi)) {
                            let normalized: Vec<String> =
                                vs.iter().map(|s| f.normalizer.apply(s)).collect();
                            let outcome = majority_vote(&normalized);
                            rows[ii].insert(
                                f.name.clone(),
                                outcome.winner.map(Value::text).unwrap_or(Value::Null),
                            );
                        }
                    }
                }
                ResponseSpec::Radio { .. } => {
                    let (opts, _) = f.radio_options().ok_or_else(|| {
                        QurkError::Schema(format!("field {} has no radio options", f.name))
                    })?;
                    let k = opts.len();
                    // Record raw votes (UNKNOWN -> index k).
                    for ii in 0..items.len() {
                        if let Some(vs) = cat_votes.get(&(ii, fi)) {
                            votes[ii][fi] = vs
                                .iter()
                                .map(|&(_, c)| if c == UNKNOWN { k } else { c })
                                .collect();
                        }
                    }
                    match f.combiner {
                        CombinerKind::MajorityVote => {
                            for ii in 0..items.len() {
                                if let Some(vs) = cat_votes.get(&(ii, fi)) {
                                    let labels: Vec<usize> = vs
                                        .iter()
                                        .map(|&(_, c)| if c == UNKNOWN { k } else { c })
                                        .collect();
                                    let outcome = majority_vote(&labels);
                                    let v = match outcome.winner {
                                        Some(c) if c < k => Value::text(opts[c]),
                                        _ => Value::Null, // UNKNOWN won
                                    };
                                    rows[ii].insert(f.name.clone(), v);
                                }
                            }
                        }
                        CombinerKind::QualityAdjust => {
                            // EM over this field's votes across items;
                            // UNKNOWN answers are excluded from EM (they
                            // carry no label) and win only if they are
                            // the outright majority.
                            let mut obs = Vec::new();
                            for ii in 0..items.len() {
                                if let Some(vs) = cat_votes.get(&(ii, fi)) {
                                    for &(w, c) in vs {
                                        if c != UNKNOWN {
                                            obs.push(LabelObservation {
                                                worker: w,
                                                item: ii,
                                                label: c,
                                            });
                                        }
                                    }
                                }
                            }
                            let qa = QualityAdjust::new(QualityAdjustConfig::categorical(k));
                            let em = qa.run(&obs);
                            for ii in 0..items.len() {
                                if let Some(vs) = cat_votes.get(&(ii, fi)) {
                                    let unknowns =
                                        vs.iter().filter(|&&(_, c)| c == UNKNOWN).count();
                                    let v = if unknowns * 2 > vs.len() {
                                        Value::Null
                                    } else if ii < em.decisions.len() {
                                        Value::text(opts[em.decisions[ii]])
                                    } else {
                                        Value::Null
                                    };
                                    rows[ii].insert(f.name.clone(), v);
                                }
                            }
                        }
                    }
                }
            }
        }

        Ok(GenOutcome {
            rows,
            votes,
            hits_posted: num_specs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse_tasks;
    use qurk_crowd::truth::TextTruth;
    use qurk_crowd::{CrowdConfig, GroundTruth, Marketplace};

    fn task(src: &str) -> TaskDef {
        TaskDef::from_ast(&parse_tasks(src).unwrap()[0]).unwrap()
    }

    #[test]
    fn text_fields_normalize_and_combine() {
        let mut gt = GroundTruth::new();
        let items = gt.new_items(3);
        for (i, &item) in items.iter().enumerate() {
            gt.set_text(
                item,
                "common",
                TextTruth {
                    variants: vec![
                        (format!("Animal {i}"), 0.5),
                        (format!("animal   {i}"), 0.3),
                        (format!(" ANIMAL {i} "), 0.2),
                    ],
                },
            );
        }
        let mut m = Marketplace::new(&CrowdConfig::default().honest(), gt);
        let t = task(
            r#"TASK animalInfo(field) TYPE Generative:
                Prompt: "%s?", tuple[field]
                Fields: {
                    common: { Response: Text("Common name"),
                              Combiner: MajorityVote,
                              Normalizer: LowercaseSingleSpace }
                }
            "#,
        );
        let out = GenerativeOp::default().run(&mut m, &t, &items).unwrap();
        for (i, row) in out.rows.iter().enumerate() {
            assert_eq!(row["common"], Value::text(format!("animal {i}")), "row {i}");
        }
    }

    #[test]
    fn radio_features_extracted() {
        let mut gt = GroundTruth::new();
        gt.define_feature("gender", &["Male", "Female"]);
        let items = gt.new_items(10);
        for (i, &item) in items.iter().enumerate() {
            gt.set_feature_simple(item, "gender", i % 2, 0.03);
        }
        let mut m = Marketplace::new(&CrowdConfig::default(), gt);
        let t = task(
            r#"TASK gender(field) TYPE Generative:
                Prompt: "%s gender?", tuple[field]
                Response: Radio("Gender", ["Male", "Female", UNKNOWN])
                Combiner: MajorityVote
            "#,
        );
        let out = GenerativeOp::default().run(&mut m, &t, &items).unwrap();
        let correct = out
            .rows
            .iter()
            .enumerate()
            .filter(|(i, r)| {
                r.get("value").and_then(|v| v.as_text())
                    == Some(if i % 2 == 0 { "Male" } else { "Female" })
            })
            .count();
        assert!(correct >= 9, "correct={correct}/10");
        // Votes recorded for kappa analysis.
        assert_eq!(out.votes.len(), 10);
        assert!(out.votes[0][0].len() >= 5);
    }

    #[test]
    fn quality_adjust_combiner_on_features() {
        let mut gt = GroundTruth::new();
        gt.define_feature("hair", &["black", "brown", "blond", "white"]);
        let items = gt.new_items(12);
        for (i, &item) in items.iter().enumerate() {
            gt.set_feature_simple(item, "hair", i % 4, 0.1);
        }
        let mut m = Marketplace::new(&CrowdConfig::default(), gt);
        let t = task(
            r#"TASK hair(field) TYPE Generative:
                Prompt: "%s hair?", tuple[field]
                Response: Radio("Hair", ["black", "brown", "blond", "white", UNKNOWN])
                Combiner: QualityAdjust
            "#,
        );
        let out = GenerativeOp::default().run(&mut m, &t, &items).unwrap();
        let correct = out
            .rows
            .iter()
            .enumerate()
            .filter(|(i, r)| {
                r.get("value").and_then(|v| v.as_text())
                    == Some(["black", "brown", "blond", "white"][i % 4])
            })
            .count();
        assert!(correct >= 10, "correct={correct}/12");
    }

    #[test]
    fn batching_reduces_hits() {
        let mut gt = GroundTruth::new();
        gt.define_feature("gender", &["Male", "Female"]);
        let items = gt.new_items(20);
        for &item in &items {
            gt.set_feature_simple(item, "gender", 0, 0.03);
        }
        let mut m = Marketplace::new(&CrowdConfig::default(), gt);
        let t = task(
            r#"TASK gender(field) TYPE Generative:
                Prompt: "%s?", tuple[field]
                Response: Radio("Gender", ["Male", "Female", UNKNOWN])
            "#,
        );
        let op = GenerativeOp {
            batch_size: 4,
            ..Default::default()
        };
        let out = op.run(&mut m, &t, &items).unwrap();
        assert_eq!(out.hits_posted, 5); // 20 / 4
    }

    #[test]
    fn empty_items_is_noop() {
        let gt = GroundTruth::new();
        let mut m = Marketplace::new(&CrowdConfig::default(), gt);
        let t = task(
            r#"TASK gender(field) TYPE Generative:
                Prompt: "%s?", tuple[field]
                Response: Radio("G", ["a", "b"])
            "#,
        );
        let out = GenerativeOp::default().run(&mut m, &t, &[]).unwrap();
        assert!(out.rows.is_empty());
        assert_eq!(m.hits_posted(), 0);
    }
}
