//! The crowd sort operator (§4).
//!
//! Three implementations:
//!
//! * [`CompareSort`] — groups of `S` items per question; each worker
//!   ranking yields `C(S,2)` pairwise votes. Because transitivity can
//!   fail across workers (§4.1.1), aggregation uses the paper's
//!   **head-to-head** method: an item's score is the number of
//!   pairwise contests it wins under majority vote — identical to the
//!   true ordering when the majority tournament is acyclic.
//! * [`RateSort`] — each item rated on a 7-point Likert scale against
//!   ten random context items; items are ordered by mean rating
//!   (§4.1.2). `O(N)` HITs instead of `O(N²)`.
//! * [`HybridSort`] — starts from the Rate order and spends extra
//!   comparison HITs on suspect windows (§4.1.3): `Random`,
//!   `Confidence` (rating-overlap driven) or sliding `Window(t)`.
//!
//! Plus the MAX/MIN extraction interface of §2.3 ([`extract_best`]).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use qurk_crowd::question::{HitKind, Question};
use qurk_crowd::{HitSpec, ItemId};

use crate::backend::CrowdBackend;
use crate::error::Result;
use crate::ops::common::{Round, DEFAULT_ROUND_LIMIT_SECS};

/// Result of a sort run.
#[derive(Debug, Clone)]
pub struct SortOutcome {
    /// Items best-to-worst (the `MostName` end first).
    pub order: Vec<ItemId>,
    /// Score per *input index* (head-to-head wins or mean rating).
    pub scores: Vec<f64>,
    /// Rating standard deviation per input index (Rate only; zeros for
    /// Compare).
    pub stds: Vec<f64>,
    /// Raw pairwise vote tally (Compare only; empty for Rate). Drives
    /// the paper's modified-kappa agreement signal (Figure 6).
    pub tally: PairTally,
    pub hits_posted: usize,
}

// ---------------------------------------------------------------- Compare

/// Comparison-based sort.
#[derive(Debug, Clone)]
pub struct CompareSort {
    /// Items per comparison group (`S`).
    pub group_size: usize,
    /// Groups per HIT (`b` in §4.1.1's batching).
    pub groups_per_hit: usize,
    pub assignments: Option<u32>,
    pub limit_secs: f64,
    /// Seed for the group-cover generator.
    pub seed: u64,
}

impl Default for CompareSort {
    fn default() -> Self {
        CompareSort {
            group_size: 5,
            groups_per_hit: 1,
            assignments: None,
            limit_secs: DEFAULT_ROUND_LIMIT_SECS,
            seed: 0x50B7,
        }
    }
}

impl CompareSort {
    /// Generate groups of `s` item indices covering every pair at
    /// least once (a greedy covering design; §4.1.1: "our
    /// batch-generation algorithm may generate overlapping groups").
    /// The count approaches the `N(N−1)/(S(S−1))` lower bound the
    /// paper quotes.
    pub fn plan_groups(n: usize, s: usize, seed: u64) -> Vec<Vec<usize>> {
        assert!(s >= 2, "group size must be at least 2");
        if n <= 1 {
            return Vec::new();
        }
        let s = s.min(n);
        let mut rng = StdRng::seed_from_u64(seed);
        // uncovered[i] = set of j > i not yet covered with i.
        let mut uncovered: Vec<Vec<bool>> = (0..n).map(|i| vec![true; n - i]).collect();
        let mut remaining: u64 = (n as u64) * (n as u64 - 1) / 2;
        let is_unc = |unc: &Vec<Vec<bool>>, a: usize, b: usize| {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            unc[lo][hi - lo]
        };
        let mut groups = Vec::new();
        while remaining > 0 {
            // Seed the group with the item having the most uncovered
            // partners (random tie-break via rotation).
            let start = rng.random_range(0..n);
            let first = (0..n)
                .map(|k| (k + start) % n)
                .max_by_key(|&i| {
                    (0..n)
                        .filter(|&j| j != i && is_unc(&uncovered, i, j))
                        .count()
                })
                // lint:allow(unwrap): the iterator ranges over 0..n and uncovered pairs imply n >= 2
                .unwrap();
            let mut group = vec![first];
            while group.len() < s {
                // Add the item covering the most new pairs with the
                // current group.
                let best = (0..n)
                    .filter(|i| !group.contains(i))
                    .map(|i| {
                        let new = group.iter().filter(|&&g| is_unc(&uncovered, i, g)).count();
                        (new, i)
                    })
                    .max_by_key(|&(new, i)| (new, n - i))
                    .map(|(_, i)| i);
                match best {
                    Some(i) => group.push(i),
                    None => break,
                }
            }
            // Mark pairs covered.
            for a in 0..group.len() {
                for b in (a + 1)..group.len() {
                    let (lo, hi) = if group[a] < group[b] {
                        (group[a], group[b])
                    } else {
                        (group[b], group[a])
                    };
                    if uncovered[lo][hi - lo] {
                        uncovered[lo][hi - lo] = false;
                        remaining -= 1;
                    }
                }
            }
            group.sort_unstable();
            groups.push(group);
        }
        groups
    }

    /// Sort `items` along `dimension`.
    pub fn run<B: CrowdBackend + ?Sized>(
        &self,
        backend: &mut B,
        items: &[ItemId],
        dimension: &str,
    ) -> Result<SortOutcome> {
        if items.len() <= 1 {
            return Ok(SortOutcome {
                order: items.to_vec(),
                scores: vec![0.0; items.len()],
                stds: vec![0.0; items.len()],
                tally: PairTally::new(items.len()),
                hits_posted: 0,
            });
        }
        let groups = Self::plan_groups(items.len(), self.group_size, self.seed);
        let questions: Vec<Question> = groups
            .iter()
            .map(|g| Question::CompareGroup {
                items: g.iter().map(|&i| items[i]).collect(),
                dimension: dimension.to_owned(),
            })
            .collect();
        let specs = crate::hit::batch::merge_into_hits(
            questions,
            self.groups_per_hit.max(1),
            HitKind::SortCompare,
        );
        let hits_posted = specs.len();
        let round = Round::post(backend, specs, self.assignments);
        let by_hit = round.complete(backend, self.limit_secs)?;

        // Accumulate pairwise wins from every ordering answer.
        let index: HashMap<ItemId, usize> =
            items.iter().enumerate().map(|(i, &it)| (it, i)).collect();
        let mut tally = PairTally::new(items.len());
        for assignments in by_hit.values() {
            for a in assignments {
                for ans in &a.answers {
                    if let Some(ordering) = ans.as_ordering() {
                        tally.record_ordering(ordering, &index);
                    }
                }
            }
        }

        let scores = tally.head_to_head_scores();
        let order = order_by_scores(items, &scores);
        Ok(SortOutcome {
            order,
            scores,
            stds: vec![0.0; items.len()],
            tally,
            hits_posted,
        })
    }
}

/// Pairwise vote tally with head-to-head scoring.
#[derive(Debug, Clone)]
pub struct PairTally {
    n: usize,
    /// wins[i][j] = number of votes ranking i above j.
    wins: Vec<Vec<u32>>,
}

impl PairTally {
    pub fn new(n: usize) -> Self {
        PairTally {
            n,
            wins: vec![vec![0; n]; n],
        }
    }

    /// Record one worker's best-to-worst ordering.
    pub fn record_ordering(&mut self, ordering: &[ItemId], index: &HashMap<ItemId, usize>) {
        for a in 0..ordering.len() {
            for b in (a + 1)..ordering.len() {
                if let (Some(&i), Some(&j)) = (index.get(&ordering[a]), index.get(&ordering[b])) {
                    self.wins[i][j] += 1;
                }
            }
        }
    }

    /// Record a single pairwise vote: `winner` beat `loser`.
    pub fn record_pair(&mut self, winner: usize, loser: usize) {
        self.wins[winner][loser] += 1;
    }

    /// Votes for (i beats j).
    pub fn votes(&self, i: usize, j: usize) -> (u32, u32) {
        (self.wins[i][j], self.wins[j][i])
    }

    /// Head-to-head scores (§4.1.1): each pair's majority winner gets a
    /// point; ties split. Pairs with no votes contribute nothing.
    pub fn head_to_head_scores(&self) -> Vec<f64> {
        let mut scores = vec![0.0; self.n];
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let (wi, wj) = self.votes(i, j);
                if wi + wj == 0 {
                    continue;
                }
                match wi.cmp(&wj) {
                    std::cmp::Ordering::Greater => scores[i] += 1.0,
                    std::cmp::Ordering::Less => scores[j] += 1.0,
                    std::cmp::Ordering::Equal => {
                        scores[i] += 0.5;
                        scores[j] += 0.5;
                    }
                }
            }
        }
        scores
    }

    /// Does the majority tournament contain a cycle? (§4.1.1 explains
    /// why Quicksort-style `O(N log N)` algorithms misbehave: with
    /// cycles their output depends on unexamined pairs.)
    pub fn has_cycles(&self) -> bool {
        // DFS 3-coloring over majority edges i -> j (i beats j).
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let beats = |i: usize, j: usize| {
            let (wi, wj) = self.votes(i, j);
            wi > wj
        };
        let mut color = vec![Color::White; self.n];
        for start in 0..self.n {
            if color[start] != Color::White {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            color[start] = Color::Gray;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                let mut advanced = false;
                while *next < self.n {
                    let j = *next;
                    *next += 1;
                    if j != node && beats(node, j) {
                        match color[j] {
                            Color::Gray => return true,
                            Color::White => {
                                color[j] = Color::Gray;
                                stack.push((j, 0));
                                advanced = true;
                                break;
                            }
                            Color::Black => {}
                        }
                    }
                }
                if !advanced
                    && stack
                        .last()
                        .map(|&(n2, nx)| n2 == node && nx >= self.n)
                        .unwrap_or(false)
                {
                    color[node] = Color::Black;
                    stack.pop();
                }
            }
        }
        false
    }
}

fn order_by_scores(items: &[ItemId], scores: &[f64]) -> Vec<ItemId> {
    let mut idx: Vec<usize> = (0..items.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cmp(&b))
    });
    idx.into_iter().map(|i| items[i]).collect()
}

// ---------------------------------------------------------------- Rate

/// Rating-based sort.
#[derive(Debug, Clone)]
pub struct RateSort {
    /// Items per HIT.
    pub batch_size: usize,
    /// Likert scale size (7 in the paper).
    pub scale: u8,
    /// Random context items shown alongside the target (10 in §4.1.2).
    pub context_size: usize,
    pub assignments: Option<u32>,
    pub limit_secs: f64,
    pub seed: u64,
}

impl Default for RateSort {
    fn default() -> Self {
        RateSort {
            batch_size: 5,
            scale: 7,
            context_size: 10,
            assignments: None,
            limit_secs: DEFAULT_ROUND_LIMIT_SECS,
            seed: 0x4A7E,
        }
    }
}

impl RateSort {
    /// Sort `items` along `dimension` by mean rating.
    pub fn run<B: CrowdBackend + ?Sized>(
        &self,
        backend: &mut B,
        items: &[ItemId],
        dimension: &str,
    ) -> Result<SortOutcome> {
        if items.is_empty() {
            return Ok(SortOutcome {
                order: Vec::new(),
                scores: Vec::new(),
                stds: Vec::new(),
                tally: PairTally::new(0),
                hits_posted: 0,
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let questions: Vec<Question> = items
            .iter()
            .map(|&item| {
                let ctx = qurk_crowd::rng::sample_distinct(
                    &mut rng,
                    items.len(),
                    self.context_size.min(items.len()),
                )
                .into_iter()
                .map(|i| items[i])
                .collect();
                Question::Rate {
                    item,
                    dimension: dimension.to_owned(),
                    scale: self.scale,
                    context: ctx,
                }
            })
            .collect();
        let specs =
            crate::hit::batch::merge_into_hits(questions, self.batch_size, HitKind::SortRate);
        let hits_posted = specs.len();
        let round = Round::post(backend, specs, self.assignments);
        let group = round.group();
        let by_hit = round.complete(backend, self.limit_secs)?;

        // Per-item rating samples. Question order is items order.
        let mut ratings: Vec<Vec<f64>> = vec![Vec::new(); items.len()];
        let mut qcursor = 0usize;
        for hit_id in backend.group_hits(group) {
            let nq = backend.hit_question_count(hit_id);
            if let Some(assignments) = by_hit.get(&hit_id) {
                for a in assignments {
                    for (qi, ans) in a.answers.iter().enumerate() {
                        if let Some(r) = ans.as_rating() {
                            ratings[qcursor + qi].push(r as f64);
                        }
                    }
                }
            }
            qcursor += nq;
        }

        let scores: Vec<f64> = ratings
            .iter()
            .map(|rs| qurk_metrics::mean(rs).unwrap_or(0.0))
            .collect();
        let stds: Vec<f64> = ratings
            .iter()
            .map(|rs| qurk_metrics::sample_std(rs).unwrap_or(0.0))
            .collect();
        let order = order_by_scores(items, &scores);
        Ok(SortOutcome {
            order,
            scores,
            stds,
            tally: PairTally::new(items.len()),
            hits_posted,
        })
    }
}

// ---------------------------------------------------------------- Hybrid

/// Window-selection strategy for the hybrid sort (§4.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridStrategy {
    /// Pick S random items each iteration.
    Random,
    /// Prioritize windows whose rating confidence intervals overlap
    /// most (`Σ Δa,b` over the window).
    Confidence,
    /// Sliding window advancing by `t` positions per iteration;
    /// §4.2.4: `t` coprime with N lets passes interleave (Window 6
    /// beats Window 5 on 40 squares because 5 divides 40).
    Window { t: usize },
}

/// Result of a hybrid run: the initial rating order plus the order
/// after each comparison HIT (Figure 7's x-axis).
#[derive(Debug, Clone)]
pub struct HybridOutcome {
    pub initial: SortOutcome,
    /// `trajectory[k]` = order after k+1 comparison HITs.
    pub trajectory: Vec<Vec<ItemId>>,
    pub hits_posted: usize,
}

/// The hybrid sort driver.
#[derive(Debug, Clone)]
pub struct HybridSort {
    /// Window size S (usually the comparison group size).
    pub window: usize,
    pub strategy: HybridStrategy,
    pub rate: RateSort,
    pub assignments: Option<u32>,
    pub limit_secs: f64,
    pub seed: u64,
}

impl Default for HybridSort {
    fn default() -> Self {
        HybridSort {
            window: 5,
            strategy: HybridStrategy::Window { t: 6 },
            rate: RateSort::default(),
            assignments: None,
            limit_secs: DEFAULT_ROUND_LIMIT_SECS,
            seed: 0x48B1D,
        }
    }
}

impl HybridSort {
    /// Run: rating pass, then `iterations` single-window comparison
    /// HITs, re-sorting the touched positions after each.
    pub fn run<B: CrowdBackend + ?Sized>(
        &self,
        backend: &mut B,
        items: &[ItemId],
        dimension: &str,
        iterations: usize,
    ) -> Result<HybridOutcome> {
        let initial = self.rate.run(backend, items, dimension)?;
        let mut hits_posted = initial.hits_posted;
        let n = items.len();
        if n <= 1 || iterations == 0 {
            return Ok(HybridOutcome {
                trajectory: Vec::new(),
                initial,
                hits_posted,
            });
        }

        let index: HashMap<ItemId, usize> =
            items.iter().enumerate().map(|(i, &it)| (it, i)).collect();
        // Current order as input indices.
        let mut order: Vec<usize> = initial.order.iter().map(|it| index[it]).collect();
        let mut tally = PairTally::new(n);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trajectory = Vec::with_capacity(iterations);
        let s = self.window.min(n);

        // Confidence strategy: rank windows once by rating-overlap.
        let mut confidence_windows: Vec<usize> = Vec::new();
        if self.strategy == HybridStrategy::Confidence {
            let mut scored: Vec<(f64, usize)> = (0..n.saturating_sub(s - 1))
                .map(|w| {
                    let mut r = 0.0;
                    for a in w..(w + s) {
                        for b in (a + 1)..(w + s) {
                            let (ia, ib) = (order[a], order[b]);
                            let (mu_a, sd_a) = (initial.scores[ia], initial.stds[ia]);
                            let (mu_b, sd_b) = (initial.scores[ib], initial.stds[ib]);
                            // Δa,b = max(μlow + σlow − μhigh + σhigh, 0)
                            let (lo, lo_sd, hi, hi_sd) = if mu_a < mu_b {
                                (mu_a, sd_a, mu_b, sd_b)
                            } else {
                                (mu_b, sd_b, mu_a, sd_a)
                            };
                            r += (lo + lo_sd - (hi - hi_sd)).max(0.0);
                        }
                    }
                    (r, w)
                })
                .collect();
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            confidence_windows = scored.into_iter().map(|(_, w)| w).collect();
        }

        let mut window_cursor = 1usize; // sliding window position (paper starts i at 1)
        for it in 0..iterations {
            // Pick window positions within the *current* order.
            let positions: Vec<usize> = match self.strategy {
                HybridStrategy::Random => qurk_crowd::rng::sample_distinct(&mut rng, n, s),
                HybridStrategy::Confidence => {
                    let w = confidence_windows[it % confidence_windows.len().max(1)];
                    (w..(w + s).min(n)).collect()
                }
                HybridStrategy::Window { t } => {
                    let start = window_cursor;
                    window_cursor = (window_cursor + t) % n;
                    (0..s).map(|k| (start + k) % n).collect()
                }
            };
            let mut positions = positions;
            positions.sort_unstable();
            positions.dedup();

            let group_items: Vec<ItemId> = positions.iter().map(|&p| items[order[p]]).collect();
            let spec = HitSpec::new(
                vec![Question::CompareGroup {
                    items: group_items,
                    dimension: dimension.to_owned(),
                }],
                HitKind::SortCompare,
            );
            let round = Round::post(backend, vec![spec], self.assignments);
            let by_hit = round.complete(backend, self.limit_secs)?;
            hits_posted += 1;
            for assignments in by_hit.values() {
                for a in assignments {
                    for ans in &a.answers {
                        if let Some(o) = ans.as_ordering() {
                            tally.record_ordering(o, &index);
                        }
                    }
                }
            }

            // Re-order the window's items by head-to-head among all
            // accumulated votes for those pairs; stable fallback to
            // current position.
            let members: Vec<usize> = positions.iter().map(|&p| order[p]).collect();
            let mut local: Vec<usize> = members.clone();
            // lint:allow(unwrap): `local` is a permutation of `members`, so every member is found
            let pos_of = |m: usize, cur: &[usize]| cur.iter().position(|&x| x == m).unwrap();
            local.sort_by(|&a, &b| {
                let mut score_a = 0.0;
                let mut score_b = 0.0;
                for &m in &members {
                    if m != a {
                        let (wa, wm) = tally.votes(a, m);
                        if wa > wm {
                            score_a += 1.0;
                        } else if wa == wm && wa > 0 {
                            score_a += 0.5;
                        }
                    }
                    if m != b {
                        let (wb, wm) = tally.votes(b, m);
                        if wb > wm {
                            score_b += 1.0;
                        } else if wb == wm && wb > 0 {
                            score_b += 0.5;
                        }
                    }
                }
                score_b
                    .partial_cmp(&score_a)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| pos_of(a, &order).cmp(&pos_of(b, &order)))
            });
            for (k, &p) in positions.iter().enumerate() {
                order[p] = local[k];
            }
            trajectory.push(order.iter().map(|&i| items[i]).collect());
        }

        Ok(HybridOutcome {
            initial,
            trajectory,
            hits_posted,
        })
    }
}

// ---------------------------------------------------------------- MAX/MIN

/// Tournament-style MAX/MIN extraction (§2.3): batches of `batch_size`
/// items, each HIT picks the best (or worst), winners advance.
/// Returns the final pick and the number of HITs used.
pub fn extract_best<B: CrowdBackend + ?Sized>(
    backend: &mut B,
    items: &[ItemId],
    dimension: &str,
    batch_size: usize,
    want_max: bool,
    assignments: Option<u32>,
) -> Result<(ItemId, usize)> {
    assert!(!items.is_empty(), "cannot extract from empty input");
    assert!(batch_size >= 2, "batch size must be at least 2");
    let mut pool: Vec<ItemId> = items.to_vec();
    let mut hits = 0usize;
    while pool.len() > 1 {
        let specs: Vec<HitSpec> = pool
            .chunks(batch_size)
            .map(|chunk| {
                HitSpec::new(
                    vec![Question::PickBest {
                        items: chunk.to_vec(),
                        dimension: dimension.to_owned(),
                        want_max,
                    }],
                    HitKind::PickBest,
                )
            })
            .collect();
        hits += specs.len();
        let round = Round::post(backend, specs, assignments);
        let group = round.group();
        let by_hit = round.complete(backend, DEFAULT_ROUND_LIMIT_SECS)?;
        let mut winners: Vec<ItemId> = Vec::new();
        for hit_id in backend.group_hits(group) {
            let Some(assignments) = by_hit.get(&hit_id) else {
                continue;
            };
            // Majority vote over the assignment picks.
            let picks: Vec<ItemId> = assignments
                .iter()
                .flat_map(|a| a.answers.iter().filter_map(|x| x.as_pick()))
                .collect();
            if let Some(winner) = qurk_combine::majority_vote(&picks).winner {
                winners.push(winner);
            }
        }
        winners.sort_unstable();
        winners.dedup();
        pool = winners;
    }
    Ok((pool[0], hits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurk_crowd::truth::DimensionParams;
    use qurk_crowd::{CrowdConfig, GroundTruth, Marketplace};
    use qurk_metrics::tau_between_orders;

    fn sort_market(n: usize, ambiguity: f64, seed: u64) -> (Marketplace, Vec<ItemId>) {
        let mut gt = GroundTruth::new();
        gt.define_dimension(
            "dim",
            DimensionParams {
                ambiguity,
                rating_noise_mult: 5.0,
                pure_noise: false,
            },
        );
        let items = gt.new_items(n);
        for (i, &it) in items.iter().enumerate() {
            gt.set_score(it, "dim", i as f64);
        }
        let m = Marketplace::new(&CrowdConfig::default().with_seed(seed), gt);
        (m, items)
    }

    fn true_desc(items: &[ItemId]) -> Vec<ItemId> {
        items.iter().rev().copied().collect()
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (i, j) index a pair matrix
    fn plan_groups_covers_all_pairs() {
        for (n, s) in [(10, 5), (17, 4), (40, 5), (7, 7), (5, 10)] {
            let groups = CompareSort::plan_groups(n, s, 42);
            let mut covered = vec![vec![false; n]; n];
            for g in &groups {
                assert!(g.len() <= s.min(n));
                for a in 0..g.len() {
                    for b in (a + 1)..g.len() {
                        covered[g[a]][g[b]] = true;
                        covered[g[b]][g[a]] = true;
                    }
                }
            }
            for i in 0..n {
                for j in (i + 1)..n {
                    assert!(covered[i][j], "pair ({i},{j}) uncovered for n={n} s={s}");
                }
            }
        }
    }

    #[test]
    fn plan_groups_near_lower_bound() {
        // 40 items, S=5: lower bound 78 (the paper's Compare cost);
        // greedy should stay within ~40% of it.
        let groups = CompareSort::plan_groups(40, 5, 1);
        assert!(
            (78..=110).contains(&groups.len()),
            "groups={}",
            groups.len()
        );
    }

    #[test]
    fn plan_groups_trivial_cases() {
        assert!(CompareSort::plan_groups(1, 5, 0).is_empty());
        assert_eq!(CompareSort::plan_groups(2, 5, 0).len(), 1);
    }

    #[test]
    fn compare_sort_is_nearly_perfect_on_crisp_data() {
        let (mut m, items) = sort_market(15, 0.012, 10);
        let out = CompareSort::default().run(&mut m, &items, "dim").unwrap();
        let tau = tau_between_orders(&out.order, &true_desc(&items)).unwrap();
        assert!(tau > 0.97, "tau={tau}");
    }

    #[test]
    fn rate_sort_is_good_but_imperfect() {
        let (mut m, items) = sort_market(30, 0.012, 11);
        let out = RateSort::default().run(&mut m, &items, "dim").unwrap();
        assert_eq!(out.hits_posted, 6); // 30 / 5
        let tau = tau_between_orders(&out.order, &true_desc(&items)).unwrap();
        assert!((0.55..0.98).contains(&tau), "tau={tau}");
        // Stds are populated (needed by Confidence hybrid).
        assert!(out.stds.iter().any(|&s| s > 0.0));
    }

    #[test]
    fn rate_costs_linear_compare_costs_quadratic() {
        let (mut m, items) = sort_market(20, 0.012, 12);
        let rate = RateSort::default().run(&mut m, &items, "dim").unwrap();
        let cmp = CompareSort::default().run(&mut m, &items, "dim").unwrap();
        assert!(
            cmp.hits_posted > 3 * rate.hits_posted,
            "compare={} rate={}",
            cmp.hits_posted,
            rate.hits_posted
        );
    }

    #[test]
    fn hybrid_improves_on_rating() {
        let (mut m, items) = sort_market(20, 0.012, 13);
        let hybrid = HybridSort {
            strategy: HybridStrategy::Window { t: 3 },
            ..Default::default()
        };
        let out = hybrid.run(&mut m, &items, "dim", 25).unwrap();
        let tau0 = tau_between_orders(&out.initial.order, &true_desc(&items)).unwrap();
        let tau_end =
            tau_between_orders(out.trajectory.last().unwrap(), &true_desc(&items)).unwrap();
        assert!(
            tau_end > tau0,
            "hybrid should improve: tau0={tau0} tau_end={tau_end}"
        );
        assert!(tau_end > 0.9, "tau_end={tau_end}");
    }

    #[test]
    fn hybrid_trajectory_length_matches_iterations() {
        let (mut m, items) = sort_market(10, 0.012, 14);
        let out = HybridSort::default().run(&mut m, &items, "dim", 7).unwrap();
        assert_eq!(out.trajectory.len(), 7);
        assert_eq!(out.hits_posted, out.initial.hits_posted + 7);
        // Every trajectory entry is a permutation of the items.
        for t in &out.trajectory {
            let mut s = t.clone();
            s.sort_unstable();
            let mut want = items.clone();
            want.sort_unstable();
            assert_eq!(s, want);
        }
    }

    #[test]
    fn all_three_strategies_run() {
        for strategy in [
            HybridStrategy::Random,
            HybridStrategy::Confidence,
            HybridStrategy::Window { t: 6 },
        ] {
            let (mut m, items) = sort_market(12, 0.012, 15);
            let out = HybridSort {
                strategy,
                ..Default::default()
            }
            .run(&mut m, &items, "dim", 5)
            .unwrap();
            assert_eq!(out.trajectory.len(), 5, "{strategy:?}");
        }
    }

    #[test]
    fn head_to_head_handles_cycles() {
        // A > B, B > C, C > A: scores all equal; no panic, order total.
        let mut tally = PairTally::new(3);
        for _ in 0..3 {
            tally.record_pair(0, 1);
            tally.record_pair(1, 2);
            tally.record_pair(2, 0);
        }
        assert!(tally.has_cycles());
        let scores = tally.head_to_head_scores();
        assert_eq!(scores, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn acyclic_tournament_detected() {
        let mut tally = PairTally::new(3);
        tally.record_pair(0, 1);
        tally.record_pair(1, 2);
        tally.record_pair(0, 2);
        assert!(!tally.has_cycles());
        let scores = tally.head_to_head_scores();
        assert_eq!(scores, vec![2.0, 1.0, 0.0]);
    }

    #[test]
    fn tie_votes_split_points() {
        let mut tally = PairTally::new(2);
        tally.record_pair(0, 1);
        tally.record_pair(1, 0);
        assert_eq!(tally.head_to_head_scores(), vec![0.5, 0.5]);
    }

    #[test]
    fn extract_max_and_min() {
        let (mut m, items) = sort_market(12, 0.012, 16);
        let (max, hits) = extract_best(&mut m, &items, "dim", 4, true, None).unwrap();
        assert_eq!(max, items[11]);
        assert!(hits >= 4); // 3 first-round + final
        let (min, _) = extract_best(&mut m, &items, "dim", 4, false, None).unwrap();
        assert_eq!(min, items[0]);
    }

    #[test]
    fn single_item_sorts_trivially() {
        let (mut m, items) = sort_market(1, 0.012, 17);
        let out = CompareSort::default().run(&mut m, &items, "dim").unwrap();
        assert_eq!(out.order, items);
        assert_eq!(out.hits_posted, 0);
    }
}
