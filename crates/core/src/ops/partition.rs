//! Hash-partitioned candidate generation for hybrid joins.
//!
//! §3.2's feature filter prunes the crowd join's candidate pairs on
//! the machine side: a pair survives iff every selected feature agrees
//! or either side is UNKNOWN (§2.4's wildcard). The reference
//! formulation ([`candidate_pairs_naive`]) scans the full |L|×|R|
//! cross product, touching every pair's whole feature row.
//!
//! [`candidate_pairs`] instead partitions both tables by one selected
//! feature's value (DPG-style cache partitioning: each partition is a
//! small dense index list that stays cache-resident while it is
//! swept). Rows with a known value land in the partition for that
//! value; UNKNOWN rows go to a wildcard partition that pairs with
//! everything. Only value-matching partitions are swept, so the
//! remaining-feature verification runs on ~|L|×|R|/k pairs instead of
//! all of them. The partition feature is chosen to minimize wildcard
//! spill — wildcards are the rows that defeat partition pruning.
//!
//! Both functions produce the same pair set; the partitioned path
//! emits them partition-by-partition (deterministic, but a different
//! order), which is why callers treat the result as a set.
// lint:hot-path

/// Candidate pairs via partitioning. `left[i][f]` / `right[j][f]` are
/// the extracted feature values (`None` = UNKNOWN). `selected` holds
/// the feature indices that survived the κ/selectivity tests.
pub fn candidate_pairs(
    selected: &[usize],
    left: &[Vec<Option<usize>>],
    right: &[Vec<Option<usize>>],
) -> Vec<(usize, usize)> {
    if selected.is_empty() {
        // No features selected: every pair is a candidate.
        let mut out = Vec::with_capacity(left.len() * right.len());
        for i in 0..left.len() {
            for j in 0..right.len() {
                out.push((i, j));
            }
        }
        return out;
    }

    // Pick the partition feature with the fewest UNKNOWNs: every
    // wildcard row must be paired against the whole other side, so the
    // feature with the least spill prunes the most.
    let wild_count = |fi: usize| {
        left.iter().filter(|row| row[fi].is_none()).count()
            + right.iter().filter(|row| row[fi].is_none()).count()
    };
    let mut pf = selected[0];
    let mut best = wild_count(pf);
    for &fi in &selected[1..] {
        let w = wild_count(fi);
        if w < best {
            pf = fi;
            best = w;
        }
    }
    let rest: Vec<usize> = selected.iter().copied().filter(|&fi| fi != pf).collect();

    // Remaining-feature agreement check (the partition feature is
    // already satisfied by construction).
    let pass_rest = |i: usize, j: usize| {
        rest.iter().all(|&fi| match (left[i][fi], right[j][fi]) {
            (Some(a), Some(b)) => a == b,
            _ => true, // UNKNOWN matches anything
        })
    };

    // Dense partitions: feature values are small option indices, so a
    // Vec of index lists beats a hash table.
    let domain = left
        .iter()
        .chain(right.iter())
        .filter_map(|row| row[pf])
        .max()
        .map_or(0, |v| v + 1);
    let build = |rows: &[Vec<Option<usize>>]| {
        let mut parts: Vec<Vec<u32>> = vec![Vec::new(); domain];
        let mut wild: Vec<u32> = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            match row[pf] {
                Some(v) => parts[v].push(i as u32),
                None => wild.push(i as u32),
            }
        }
        (parts, wild)
    };
    let (lparts, lwild) = build(left);
    let (rparts, rwild) = build(right);

    let mut out = Vec::new();
    // Value partitions: sweep matching partitions plus the right-side
    // wildcard spill.
    for (lp, rp) in lparts.iter().zip(&rparts) {
        for &i in lp {
            let i = i as usize;
            for &j in rp {
                if pass_rest(i, j as usize) {
                    out.push((i, j as usize));
                }
            }
            for &j in &rwild {
                if pass_rest(i, j as usize) {
                    out.push((i, j as usize));
                }
            }
        }
    }
    // Left wildcards pair with every right row (including right
    // wildcards) — disjoint from the loops above since each left row
    // is in exactly one partition.
    for &i in &lwild {
        let i = i as usize;
        for j in 0..right.len() {
            if pass_rest(i, j) {
                out.push((i, j));
            }
        }
    }
    out
}

/// The reference |L|×|R| scan. Public as the wall-clock bench baseline
/// and the property-test oracle for [`candidate_pairs`].
pub fn candidate_pairs_naive(
    selected: &[usize],
    left: &[Vec<Option<usize>>],
    right: &[Vec<Option<usize>>],
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, lrow) in left.iter().enumerate() {
        for (j, rrow) in right.iter().enumerate() {
            let pass = selected.iter().all(|&fi| match (lrow[fi], rrow[fi]) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            });
            if pass {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Deterministic pseudo-random extraction table.
    fn table(n: usize, features: &[usize], wild_pct: u64, seed: u64) -> Vec<Vec<Option<usize>>> {
        let mut s = seed;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        (0..n)
            .map(|_| {
                features
                    .iter()
                    .map(|&k| {
                        if next() % 100 < wild_pct {
                            None
                        } else {
                            Some((next() % k as u64) as usize)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn as_set(pairs: Vec<(usize, usize)>) -> HashSet<(usize, usize)> {
        let n = pairs.len();
        let set: HashSet<_> = pairs.into_iter().collect();
        assert_eq!(set.len(), n, "duplicate pairs emitted");
        set
    }

    #[test]
    fn partitioned_matches_naive_on_random_tables() {
        for seed in 0..5u64 {
            let left = table(40, &[3, 4], 15, seed * 2 + 1);
            let right = table(30, &[3, 4], 15, seed * 2 + 2);
            for selected in [vec![], vec![0], vec![1], vec![0, 1]] {
                let fast = as_set(candidate_pairs(&selected, &left, &right));
                let naive = as_set(candidate_pairs_naive(&selected, &left, &right));
                assert_eq!(fast, naive, "seed={seed} selected={selected:?}");
            }
        }
    }

    #[test]
    fn wildcards_match_everything() {
        let left = vec![vec![None], vec![Some(1)]];
        let right = vec![vec![Some(0)], vec![Some(1)], vec![None]];
        let got = as_set(candidate_pairs(&[0], &left, &right));
        // Row 0 (UNKNOWN) matches all 3; row 1 matches value 1 and the
        // right-side UNKNOWN.
        let want: HashSet<_> = [(0, 0), (0, 1), (0, 2), (1, 1), (1, 2)].into();
        assert_eq!(got, want);
    }

    #[test]
    fn disagreeing_known_values_are_pruned() {
        let left = vec![vec![Some(0)]];
        let right = vec![vec![Some(1)]];
        assert!(candidate_pairs(&[0], &left, &right).is_empty());
    }

    #[test]
    fn empty_selection_is_cross_product() {
        let left = table(4, &[2], 0, 1);
        let right = table(3, &[2], 0, 2);
        assert_eq!(candidate_pairs(&[], &left, &right).len(), 12);
    }

    #[test]
    fn empty_tables() {
        assert!(candidate_pairs(&[0], &[], &[vec![Some(0)]]).is_empty());
        assert!(candidate_pairs(&[0], &[vec![Some(0)]], &[]).is_empty());
    }

    #[test]
    fn all_unknown_partition_feature() {
        // Every row UNKNOWN on the partition feature: everything goes
        // through the wildcard path and the second feature decides.
        let left = vec![vec![None, Some(0)], vec![None, Some(1)]];
        let right = vec![vec![None, Some(0)], vec![None, Some(2)]];
        let got = as_set(candidate_pairs(&[0, 1], &left, &right));
        let naive = as_set(candidate_pairs_naive(&[0, 1], &left, &right));
        assert_eq!(got, naive);
        assert!(got.contains(&(0, 0)));
        assert!(!got.contains(&(1, 0)));
    }
}
