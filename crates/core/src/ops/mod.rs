//! Crowd-powered operators.
//!
//! Each operator turns tuples into HIT groups, drives the marketplace,
//! and combines worker answers:
//!
//! * [`filter`] — linear-scan Yes/No predicates (§2.1) with merging
//!   and combining batching.
//! * [`generative`] — free-text and categorical extraction (§2.2).
//! * [`join`] — SimpleJoin / NaiveBatch / SmartBatch block nested loop
//!   (§3.1) plus POSSIBLY feature filtering (§3.2).
//! * [`sort`] — Compare / Rate / Hybrid (§4.1) and MAX/MIN extraction.

pub mod common;
pub mod filter;
pub mod generative;
pub mod join;
pub mod partition;
pub mod sort;

pub use filter::FilterOp;
pub use generative::GenerativeOp;
pub use join::{FeatureFilterConfig, JoinOp, JoinOutcome, JoinStrategy};
pub use sort::{CompareSort, HybridSort, HybridStrategy, RateSort, SortOutcome};
