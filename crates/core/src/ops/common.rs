//! Shared operator plumbing.

use std::collections::HashMap;

use qurk_crowd::market::{Assignment, HitGroupId, HitId, RunOutcome};
use qurk_crowd::WorkerId;

use crate::backend::CrowdBackend;
use crate::error::{QurkError, Result};

/// Default virtual-time budget for one operator round: the paper's
/// jobs complete within hours; a week of virtual time means "the crowd
/// abandoned this work" (oversized batches).
pub const DEFAULT_ROUND_LIMIT_SECS: f64 = 7.0 * 24.0 * 3600.0;

/// Run the backend until the posted group completes and gather its
/// assignments grouped by HIT.
pub fn run_and_collect<B: CrowdBackend + ?Sized>(
    backend: &mut B,
    group: HitGroupId,
    limit_secs: f64,
) -> Result<HashMap<HitId, Vec<Assignment>>> {
    match backend.run(limit_secs) {
        RunOutcome::Completed => {}
        RunOutcome::TimedOut => {
            return Err(QurkError::CrowdIncomplete {
                outstanding: backend.group_outstanding(group),
            })
        }
    }
    let mut by_hit: HashMap<HitId, Vec<Assignment>> = HashMap::new();
    for a in backend.assignments(group) {
        by_hit.entry(a.hit).or_default().push(a);
    }
    Ok(by_hit)
}

/// Intern worker ids to dense indices (for the EM combiner).
#[derive(Debug, Default)]
pub struct WorkerInterner {
    map: HashMap<WorkerId, usize>,
}

impl WorkerInterner {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn intern(&mut self, w: WorkerId) -> usize {
        let next = self.map.len();
        *self.map.entry(w).or_insert(next)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_dense_and_stable() {
        let mut i = WorkerInterner::new();
        assert_eq!(i.intern(WorkerId(9)), 0);
        assert_eq!(i.intern(WorkerId(4)), 1);
        assert_eq!(i.intern(WorkerId(9)), 0);
        assert_eq!(i.len(), 2);
    }
}
