//! Shared operator plumbing.

use std::collections::HashMap;

use qurk_crowd::market::{Assignment, HitGroupId, HitId};
use qurk_crowd::{HitSpec, WorkerId};

use crate::backend::CrowdBackend;
use crate::error::{QurkError, Result};

/// Default virtual-time budget for one operator round: the paper's
/// jobs complete within hours; a week of virtual time means "the crowd
/// abandoned this work" (oversized batches).
pub const DEFAULT_ROUND_LIMIT_SECS: f64 = 7.0 * 24.0 * 3600.0;

/// One crowd round of an operator: a posted HIT group waiting for its
/// assignments. This is every operator's **yield point** — between
/// [`Round::post`] and [`Round::complete`] no operator state refers to
/// the backend, so a cooperative executor (the multi-tenant
/// [`crate::service`] scheduler) is free to interleave other queries'
/// rounds on the same marketplace clock before resuming this one.
///
/// Single-tenant execution drives the round to completion inline; the
/// service's per-tenant backend instead suspends the calling query
/// inside [`CrowdBackend::run`] and wakes it when the shared
/// marketplace has serviced the round.
#[derive(Debug, Clone, Copy)]
#[must_use = "a posted round must be completed (or explicitly abandoned)"]
pub struct Round {
    group: HitGroupId,
}

impl Round {
    /// Post one round of HIT specs (`assignments = None` uses the
    /// backend default).
    pub fn post<B: CrowdBackend + ?Sized>(
        backend: &mut B,
        specs: Vec<HitSpec>,
        assignments: Option<u32>,
    ) -> Round {
        Round {
            group: backend.post(specs, assignments),
        }
    }

    /// The posted group's id.
    pub fn group(&self) -> HitGroupId {
        self.group
    }

    /// Drive the backend until this round completes (or `limit_secs`
    /// of virtual time elapse) and gather its assignments by HIT.
    /// A round still outstanding at the deadline is an error: the
    /// crowd abandoned the batch.
    pub fn complete<B: CrowdBackend + ?Sized>(
        self,
        backend: &mut B,
        limit_secs: f64,
    ) -> Result<HashMap<HitId, Vec<Assignment>>> {
        let (done, by_hit) = self.try_complete(backend, limit_secs);
        if !done {
            return Err(QurkError::CrowdIncomplete {
                outstanding: backend.group_outstanding(self.group),
            });
        }
        Ok(by_hit)
    }

    /// Lenient [`Self::complete`]: run the clock, report whether this
    /// round finished, and return whatever assignments it has. Used by
    /// probes that treat a timeout as a measurement, not a failure.
    pub fn try_complete<B: CrowdBackend + ?Sized>(
        self,
        backend: &mut B,
        limit_secs: f64,
    ) -> (bool, HashMap<HitId, Vec<Assignment>>) {
        // The global outcome may say TimedOut on behalf of *other*
        // queries' groups (service mode shares the clock), so this
        // round's own outstanding count is what decides.
        let _ = backend.run(limit_secs);
        if backend.group_outstanding(self.group) > 0 {
            return (false, HashMap::new());
        }
        let mut by_hit: HashMap<HitId, Vec<Assignment>> = HashMap::new();
        for a in backend.assignments(self.group) {
            by_hit.entry(a.hit).or_default().push(a);
        }
        (true, by_hit)
    }
}

/// Intern worker ids to dense indices (for the EM combiner).
#[derive(Debug, Default)]
pub struct WorkerInterner {
    map: HashMap<WorkerId, usize>,
}

impl WorkerInterner {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn intern(&mut self, w: WorkerId) -> usize {
        let next = self.map.len();
        *self.map.entry(w).or_insert(next)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_dense_and_stable() {
        let mut i = WorkerInterner::new();
        assert_eq!(i.intern(WorkerId(9)), 0);
        assert_eq!(i.intern(WorkerId(4)), 1);
        assert_eq!(i.intern(WorkerId(9)), 0);
        assert_eq!(i.len(), 2);
    }
}
