//! The crowd join operator (§3).
//!
//! Qurk implements a block nested loop join whose predicate evaluations
//! are HITs. Three interfaces ([`JoinStrategy`]):
//!
//! * **Simple** (Figure 2a) — one pair per HIT: `|R||S|` HITs.
//! * **NaiveBatch(b)** (Figure 2b) — b pairs stacked per HIT:
//!   `|R||S|/b` HITs.
//! * **SmartBatch(r×s)** (Figure 2c) — an r×s image grid per HIT:
//!   `|R||S|/(rs)` HITs.
//!
//! [`feature_filter`] implements §3.2's `POSSIBLY` clause machinery:
//! crowd-extracted features pre-filter the cross product, with three
//! automatic tests for dropping bad filters (selectivity, leave-one-out
//! error contribution, and Fleiss-κ ambiguity).

use std::collections::{HashMap, HashSet};

use qurk_combine::em::{LabelObservation, QualityAdjust, QualityAdjustConfig};
use qurk_combine::majority_vote_bool;
use qurk_crowd::question::{HitKind, Question};
use qurk_crowd::{HitSpec, ItemId, WorkerId};

use crate::backend::CrowdBackend;
use crate::error::Result;
use crate::ops::common::{Round, WorkerInterner, DEFAULT_ROUND_LIMIT_SECS};
use crate::task::CombinerKind;

pub use feature_filter::{FeatureFilter, FeatureFilterConfig, FeatureFilterOutcome};

/// Which join interface to compile HITs into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    Simple,
    NaiveBatch(usize),
    SmartBatch { rows: usize, cols: usize },
}

impl JoinStrategy {
    /// The marketplace interface kind for this strategy.
    pub fn hit_kind(&self) -> HitKind {
        match *self {
            JoinStrategy::Simple => HitKind::JoinSimple,
            JoinStrategy::NaiveBatch(_) => HitKind::JoinNaive,
            JoinStrategy::SmartBatch { rows, cols } => HitKind::JoinSmart { rows, cols },
        }
    }
}

/// One crowd join execution.
#[derive(Debug, Clone)]
pub struct JoinOp {
    pub strategy: JoinStrategy,
    pub combiner: CombinerKind,
    pub assignments: Option<u32>,
    pub limit_secs: f64,
}

impl Default for JoinOp {
    fn default() -> Self {
        JoinOp {
            strategy: JoinStrategy::NaiveBatch(5),
            combiner: CombinerKind::MajorityVote,
            assignments: None,
            limit_secs: DEFAULT_ROUND_LIMIT_SECS,
        }
    }
}

/// Result of a join run.
#[derive(Debug)]
pub struct JoinOutcome {
    /// Matching (left_idx, right_idx) pairs, ascending.
    pub matches: Vec<(usize, usize)>,
    /// HITs posted by this run.
    pub hits_posted: usize,
    /// Raw per-pair votes for quality analysis (§3.3.3's per-worker
    /// accuracy regression needs worker identities).
    pub pair_votes: HashMap<(usize, usize), Vec<(WorkerId, bool)>>,
}

impl JoinOp {
    /// Join `left` × `right`, optionally restricted to `candidates`
    /// (pairs that passed feature filtering). Returns combined matches.
    pub fn run<B: CrowdBackend + ?Sized>(
        &self,
        backend: &mut B,
        left: &[ItemId],
        right: &[ItemId],
        candidates: Option<&HashSet<(usize, usize)>>,
    ) -> Result<JoinOutcome> {
        let pairs: Vec<(usize, usize)> = (0..left.len())
            .flat_map(|i| (0..right.len()).map(move |j| (i, j)))
            .filter(|p| candidates.is_none_or(|c| c.contains(p)))
            .collect();
        if pairs.is_empty() {
            return Ok(JoinOutcome {
                matches: Vec::new(),
                hits_posted: 0,
                pair_votes: HashMap::new(),
            });
        }

        // Compile pairs into HITs; record, per HIT, which pair each
        // question addresses.
        let (specs, layout) = self.compile(left, right, &pairs);
        let num_hits = specs.len();
        let round = Round::post(backend, specs, self.assignments);
        let group = round.group();
        let by_hit = round.complete(backend, self.limit_secs)?;

        let mut pair_votes: HashMap<(usize, usize), Vec<(WorkerId, bool)>> = HashMap::new();
        for (spec_idx, hit_id) in backend.group_hits(group).into_iter().enumerate() {
            let Some(assignments) = by_hit.get(&hit_id) else {
                continue;
            };
            for a in assignments {
                for (qi, ans) in a.answers.iter().enumerate() {
                    if let Some(b) = ans.as_bool() {
                        let pair = layout[spec_idx][qi];
                        pair_votes.entry(pair).or_default().push((a.worker, b));
                    }
                }
            }
        }

        let matches = self.combine(&pair_votes);
        Ok(JoinOutcome {
            matches,
            hits_posted: num_hits,
            pair_votes,
        })
    }

    /// Compile candidate pairs into HIT specs plus a per-HIT layout of
    /// which pair each question refers to.
    fn compile(
        &self,
        left: &[ItemId],
        right: &[ItemId],
        pairs: &[(usize, usize)],
    ) -> (Vec<HitSpec>, Vec<Vec<(usize, usize)>>) {
        let q = |&(i, j): &(usize, usize)| Question::JoinPair {
            left: left[i],
            right: right[j],
        };
        match self.strategy {
            JoinStrategy::Simple => {
                let specs = pairs
                    .iter()
                    .map(|p| HitSpec::new(vec![q(p)], HitKind::JoinSimple))
                    .collect();
                let layout = pairs.iter().map(|&p| vec![p]).collect();
                (specs, layout)
            }
            JoinStrategy::NaiveBatch(b) => {
                assert!(b > 0, "batch size must be positive");
                let mut specs = Vec::new();
                let mut layout = Vec::new();
                for chunk in pairs.chunks(b) {
                    specs.push(HitSpec::new(
                        chunk.iter().map(q).collect(),
                        HitKind::JoinNaive,
                    ));
                    layout.push(chunk.to_vec());
                }
                (specs, layout)
            }
            JoinStrategy::SmartBatch { rows, cols } => {
                assert!(rows > 0 && cols > 0, "grid dims must be positive");
                // Group candidate pairs into r×s grids: take left items
                // (that still have pending pairs) in chunks of `rows`,
                // then chunk their pending right items by `cols`.
                let mut by_left: HashMap<usize, Vec<usize>> = HashMap::new();
                for &(i, j) in pairs {
                    by_left.entry(i).or_default().push(j);
                }
                let mut lefts: Vec<usize> = by_left.keys().copied().collect();
                lefts.sort_unstable();
                let kind = HitKind::JoinSmart { rows, cols };
                let mut specs = Vec::new();
                let mut layout = Vec::new();
                for lchunk in lefts.chunks(rows) {
                    // Right items paired with any left in this chunk.
                    let mut rights: Vec<usize> = lchunk
                        .iter()
                        .flat_map(|l| by_left[l].iter().copied())
                        .collect();
                    rights.sort_unstable();
                    rights.dedup();
                    for rchunk in rights.chunks(cols) {
                        let mut questions = Vec::new();
                        let mut lay = Vec::new();
                        for &i in lchunk {
                            for &j in rchunk {
                                // Only candidate crossings are scored.
                                if by_left[&i].contains(&j) {
                                    questions.push(q(&(i, j)));
                                    lay.push((i, j));
                                }
                            }
                        }
                        if !questions.is_empty() {
                            specs.push(HitSpec::new(questions, kind));
                            layout.push(lay);
                        }
                    }
                }
                (specs, layout)
            }
        }
    }

    /// Fuse votes into the final match set.
    fn combine(
        &self,
        pair_votes: &HashMap<(usize, usize), Vec<(WorkerId, bool)>>,
    ) -> Vec<(usize, usize)> {
        let mut matches: Vec<(usize, usize)> = match self.combiner {
            CombinerKind::MajorityVote => pair_votes
                .iter()
                .filter(|(_, votes)| {
                    let bools: Vec<bool> = votes.iter().map(|&(_, b)| b).collect();
                    majority_vote_bool(&bools)
                })
                .map(|(&p, _)| p)
                .collect(),
            CombinerKind::QualityAdjust => {
                let mut interner = WorkerInterner::new();
                let mut pair_ids: Vec<(usize, usize)> = pair_votes.keys().copied().collect();
                pair_ids.sort_unstable();
                let index: HashMap<(usize, usize), usize> =
                    pair_ids.iter().enumerate().map(|(n, &p)| (p, n)).collect();
                let mut obs = Vec::new();
                for (&p, votes) in pair_votes {
                    for &(w, b) in votes {
                        obs.push(LabelObservation {
                            worker: interner.intern(w),
                            item: index[&p],
                            label: usize::from(b),
                        });
                    }
                }
                // The paper's configuration: 5 EM iterations, false
                // negatives penalized twice as heavily (§3.3.2).
                let qa = QualityAdjust::new(QualityAdjustConfig::paper_join());
                let out = qa.run(&obs);
                pair_ids
                    .into_iter()
                    .filter(|p| out.decision_bool(index[p]))
                    .collect()
            }
        };
        matches.sort_unstable();
        matches
    }
}

/// Identify spam-scoring workers from raw join votes via the
/// QualityAdjust EM (§6: the QA output "is able to effectively
/// eliminate and identify workers who generate spam answers"; in a
/// non-experimental deployment these workers are banned via
/// [`CrowdBackend::ban_workers`]).
pub fn identify_spammers(
    pair_votes: &HashMap<(usize, usize), Vec<(WorkerId, bool)>>,
    threshold: f64,
) -> Vec<WorkerId> {
    identify_spammers_with_min_answers(pair_votes, threshold, 8)
}

/// [`identify_spammers`] with an explicit evidence floor: workers with
/// fewer than `min_answers` votes are never flagged (their confusion
/// matrices are too poorly estimated to condemn them).
pub fn identify_spammers_with_min_answers(
    pair_votes: &HashMap<(usize, usize), Vec<(WorkerId, bool)>>,
    threshold: f64,
    min_answers: usize,
) -> Vec<WorkerId> {
    let mut interner = WorkerInterner::new();
    let mut reverse: Vec<WorkerId> = Vec::new();
    let mut pair_ids: Vec<(usize, usize)> = pair_votes.keys().copied().collect();
    pair_ids.sort_unstable();
    let index: HashMap<(usize, usize), usize> =
        pair_ids.iter().enumerate().map(|(n, &p)| (p, n)).collect();
    let mut obs = Vec::new();
    for (&pair, votes) in pair_votes {
        for &(w, b) in votes {
            let id = interner.intern(w);
            if id == reverse.len() {
                reverse.push(w);
            }
            obs.push(LabelObservation {
                worker: id,
                item: index[&pair],
                label: usize::from(b),
            });
        }
    }
    let qa = QualityAdjust::new(QualityAdjustConfig::paper_join());
    let out = qa.run(&obs);
    out.spammers(threshold)
        .into_iter()
        .filter(|&id| out.worker_answer_counts[id] >= min_answers)
        .map(|id| reverse[id])
        .collect()
}

pub mod feature_filter {
    //! §3.2: POSSIBLY-clause feature filtering.

    use super::*;
    use qurk_crowd::question::UNKNOWN;
    use qurk_metrics::kappa::{counts_from_labels, fleiss_kappa};

    /// A feature to extract: oracle name + option count (UNKNOWN
    /// excluded).
    #[derive(Debug, Clone)]
    pub struct FeatureSpec {
        pub name: String,
        pub num_options: usize,
    }

    /// Configuration for the feature-filter pipeline.
    #[derive(Debug, Clone)]
    pub struct FeatureFilterConfig {
        /// Tuples per extraction HIT.
        pub batch_size: usize,
        /// Ask all features of an item at once (§3.3.4's combined
        /// interface) or separately.
        pub combined_interface: bool,
        pub assignments: Option<u32>,
        /// Features with Fleiss κ below this are dropped as ambiguous.
        pub kappa_threshold: f64,
        /// Features whose estimated selectivity exceeds this are
        /// dropped as not worth their extraction cost.
        pub max_selectivity: f64,
        /// Leave-one-out: drop a feature that kills more than this
        /// fraction of sample join results.
        pub error_threshold: f64,
        /// Fraction of items sampled for the κ/selectivity estimates
        /// (the paper samples 25%).
        pub sample_fraction: f64,
        /// Run the (HIT-costly) leave-one-out error test.
        pub leave_one_out: bool,
        pub limit_secs: f64,
    }

    impl Default for FeatureFilterConfig {
        fn default() -> Self {
            FeatureFilterConfig {
                batch_size: 5,
                combined_interface: true,
                assignments: None,
                kappa_threshold: 0.20,
                max_selectivity: 0.85,
                error_threshold: 0.15,
                sample_fraction: 0.25,
                leave_one_out: false,
                limit_secs: DEFAULT_ROUND_LIMIT_SECS,
            }
        }
    }

    /// Per-table extraction results.
    #[derive(Debug, Clone, Default)]
    pub struct Extraction {
        /// `values[item_idx][feature_idx]`: combined value; `None` is
        /// UNKNOWN (matches everything, §2.4).
        pub values: Vec<Vec<Option<usize>>>,
        /// Raw votes (UNKNOWN mapped to `num_options`) for κ.
        pub votes: Vec<Vec<Vec<usize>>>,
    }

    /// Outcome of the full pipeline.
    #[derive(Debug)]
    pub struct FeatureFilterOutcome {
        /// Indices of features kept after the three tests.
        pub selected: Vec<usize>,
        /// Why each feature was kept/dropped (diagnostics).
        pub decisions: Vec<String>,
        /// Candidate (left_idx, right_idx) pairs passing the selected
        /// filters.
        pub candidates: HashSet<(usize, usize)>,
        /// κ per feature (left and right tables pooled).
        pub kappas: Vec<f64>,
        /// Estimated selectivity per feature.
        pub selectivities: Vec<f64>,
        pub hits_posted: usize,
    }

    /// The feature-filter pipeline driver.
    #[derive(Debug, Clone, Default)]
    pub struct FeatureFilter {
        pub config: FeatureFilterConfig,
    }

    impl FeatureFilter {
        pub fn new(config: FeatureFilterConfig) -> Self {
            FeatureFilter { config }
        }

        /// Extract `features` for every item of one table.
        pub fn extract<B: CrowdBackend + ?Sized>(
            &self,
            backend: &mut B,
            features: &[FeatureSpec],
            items: &[ItemId],
        ) -> Result<(Extraction, usize)> {
            if items.is_empty() || features.is_empty() {
                return Ok((Extraction::default(), 0));
            }
            let kind = if self.config.combined_interface {
                HitKind::FeatureCombined
            } else {
                HitKind::FeatureSingle
            };
            let streams: Vec<Vec<Question>> = features
                .iter()
                .map(|f| {
                    items
                        .iter()
                        .map(|&item| Question::Feature {
                            item,
                            feature: f.name.clone(),
                            num_options: f.num_options,
                        })
                        .collect()
                })
                .collect();
            let specs = if self.config.combined_interface {
                crate::hit::batch::combine_questions(streams, self.config.batch_size, kind)
            } else {
                let mut all = Vec::new();
                for s in streams {
                    all.extend(crate::hit::batch::merge_into_hits(
                        s,
                        self.config.batch_size,
                        kind,
                    ));
                }
                all
            };
            let hits_posted = specs.len();
            let round = Round::post(backend, specs, self.config.assignments);
            let group = round.group();
            let by_hit = round.complete(backend, self.config.limit_secs)?;

            // Flattened question order -> (item_idx, feature_idx).
            let nf = features.len();
            let flat: Vec<(usize, usize)> = if self.config.combined_interface {
                (0..items.len())
                    .flat_map(|ii| (0..nf).map(move |fi| (ii, fi)))
                    .collect()
            } else {
                (0..nf)
                    .flat_map(|fi| (0..items.len()).map(move |ii| (ii, fi)))
                    .collect()
            };

            let mut votes: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); nf]; items.len()];
            let mut qcursor = 0usize;
            for hit_id in backend.group_hits(group) {
                let nq = backend.hit_question_count(hit_id);
                if let Some(assignments) = by_hit.get(&hit_id) {
                    for a in assignments {
                        for (qi, ans) in a.answers.iter().enumerate() {
                            if let Some(c) = ans.as_category() {
                                let (ii, fi) = flat[qcursor + qi];
                                let k = features[fi].num_options;
                                votes[ii][fi].push(if c == UNKNOWN { k } else { c });
                            }
                        }
                    }
                }
                qcursor += nq;
            }

            // Majority-combine each cell; UNKNOWN majority -> None.
            let values: Vec<Vec<Option<usize>>> = votes
                .iter()
                .map(|row| {
                    row.iter()
                        .enumerate()
                        .map(|(fi, vs)| {
                            let k = features[fi].num_options;
                            let outcome = qurk_combine::majority_vote(vs);
                            match outcome.winner {
                                Some(c) if c < k => Some(c),
                                _ => None,
                            }
                        })
                        .collect()
                })
                .collect();

            Ok((Extraction { values, votes }, hits_posted))
        }

        /// Pooled Fleiss κ for one feature across both tables' votes.
        /// UNKNOWN answers participate as their own category.
        pub fn kappa_for(
            feature_idx: usize,
            num_options: usize,
            left: &Extraction,
            right: &Extraction,
        ) -> f64 {
            let labels: Vec<Vec<usize>> = left
                .votes
                .iter()
                .chain(right.votes.iter())
                .map(|row| row[feature_idx].clone())
                .collect();
            let counts = counts_from_labels(&labels, num_options + 1);
            fleiss_kappa(&counts).unwrap_or(0.0)
        }

        /// §3.2's selectivity estimate
        /// `σᵢ = Σ_j ρSij × ρRij` from extracted values, counting
        /// UNKNOWN as matching everything.
        pub fn selectivity_for(
            feature_idx: usize,
            num_options: usize,
            left: &Extraction,
            right: &Extraction,
        ) -> f64 {
            let hist = |e: &Extraction| -> (Vec<f64>, f64) {
                let mut counts = vec![0.0; num_options];
                let mut unknown = 0.0;
                let mut total = 0.0;
                for row in &e.values {
                    total += 1.0;
                    match row[feature_idx] {
                        Some(v) => counts[v] += 1.0,
                        None => unknown += 1.0,
                    }
                }
                if total == 0.0 {
                    return (counts, 0.0);
                }
                for c in counts.iter_mut() {
                    *c /= total;
                }
                (counts, unknown / total)
            };
            let (l, lu) = hist(left);
            let (r, ru) = hist(right);
            // P(pair passes) = Σ_j ρL_j ρR_j + P(either side UNKNOWN).
            let agree: f64 = l.iter().zip(&r).map(|(a, b)| a * b).sum();
            (agree + lu + ru - lu * ru).min(1.0)
        }

        /// Candidate pairs under the selected features: pass iff every
        /// selected feature agrees or either side is UNKNOWN. Runs via
        /// the hash-partitioned generator in [`crate::ops::partition`],
        /// which produces the same set as the full |L|×|R| scan.
        pub fn candidates(
            selected: &[usize],
            left: &Extraction,
            right: &Extraction,
        ) -> HashSet<(usize, usize)> {
            crate::ops::partition::candidate_pairs(selected, &left.values, &right.values)
                .into_iter()
                .collect()
        }

        /// Run the full pipeline: sample-extract, test features
        /// (κ, selectivity, optional leave-one-out), extract the
        /// survivors on the full tables, and compute candidates.
        pub fn run<B: CrowdBackend + ?Sized>(
            &self,
            backend: &mut B,
            features: &[FeatureSpec],
            left_items: &[ItemId],
            right_items: &[ItemId],
        ) -> Result<FeatureFilterOutcome> {
            let mut hits_posted = 0usize;

            // --- Phase 1: extraction on a sample. ---
            let sample_n = |n: usize| {
                ((n as f64 * self.config.sample_fraction).ceil() as usize).clamp(1.min(n), n)
            };
            let ls = &left_items[..sample_n(left_items.len())];
            let rs = &right_items[..sample_n(right_items.len())];
            let (left_sample, h1) = self.extract(backend, features, ls)?;
            let (right_sample, h2) = self.extract(backend, features, rs)?;
            hits_posted += h1 + h2;

            // --- Phase 2: per-feature tests. ---
            let mut kappas = Vec::with_capacity(features.len());
            let mut selectivities = Vec::with_capacity(features.len());
            let mut selected = Vec::new();
            let mut decisions = Vec::with_capacity(features.len());
            for (fi, f) in features.iter().enumerate() {
                let kappa = Self::kappa_for(fi, f.num_options, &left_sample, &right_sample);
                let sel = Self::selectivity_for(fi, f.num_options, &left_sample, &right_sample);
                kappas.push(kappa);
                selectivities.push(sel);
                if kappa < self.config.kappa_threshold {
                    decisions.push(format!(
                        "{}: dropped (ambiguous: kappa {kappa:.2} < {:.2})",
                        f.name, self.config.kappa_threshold
                    ));
                } else if sel > self.config.max_selectivity {
                    decisions.push(format!(
                        "{}: dropped (not selective: sigma {sel:.2} > {:.2})",
                        f.name, self.config.max_selectivity
                    ));
                } else {
                    decisions.push(format!(
                        "{}: kept (kappa {kappa:.2}, sigma {sel:.2})",
                        f.name
                    ));
                    selected.push(fi);
                }
            }

            // --- Phase 3: leave-one-out error test on the sample. ---
            if self.config.leave_one_out && selected.len() > 1 {
                let join = JoinOp {
                    strategy: JoinStrategy::NaiveBatch(self.config.batch_size),
                    combiner: CombinerKind::MajorityVote,
                    assignments: self.config.assignments,
                    limit_secs: self.config.limit_secs,
                };
                let mut kept = Vec::new();
                for &fi in &selected {
                    let others: Vec<usize> =
                        selected.iter().copied().filter(|&x| x != fi).collect();
                    let cand_minus = Self::candidates(&others, &left_sample, &right_sample);
                    let out = join.run(backend, ls, rs, Some(&cand_minus))?;
                    hits_posted += out.hits_posted;
                    let j_minus: HashSet<(usize, usize)> = out.matches.iter().copied().collect();
                    if j_minus.is_empty() {
                        kept.push(fi);
                        continue;
                    }
                    let killed = j_minus
                        .iter()
                        .filter(|&&(i, j)| {
                            !(match (left_sample.values[i][fi], right_sample.values[j][fi]) {
                                (Some(a), Some(b)) => a == b,
                                _ => true,
                            })
                        })
                        .count();
                    let frac = killed as f64 / j_minus.len() as f64;
                    if frac > self.config.error_threshold {
                        decisions[fi] = format!(
                            "{}: dropped (leave-one-out: kills {frac:.2} of sample joins)",
                            features[fi].name
                        );
                    } else {
                        kept.push(fi);
                    }
                }
                selected = kept;
            }

            // --- Phase 4: full extraction of surviving features. ---
            let survivors: Vec<FeatureSpec> =
                selected.iter().map(|&fi| features[fi].clone()).collect();
            let (mut left_full, h3) = self.extract(backend, &survivors, left_items)?;
            let (mut right_full, h4) = self.extract(backend, &survivors, right_items)?;
            hits_posted += h3 + h4;

            // Re-map survivor columns back to original feature indices
            // so `candidates` and reporting use consistent numbering.
            let remap = |e: &mut Extraction| {
                let n = e.values.len();
                let mut values = vec![vec![None; features.len()]; n];
                let mut votes = vec![vec![Vec::new(); features.len()]; n];
                for (col, &fi) in selected.iter().enumerate() {
                    for i in 0..n {
                        values[i][fi] = e.values[i][col];
                        votes[i][fi] = std::mem::take(&mut e.votes[i][col]);
                    }
                }
                e.values = values;
                e.votes = votes;
            };
            remap(&mut left_full);
            remap(&mut right_full);

            let candidates = Self::candidates(&selected, &left_full, &right_full);
            Ok(FeatureFilterOutcome {
                selected,
                decisions,
                candidates,
                kappas,
                selectivities,
                hits_posted,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::feature_filter::*;
    use super::*;
    use qurk_crowd::{CrowdConfig, EntityId, GroundTruth, Marketplace};

    /// Two tables of n items each, where left[i] matches right[i].
    fn join_market(n: usize, seed: u64) -> (Marketplace, Vec<ItemId>, Vec<ItemId>) {
        let mut gt = GroundTruth::new();
        let left = gt.new_items(n);
        let right = gt.new_items(n);
        for i in 0..n {
            gt.set_entity(left[i], EntityId(i as u64));
            gt.set_entity(right[i], EntityId(i as u64));
        }
        gt.set_default_similarity(0.05);
        let m = Marketplace::new(&CrowdConfig::default().with_seed(seed), gt);
        (m, left, right)
    }

    fn accuracy(matches: &[(usize, usize)], n: usize) -> (usize, usize) {
        let tp = matches.iter().filter(|&&(i, j)| i == j).count();
        let fp = matches.len() - tp;
        let _ = n;
        (tp, fp)
    }

    #[test]
    fn simple_join_finds_matches() {
        let (mut m, l, r) = join_market(10, 1);
        let op = JoinOp {
            strategy: JoinStrategy::Simple,
            ..Default::default()
        };
        let out = op.run(&mut m, &l, &r, None).unwrap();
        assert_eq!(out.hits_posted, 100);
        // Per-vote TP is ~78-85% (paper-calibrated); MV over 5 votes
        // recovers most but not all matches.
        let (tp, fp) = accuracy(&out.matches, 10);
        assert!(tp >= 8, "tp={tp}");
        assert!(fp <= 1, "fp={fp}");
    }

    #[test]
    fn naive_batch_reduces_hits() {
        let (mut m, l, r) = join_market(10, 2);
        // QA combiner, as the paper recommends for batched schemes.
        let op = JoinOp {
            strategy: JoinStrategy::NaiveBatch(5),
            combiner: CombinerKind::QualityAdjust,
            ..Default::default()
        };
        let out = op.run(&mut m, &l, &r, None).unwrap();
        assert_eq!(out.hits_posted, 20); // 100 / 5
        let (tp, _) = accuracy(&out.matches, 10);
        assert!(tp >= 7, "tp={tp}");
    }

    #[test]
    fn smart_batch_grid_hit_count() {
        let (mut m, l, r) = join_market(9, 3);
        let op = JoinOp {
            strategy: JoinStrategy::SmartBatch { rows: 3, cols: 3 },
            combiner: CombinerKind::QualityAdjust,
            ..Default::default()
        };
        let out = op.run(&mut m, &l, &r, None).unwrap();
        assert_eq!(out.hits_posted, 9); // 81 / 9
        let (tp, fp) = accuracy(&out.matches, 9);
        assert!(tp >= 6, "tp={tp}");
        assert!(fp <= 2, "fp={fp}");
    }

    #[test]
    fn qa_beats_mv_under_spam() {
        // Heavier spam population: QA should retain at least MV's TP.
        let build = || {
            let mut gt = GroundTruth::new();
            let left = gt.new_items(12);
            let right = gt.new_items(12);
            for i in 0..12 {
                gt.set_entity(left[i], EntityId(i as u64));
                gt.set_entity(right[i], EntityId(i as u64));
            }
            let mut cfg = CrowdConfig::default().with_seed(77).with_assignments(5);
            cfg.workers.spammer_fraction = 0.25;
            (Marketplace::new(&cfg, gt), left, right)
        };
        let (mut m1, l, r) = build();
        let mv = JoinOp {
            strategy: JoinStrategy::SmartBatch { rows: 3, cols: 3 },
            combiner: CombinerKind::MajorityVote,
            ..Default::default()
        }
        .run(&mut m1, &l, &r, None)
        .unwrap();
        let (mut m2, l, r) = build();
        let qa = JoinOp {
            strategy: JoinStrategy::SmartBatch { rows: 3, cols: 3 },
            combiner: CombinerKind::QualityAdjust,
            ..Default::default()
        }
        .run(&mut m2, &l, &r, None)
        .unwrap();
        let (tp_mv, _) = accuracy(&mv.matches, 12);
        let (tp_qa, _) = accuracy(&qa.matches, 12);
        assert!(tp_qa >= tp_mv, "QA {tp_qa} vs MV {tp_mv}");
    }

    #[test]
    fn candidate_mask_restricts_pairs() {
        let (mut m, l, r) = join_market(6, 4);
        let candidates: HashSet<(usize, usize)> =
            (0..6).map(|i| (i, i)).chain([(0, 1), (1, 0)]).collect();
        let op = JoinOp::default();
        let out = op.run(&mut m, &l, &r, Some(&candidates)).unwrap();
        // 8 candidates / batch 5 -> 2 HITs.
        assert_eq!(out.hits_posted, 2);
        for &(i, j) in &out.matches {
            assert!(candidates.contains(&(i, j)));
        }
        let (tp, _) = accuracy(&out.matches, 6);
        assert!(tp >= 5);
    }

    #[test]
    fn empty_candidates_is_noop() {
        let (mut m, l, r) = join_market(3, 5);
        let out = JoinOp::default()
            .run(&mut m, &l, &r, Some(&HashSet::new()))
            .unwrap();
        assert!(out.matches.is_empty());
        assert_eq!(out.hits_posted, 0);
        assert_eq!(m.hits_posted(), 0);
    }

    // ---- feature filtering ----

    /// Market where items carry a crisp "color" feature and an
    /// ambiguous "mood" feature.
    fn feature_market(n: usize) -> (Marketplace, Vec<ItemId>, Vec<ItemId>) {
        let mut gt = GroundTruth::new();
        gt.define_feature("color", &["red", "green", "blue"]);
        gt.define_feature("mood", &["happy", "sad"]);
        let left = gt.new_items(n);
        let right = gt.new_items(n);
        for i in 0..n {
            gt.set_entity(left[i], EntityId(i as u64));
            gt.set_entity(right[i], EntityId(i as u64));
            for &item in &[left[i], right[i]] {
                gt.set_feature_simple(item, "color", i % 3, 0.04);
                // mood is pure noise: uniform report probs.
                gt.set_feature(
                    item,
                    "mood",
                    qurk_crowd::truth::FeatureTruth {
                        value: 0,
                        report_probs: vec![0.5, 0.5],
                    },
                );
            }
        }
        let m = Marketplace::new(&CrowdConfig::default().with_seed(9), gt);
        (m, left, right)
    }

    fn specs() -> Vec<FeatureSpec> {
        vec![
            FeatureSpec {
                name: "color".into(),
                num_options: 3,
            },
            FeatureSpec {
                name: "mood".into(),
                num_options: 2,
            },
        ]
    }

    #[test]
    fn extraction_recovers_crisp_features() {
        let (mut m, l, _) = feature_market(9);
        let ff = FeatureFilter::default();
        let (ex, hits) = ff.extract(&mut m, &specs(), &l).unwrap();
        assert!(hits > 0);
        let correct = ex
            .values
            .iter()
            .enumerate()
            .filter(|(i, row)| row[0] == Some(i % 3))
            .count();
        assert!(correct >= 8, "correct={correct}/9");
    }

    #[test]
    fn kappa_separates_crisp_from_ambiguous() {
        let (mut m, l, r) = feature_market(12);
        let ff = FeatureFilter::default();
        let (le, _) = ff.extract(&mut m, &specs(), &l).unwrap();
        let (re, _) = ff.extract(&mut m, &specs(), &r).unwrap();
        let k_color = FeatureFilter::kappa_for(0, 3, &le, &re);
        let k_mood = FeatureFilter::kappa_for(1, 2, &le, &re);
        assert!(k_color > 0.5, "color kappa={k_color}");
        assert!(k_mood < 0.2, "mood kappa={k_mood}");
    }

    #[test]
    fn selectivity_estimate_reasonable() {
        let (mut m, l, r) = feature_market(12);
        let ff = FeatureFilter::default();
        let (le, _) = ff.extract(&mut m, &specs(), &l).unwrap();
        let (re, _) = ff.extract(&mut m, &specs(), &r).unwrap();
        let sel = FeatureFilter::selectivity_for(0, 3, &le, &re);
        // 3 roughly equal color classes -> sigma ~ 1/3.
        assert!((0.2..=0.5).contains(&sel), "sel={sel}");
    }

    #[test]
    fn pipeline_drops_ambiguous_feature_and_prunes() {
        let (mut m, l, r) = feature_market(12);
        let ff = FeatureFilter::new(FeatureFilterConfig {
            sample_fraction: 0.5,
            ..Default::default()
        });
        let out = ff.run(&mut m, &specs(), &l, &r).unwrap();
        assert_eq!(out.selected, vec![0], "decisions: {:?}", out.decisions);
        // All true matches survive filtering.
        for i in 0..12 {
            assert!(
                out.candidates.contains(&(i, i)),
                "true match {i} filtered away"
            );
        }
        // And the cross product shrank substantially.
        assert!(
            out.candidates.len() < 12 * 12 / 2,
            "candidates={}",
            out.candidates.len()
        );
    }

    #[test]
    fn unknowns_act_as_wildcards() {
        let left = Extraction {
            values: vec![vec![None], vec![Some(1)]],
            votes: vec![],
        };
        let right = Extraction {
            values: vec![vec![Some(0)], vec![Some(2)]],
            votes: vec![],
        };
        let c = FeatureFilter::candidates(&[0], &left, &right);
        assert!(c.contains(&(0, 0)));
        assert!(c.contains(&(0, 1)));
        assert!(!c.contains(&(1, 0)));
        assert!(!c.contains(&(1, 1)));
    }
}
