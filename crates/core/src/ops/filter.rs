//! The crowd filter operator (§2.1).
//!
//! Asks the crowd a Yes/No question per tuple; batches multiple tuples
//! per HIT (*merging*) and, via [`FilterOp::run_combined`], multiple
//! predicates per tuple (*combining*). Answers are fused by
//! MajorityVote or QualityAdjust.

use std::collections::HashMap;

use qurk_combine::em::{LabelObservation, QualityAdjust, QualityAdjustConfig};
use qurk_combine::majority_vote_bool;
use qurk_crowd::question::{HitKind, Question};
use qurk_crowd::{ItemId, Marketplace};

use crate::error::Result;
use crate::hit::batch::{combine_questions, merge_into_hits};
use crate::hit::cache::TaskCache;
use crate::ops::common::{run_and_collect, WorkerInterner, DEFAULT_ROUND_LIMIT_SECS};
use crate::task::CombinerKind;

/// Configuration for one filter execution.
#[derive(Debug, Clone)]
pub struct FilterOp {
    /// Tuples per HIT (merging batch size).
    pub batch_size: usize,
    pub combiner: CombinerKind,
    /// Assignments per HIT; `None` uses the marketplace default.
    pub assignments: Option<u32>,
    /// Virtual-time budget.
    pub limit_secs: f64,
}

impl Default for FilterOp {
    fn default() -> Self {
        FilterOp {
            batch_size: 5,
            combiner: CombinerKind::MajorityVote,
            assignments: None,
            limit_secs: DEFAULT_ROUND_LIMIT_SECS,
        }
    }
}

impl FilterOp {
    /// Evaluate `predicate` on each item; returns pass/fail per input,
    /// consulting and populating the task cache.
    pub fn run(
        &self,
        market: &mut Marketplace,
        cache: &mut TaskCache,
        predicate: &str,
        items: &[ItemId],
    ) -> Result<Vec<bool>> {
        let results = self.run_combined(market, cache, &[predicate], items)?;
        Ok(results.into_iter().map(|mut v| v.pop().unwrap()).collect())
    }

    /// Evaluate several predicates on each item with *combining*: all
    /// predicates for a tuple share a HIT. Returns
    /// `out[item_idx][predicate_idx]`.
    pub fn run_combined(
        &self,
        market: &mut Marketplace,
        cache: &mut TaskCache,
        predicates: &[&str],
        items: &[ItemId],
    ) -> Result<Vec<Vec<bool>>> {
        assert!(!predicates.is_empty(), "need at least one predicate");
        let mut out = vec![vec![false; predicates.len()]; items.len()];

        // Cache pass: figure out which (item, predicate) cells still
        // need crowd work.
        let mut needed: Vec<usize> = Vec::new(); // item indices with >=1 uncached predicate
        let mut cached: HashMap<(usize, usize), bool> = HashMap::new();
        for (ii, &item) in items.iter().enumerate() {
            let mut all_cached = true;
            for (pi, &p) in predicates.iter().enumerate() {
                let q = Question::Filter {
                    item,
                    predicate: p.to_owned(),
                };
                match cache.get(&q).and_then(|a| a.as_bool()) {
                    Some(b) => {
                        cached.insert((ii, pi), b);
                    }
                    None => all_cached = false,
                }
            }
            if !all_cached {
                needed.push(ii);
            }
        }

        if !needed.is_empty() {
            let streams: Vec<Vec<Question>> = predicates
                .iter()
                .map(|&p| {
                    needed
                        .iter()
                        .map(|&ii| Question::Filter {
                            item: items[ii],
                            predicate: p.to_owned(),
                        })
                        .collect()
                })
                .collect();
            let specs = if predicates.len() == 1 {
                merge_into_hits(
                    streams.into_iter().next().unwrap(),
                    self.batch_size,
                    HitKind::Filter,
                )
            } else {
                combine_questions(streams, self.batch_size, HitKind::Filter)
            };
            let group = match self.assignments {
                Some(n) => market.post_group_with_assignments(specs.clone(), n),
                None => market.post_group(specs.clone()),
            };
            let by_hit = run_and_collect(market, group, self.limit_secs)?;

            // Gather votes per (item_idx, predicate_idx).
            let mut votes: HashMap<(usize, usize), Vec<(usize, bool)>> = HashMap::new();
            let mut interner = WorkerInterner::new();
            // Reconstruct question positions: specs preserve order.
            let hit_ids: Vec<_> = {
                let mut ids: Vec<_> = by_hit.keys().copied().collect();
                ids.sort_unstable();
                ids
            };
            // Map flattened question order -> (item_idx, predicate_idx).
            let flat: Vec<(usize, usize)> = if predicates.len() == 1 {
                needed.iter().map(|&ii| (ii, 0usize)).collect()
            } else {
                needed
                    .iter()
                    .flat_map(|&ii| (0..predicates.len()).map(move |pi| (ii, pi)))
                    .collect()
            };
            let mut qcursor = 0usize;
            for hit_id in hit_ids {
                let assignments = &by_hit[&hit_id];
                let nq = market.hit(hit_id).questions.len();
                for a in assignments {
                    let w = interner.intern(a.worker);
                    for (qi, ans) in a.answers.iter().enumerate() {
                        let (ii, pi) = flat[qcursor + qi];
                        if let Some(b) = ans.as_bool() {
                            votes.entry((ii, pi)).or_default().push((w, b));
                        }
                    }
                }
                qcursor += nq;
            }

            match self.combiner {
                CombinerKind::MajorityVote => {
                    for (&(ii, pi), vs) in &votes {
                        let bools: Vec<bool> = vs.iter().map(|&(_, b)| b).collect();
                        cached.insert((ii, pi), majority_vote_bool(&bools));
                    }
                }
                CombinerKind::QualityAdjust => {
                    // One EM run over all cells: cells are "items".
                    let mut cell_ids: HashMap<(usize, usize), usize> = HashMap::new();
                    let mut obs = Vec::new();
                    for (&cell, vs) in &votes {
                        let next = cell_ids.len();
                        let id = *cell_ids.entry(cell).or_insert(next);
                        for &(w, b) in vs {
                            obs.push(LabelObservation {
                                worker: w,
                                item: id,
                                label: usize::from(b),
                            });
                        }
                    }
                    let qa = QualityAdjust::new(QualityAdjustConfig::categorical(2));
                    let result = qa.run(&obs);
                    for (cell, id) in cell_ids {
                        cached.insert(cell, result.decision_bool(id));
                    }
                }
            }

            // Populate cache with the fresh combined answers.
            for &ii in &needed {
                for (pi, &p) in predicates.iter().enumerate() {
                    if let Some(&b) = cached.get(&(ii, pi)) {
                        let q = Question::Filter {
                            item: items[ii],
                            predicate: p.to_owned(),
                        };
                        cache.put(&q, qurk_crowd::Answer::Bool(b));
                    }
                }
            }
        }

        for ((ii, pi), b) in cached {
            out[ii][pi] = b;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurk_crowd::truth::PredicateTruth;
    use qurk_crowd::{CrowdConfig, GroundTruth};

    type PredSpec<'a> = &'a [(&'a str, fn(usize) -> bool)];

    fn market_with(n: usize, preds: PredSpec<'_>) -> (Marketplace, Vec<ItemId>) {
        let mut gt = GroundTruth::new();
        let items = gt.new_items(n);
        for (i, &item) in items.iter().enumerate() {
            for &(name, f) in preds {
                gt.set_predicate(
                    item,
                    name,
                    PredicateTruth {
                        value: f(i),
                        error_rate: 0.04,
                    },
                );
            }
        }
        (Marketplace::new(&CrowdConfig::default(), gt), items)
    }

    #[test]
    fn filters_match_truth() {
        let (mut m, items) = market_with(20, &[("even", |i| i % 2 == 0)]);
        let mut cache = TaskCache::new();
        let op = FilterOp::default();
        let out = op.run(&mut m, &mut cache, "even", &items).unwrap();
        let correct = out
            .iter()
            .enumerate()
            .filter(|(i, &b)| b == (i % 2 == 0))
            .count();
        assert!(correct >= 18, "correct={correct}/20");
    }

    #[test]
    fn merging_reduces_hits() {
        let (mut m, items) = market_with(20, &[("p", |_| true)]);
        let mut cache = TaskCache::new();
        let op = FilterOp {
            batch_size: 5,
            ..Default::default()
        };
        op.run(&mut m, &mut cache, "p", &items).unwrap();
        assert_eq!(m.hits_posted(), 4); // 20/5
    }

    #[test]
    fn combining_shares_hits_across_predicates() {
        let (mut m, items) = market_with(10, &[("a", |_| true), ("b", |i| i < 5)]);
        let mut cache = TaskCache::new();
        let op = FilterOp {
            batch_size: 5,
            ..Default::default()
        };
        let out = op
            .run_combined(&mut m, &mut cache, &["a", "b"], &items)
            .unwrap();
        // 10 tuples x 2 predicates, 5 tuples per HIT -> 2 HITs.
        assert_eq!(m.hits_posted(), 2);
        let a_pass = out.iter().filter(|r| r[0]).count();
        let b_pass = out.iter().filter(|r| r[1]).count();
        assert!(a_pass >= 9, "a_pass={a_pass}");
        assert!((4..=6).contains(&b_pass), "b_pass={b_pass}");
    }

    #[test]
    fn cache_avoids_reposting() {
        let (mut m, items) = market_with(10, &[("p", |i| i % 3 == 0)]);
        let mut cache = TaskCache::new();
        let op = FilterOp::default();
        let first = op.run(&mut m, &mut cache, "p", &items).unwrap();
        let hits_after_first = m.hits_posted();
        let second = op.run(&mut m, &mut cache, "p", &items).unwrap();
        assert_eq!(
            m.hits_posted(),
            hits_after_first,
            "second run should be free"
        );
        assert_eq!(first, second);
    }

    #[test]
    fn quality_adjust_combiner_works() {
        let (mut m, items) = market_with(20, &[("p", |i| i % 2 == 0)]);
        let mut cache = TaskCache::new();
        let op = FilterOp {
            combiner: CombinerKind::QualityAdjust,
            ..Default::default()
        };
        let out = op.run(&mut m, &mut cache, "p", &items).unwrap();
        let correct = out
            .iter()
            .enumerate()
            .filter(|(i, &b)| b == (i % 2 == 0))
            .count();
        assert!(correct >= 18, "correct={correct}/20");
    }

    #[test]
    fn empty_input_is_noop() {
        let (mut m, _) = market_with(1, &[("p", |_| true)]);
        let mut cache = TaskCache::new();
        let op = FilterOp::default();
        let out = op.run(&mut m, &mut cache, "p", &[]).unwrap();
        assert!(out.is_empty());
        assert_eq!(m.hits_posted(), 0);
    }
}
