//! The crowd filter operator (§2.1).
//!
//! Asks the crowd a Yes/No question per tuple; batches multiple tuples
//! per HIT (*merging*) and, via [`FilterOp::run_combined`], multiple
//! predicates per tuple (*combining*). Answers are fused by
//! MajorityVote or QualityAdjust.
//!
//! Re-ask avoidance is no longer this operator's job: wrap the backend
//! in a [`crate::backend::CachingBackend`] and identical filter HITs
//! are answered from the cache across queries.

use std::collections::HashMap;

use qurk_combine::em::{LabelObservation, QualityAdjust, QualityAdjustConfig};
use qurk_combine::majority_vote_bool;
use qurk_crowd::question::{HitKind, Question};
use qurk_crowd::ItemId;

use crate::backend::CrowdBackend;
use crate::error::Result;
use crate::hit::batch::{combine_questions, merge_into_hits};
use crate::ops::common::{Round, WorkerInterner, DEFAULT_ROUND_LIMIT_SECS};
use crate::task::CombinerKind;

/// Configuration for one filter execution.
#[derive(Debug, Clone)]
pub struct FilterOp {
    /// Tuples per HIT (merging batch size).
    pub batch_size: usize,
    pub combiner: CombinerKind,
    /// Assignments per HIT; `None` uses the backend default.
    pub assignments: Option<u32>,
    /// Virtual-time budget.
    pub limit_secs: f64,
}

impl Default for FilterOp {
    fn default() -> Self {
        FilterOp {
            batch_size: 5,
            combiner: CombinerKind::MajorityVote,
            assignments: None,
            limit_secs: DEFAULT_ROUND_LIMIT_SECS,
        }
    }
}

impl FilterOp {
    /// Evaluate `predicate` on each item; returns pass/fail per input.
    pub fn run<B: CrowdBackend + ?Sized>(
        &self,
        backend: &mut B,
        predicate: &str,
        items: &[ItemId],
    ) -> Result<Vec<bool>> {
        let results = self.run_combined(backend, &[predicate], items)?;
        // lint:allow(unwrap): run_combined returns one verdict per predicate and we passed exactly one
        Ok(results.into_iter().map(|mut v| v.pop().unwrap()).collect())
    }

    /// Evaluate several predicates on each item with *combining*: all
    /// predicates for a tuple share a HIT. Returns
    /// `out[item_idx][predicate_idx]`.
    pub fn run_combined<B: CrowdBackend + ?Sized>(
        &self,
        backend: &mut B,
        predicates: &[&str],
        items: &[ItemId],
    ) -> Result<Vec<Vec<bool>>> {
        assert!(!predicates.is_empty(), "need at least one predicate");
        let mut out = vec![vec![false; predicates.len()]; items.len()];
        if items.is_empty() {
            return Ok(out);
        }

        let streams: Vec<Vec<Question>> = predicates
            .iter()
            .map(|&p| {
                items
                    .iter()
                    .map(|&item| Question::Filter {
                        item,
                        predicate: p.to_owned(),
                    })
                    .collect()
            })
            .collect();
        let specs = if predicates.len() == 1 {
            merge_into_hits(
                // lint:allow(unwrap): one stream per predicate, and this branch has exactly one
                streams.into_iter().next().unwrap(),
                self.batch_size,
                HitKind::Filter,
            )
        } else {
            combine_questions(streams, self.batch_size, HitKind::Filter)
        };
        let round = Round::post(backend, specs, self.assignments);
        let group = round.group();
        let by_hit = round.complete(backend, self.limit_secs)?;

        // Gather votes per (item_idx, predicate_idx). The group's HITs
        // in spec order carry the flattened question stream.
        let mut votes: HashMap<(usize, usize), Vec<(usize, bool)>> = HashMap::new();
        let mut interner = WorkerInterner::new();
        // Map flattened question order -> (item_idx, predicate_idx).
        let flat: Vec<(usize, usize)> = if predicates.len() == 1 {
            (0..items.len()).map(|ii| (ii, 0usize)).collect()
        } else {
            (0..items.len())
                .flat_map(|ii| (0..predicates.len()).map(move |pi| (ii, pi)))
                .collect()
        };
        let mut qcursor = 0usize;
        for hit_id in backend.group_hits(group) {
            let nq = backend.hit_question_count(hit_id);
            if let Some(assignments) = by_hit.get(&hit_id) {
                for a in assignments {
                    let w = interner.intern(a.worker);
                    for (qi, ans) in a.answers.iter().enumerate() {
                        let (ii, pi) = flat[qcursor + qi];
                        if let Some(b) = ans.as_bool() {
                            votes.entry((ii, pi)).or_default().push((w, b));
                        }
                    }
                }
            }
            qcursor += nq;
        }

        match self.combiner {
            CombinerKind::MajorityVote => {
                for (&(ii, pi), vs) in &votes {
                    let bools: Vec<bool> = vs.iter().map(|&(_, b)| b).collect();
                    out[ii][pi] = majority_vote_bool(&bools);
                }
            }
            CombinerKind::QualityAdjust => {
                // One EM run over all cells: cells are "items".
                let mut cell_ids: HashMap<(usize, usize), usize> = HashMap::new();
                let mut obs = Vec::new();
                for (&cell, vs) in &votes {
                    let next = cell_ids.len();
                    let id = *cell_ids.entry(cell).or_insert(next);
                    for &(w, b) in vs {
                        obs.push(LabelObservation {
                            worker: w,
                            item: id,
                            label: usize::from(b),
                        });
                    }
                }
                let qa = QualityAdjust::new(QualityAdjustConfig::categorical(2));
                let result = qa.run(&obs);
                for ((ii, pi), id) in cell_ids {
                    out[ii][pi] = result.decision_bool(id);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CachingBackend;
    use qurk_crowd::truth::PredicateTruth;
    use qurk_crowd::{CrowdConfig, GroundTruth, Marketplace};

    type PredSpec<'a> = &'a [(&'a str, fn(usize) -> bool)];

    fn market_with(n: usize, preds: PredSpec<'_>) -> (Marketplace, Vec<ItemId>) {
        let mut gt = GroundTruth::new();
        let items = gt.new_items(n);
        for (i, &item) in items.iter().enumerate() {
            for &(name, f) in preds {
                gt.set_predicate(
                    item,
                    name,
                    PredicateTruth {
                        value: f(i),
                        error_rate: 0.04,
                    },
                );
            }
        }
        (Marketplace::new(&CrowdConfig::default(), gt), items)
    }

    #[test]
    fn filters_match_truth() {
        let (mut m, items) = market_with(20, &[("even", |i| i % 2 == 0)]);
        let op = FilterOp::default();
        let out = op.run(&mut m, "even", &items).unwrap();
        let correct = out
            .iter()
            .enumerate()
            .filter(|(i, &b)| b == (i % 2 == 0))
            .count();
        assert!(correct >= 18, "correct={correct}/20");
    }

    #[test]
    fn merging_reduces_hits() {
        let (mut m, items) = market_with(20, &[("p", |_| true)]);
        let op = FilterOp {
            batch_size: 5,
            ..Default::default()
        };
        op.run(&mut m, "p", &items).unwrap();
        assert_eq!(m.hits_posted(), 4); // 20/5
    }

    #[test]
    fn combining_shares_hits_across_predicates() {
        let (mut m, items) = market_with(10, &[("a", |_| true), ("b", |i| i < 5)]);
        let op = FilterOp {
            batch_size: 5,
            ..Default::default()
        };
        let out = op.run_combined(&mut m, &["a", "b"], &items).unwrap();
        // 10 tuples x 2 predicates, 5 tuples per HIT -> 2 HITs.
        assert_eq!(m.hits_posted(), 2);
        let a_pass = out.iter().filter(|r| r[0]).count();
        let b_pass = out.iter().filter(|r| r[1]).count();
        assert!(a_pass >= 9, "a_pass={a_pass}");
        assert!((4..=6).contains(&b_pass), "b_pass={b_pass}");
    }

    #[test]
    fn caching_backend_avoids_reposting() {
        let (m, items) = market_with(10, &[("p", |i| i % 3 == 0)]);
        let mut backend = CachingBackend::new(m);
        let op = FilterOp::default();
        let first = op.run(&mut backend, "p", &items).unwrap();
        let hits_after_first = backend.hits_posted();
        let second = op.run(&mut backend, "p", &items).unwrap();
        assert_eq!(
            backend.hits_posted(),
            hits_after_first,
            "second run should be free"
        );
        assert_eq!(first, second);
    }

    #[test]
    fn quality_adjust_combiner_works() {
        let (mut m, items) = market_with(20, &[("p", |i| i % 2 == 0)]);
        let op = FilterOp {
            combiner: CombinerKind::QualityAdjust,
            ..Default::default()
        };
        let out = op.run(&mut m, "p", &items).unwrap();
        let correct = out
            .iter()
            .enumerate()
            .filter(|(i, &b)| b == (i % 2 == 0))
            .count();
        assert!(correct >= 18, "correct={correct}/20");
    }

    #[test]
    fn empty_input_is_noop() {
        let (mut m, _) = market_with(1, &[("p", |_| true)]);
        let op = FilterOp::default();
        let out = op.run(&mut m, "p", &[]).unwrap();
        assert!(out.is_empty());
        assert_eq!(m.hits_posted(), 0);
    }
}
