//! Scalar values.
//!
//! Qurk's data model is relational with one extension: an
//! [`Item`](Value::Item) value referencing a crowd-visible object (an
//! image in the paper's datasets). Items are what HIT questions are
//! asked about; everything else is ordinary scalar data.

use crate::intern::IStr;
use qurk_crowd::ItemId;

/// A single attribute value.
///
/// `Copy` (16 bytes): text is an interned [`IStr`] handle, so copying
/// a value — and therefore a whole tuple — is a flat memcpy with no
/// heap traffic, and text equality is an integer compare.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(IStr),
    /// Reference to a crowd-visible item (e.g. an image URL in the
    /// original system; here a handle into the ground-truth oracle).
    Item(ItemId),
}

impl Value {
    /// Convenience constructor for text values (interns the string).
    pub fn text(s: impl AsRef<str>) -> Value {
        Value::Text(IStr::new(s.as_ref()))
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(t) => Some(t.as_str()),
            _ => None,
        }
    }

    pub fn as_item(&self) -> Option<ItemId> {
        match self {
            Value::Item(i) => Some(*i),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Render for display / HIT HTML substitution.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_owned(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{f}"),
            Value::Text(t) => t.as_str().to_owned(),
            Value::Item(i) => format!("item://{}", i.0),
        }
    }

    /// SQL-style comparison: `Null` compares as unknown (`None`);
    /// numeric types compare cross-type.
    pub fn sql_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Item(a), Item(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality (`None` when either side is NULL or incomparable).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == std::cmp::Ordering::Equal)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(IStr::new(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(IStr::new(&v))
    }
}

impl From<IStr> for Value {
    fn from(v: IStr) -> Self {
        Value::Text(v)
    }
}

impl From<ItemId> for Value {
    fn from(v: ItemId) -> Self {
        Value::Item(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn accessors() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::text("x").as_text(), Some("x"));
        assert_eq!(Value::Item(ItemId(7)).as_item(), Some(ItemId(7)));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_bool(), None);
    }

    #[test]
    fn sql_comparison_with_nulls() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::text("a").sql_cmp(&Value::text("b")),
            Some(Ordering::Less)
        );
        // Mixed incompatible types are incomparable.
        assert_eq!(Value::text("a").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn rendering() {
        assert_eq!(Value::Null.render(), "NULL");
        assert_eq!(Value::Int(-4).render(), "-4");
        assert_eq!(Value::Item(ItemId(3)).render(), "item://3");
        assert_eq!(format!("{}", Value::text("hi")), "hi");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::text("s"));
        assert_eq!(Value::from(ItemId(1)), Value::Item(ItemId(1)));
    }
}
