//! Pre-flight static analysis of queries.
//!
//! Every mistake in a crowd query costs real dollars (§2.6 treats the
//! HIT as the primary resource), so this pass runs *between* planning
//! and execution and flags hazards before any crowd work is posted:
//! join cross products priced past the budget, sorts beyond the §4.1
//! covering-design bound, budgets below the cost-model floor,
//! contradictory machine predicates, dead conjuncts, and pinned
//! operators that cannot do what they were pinned for.
//!
//! The analyzer is pure: it re-uses the logical planner, the optimizer
//! and the [`CostModel`](crate::opt::cost::CostModel), but posts
//! nothing. Entry points:
//!
//! * [`QueryBuilder::check`](crate::session::QueryBuilder::check) —
//!   analyze without executing, returning the diagnostics;
//! * [`LintPolicy`] on the session/query — under [`LintPolicy::Deny`]
//!   an Error-level diagnostic rejects the query with
//!   [`QurkError::Rejected`](crate::error::QurkError::Rejected)
//!   pre-execution; under the default [`LintPolicy::Warn`] diagnostics
//!   ride along on the
//!   [`QueryReport`](crate::session::QueryReport) and EXPLAIN output.
//!
//! The rule registry (codes → paper sections → examples) lives in
//! `docs/diagnostics.md`.

mod diag;
mod rules;

pub use diag::{Code, Diagnostic, Severity, Span};

use crate::catalog::Catalog;
use crate::error::Result;
use crate::lang::ast::Query;
use crate::lang::token::{Lexer, TokenKind};
use crate::opt::physical::{compile, OptimizeMode};
use crate::opt::stats::StatisticsStore;
use crate::plan::plan_query;
use crate::session::ExecConfig;

/// What the session does with diagnostics at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintPolicy {
    /// Skip analysis entirely.
    Allow,
    /// Analyze and attach diagnostics to the report (the default).
    #[default]
    Warn,
    /// Analyze; any Error-level diagnostic rejects the query with
    /// [`QurkError::Rejected`](crate::error::QurkError::Rejected)
    /// before any HIT is posted.
    Deny,
}

/// Analyzer configuration, carried on
/// [`ExecConfig`](crate::session::ExecConfig).
#[derive(Debug, Clone, PartialEq)]
pub struct LintConfig {
    pub policy: LintPolicy,
    /// QA001: estimated HIT count above which an unfiltered cross join
    /// is flagged even when the query has no budget.
    pub join_hit_ceiling: f64,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            policy: LintPolicy::Warn,
            // A 75×75 cross product at NaiveBatch(5) — far beyond
            // anything the paper posts in one query (§3.3 tops out
            // near 1.6k pair *scores*, not HITs).
            join_hit_ceiling: 1000.0,
        }
    }
}

/// Positions of identifier tokens in source order, built by re-lexing
/// the query text (the AST itself carries no spans).
pub(crate) struct SpanIndex {
    idents: Vec<(String, Span)>,
}

impl SpanIndex {
    fn new(src: &str) -> SpanIndex {
        let idents = Lexer::new(src)
            .tokenize()
            .unwrap_or_default()
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some((
                    s,
                    Span {
                        line: t.line,
                        column: t.column,
                    },
                )),
                _ => None,
            })
            .collect();
        SpanIndex { idents }
    }

    /// Position of the `n`-th occurrence (0-based) of `name`, falling
    /// back to the first occurrence, then to no span.
    pub(crate) fn nth(&self, name: &str, n: usize) -> Option<Span> {
        let mut first = None;
        let mut seen = 0usize;
        for (ident, span) in &self.idents {
            if ident == name {
                if first.is_none() {
                    first = Some(*span);
                }
                if seen == n {
                    return Some(*span);
                }
                seen += 1;
            }
        }
        first
    }

    /// Position of the first occurrence of `name`. For qualified
    /// column names (`c.id`) pass the last segment.
    pub(crate) fn first(&self, name: &str) -> Option<Span> {
        self.nth(name, 0)
    }

    /// Span lookup for a (possibly qualified) column reference.
    pub(crate) fn column(&self, name: &str) -> Option<Span> {
        self.first(name.rsplit('.').next().unwrap_or(name))
    }
}

/// Run the full rule set against a parsed query.
///
/// Compiles the plan under the configured optimize mode *and* under
/// [`OptimizeMode::AsWritten`]: QA005's cost floor is the cheapest
/// admissible physical plan, not just the one the optimizer picked.
/// Errors only on plan/compile failure; diagnostics are the Ok value,
/// sorted Error-first then by code.
pub fn analyze_query(
    src: &str,
    query: &Query,
    catalog: &Catalog,
    config: &ExecConfig,
    stats: &StatisticsStore,
    budget_dollars: Option<f64>,
) -> Result<Vec<Diagnostic>> {
    let logical = plan_query(query, catalog)?;
    let chosen = compile(&logical, catalog, config, stats)?;
    let floor_dollars = if config.optimize == OptimizeMode::AsWritten {
        chosen.estimate.dollars
    } else {
        let as_written = ExecConfig {
            optimize: OptimizeMode::AsWritten,
            ..config.clone()
        };
        let alt = compile(&logical, catalog, &as_written, stats)?;
        chosen.estimate.dollars.min(alt.estimate.dollars)
    };
    let spans = SpanIndex::new(src);
    let cx = rules::RuleCx {
        spans: &spans,
        query,
        chosen: &chosen,
        floor_dollars,
        config,
        stats,
        budget_dollars,
    };
    let mut diagnostics = rules::run_all(&cx);
    diagnostics.sort_by(|a, b| a.severity.cmp(&b.severity).then(a.code.cmp(&b.code)));
    Ok(diagnostics)
}

/// Render a diagnostics block for EXPLAIN surfaces.
pub(crate) fn render_diagnostics(diagnostics: &[Diagnostic]) -> String {
    if diagnostics.is_empty() {
        return "diagnostics: none\n".to_owned();
    }
    let mut out = String::from("diagnostics:\n");
    for d in diagnostics {
        out.push_str(&format!("  {d}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_index_finds_nth_occurrence() {
        let idx = SpanIndex::new("SELECT id FROM t WHERE isTall(t.img) AND isTall(t.img)");
        let first = idx.nth("isTall", 0).unwrap();
        let second = idx.nth("isTall", 1).unwrap();
        assert_eq!(first.line, 1);
        assert!(second.column > first.column);
        // Out-of-range occurrence falls back to the first.
        assert_eq!(idx.nth("isTall", 7), Some(first));
        assert_eq!(idx.first("nope"), None);
        // Qualified column lookup uses the last segment.
        assert_eq!(idx.column("t.img"), idx.first("img"));
    }

    #[test]
    fn render_block_formats() {
        assert_eq!(render_diagnostics(&[]), "diagnostics: none\n");
        let d = Diagnostic::new(Code::QA005, Severity::Error, "budget too low");
        let block = render_diagnostics(&[d]);
        assert!(block.contains("QA005 [error]: budget too low"), "{block}");
    }
}
