//! Diagnostic types: stable codes, severities, and source spans.
//!
//! Every rule the analyzer implements has a stable `QAnnn` code so
//! tooling (and tests) can match on diagnostics without parsing
//! message text. The registry lives in `docs/diagnostics.md`.

use std::fmt;

/// How serious a diagnostic is.
///
/// Under [`LintPolicy::Deny`](super::LintPolicy::Deny) only
/// `Error`-level diagnostics reject a query; `Warn` and `Info` always
/// pass through to the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The query will fail or waste money if executed as-is.
    Error,
    /// The query is suspicious (dead work, cost hazard) but runnable.
    Warn,
    /// Advisory only.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Info => "info",
        })
    }
}

/// Stable rule codes. See `docs/diagnostics.md` for the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// Join cardinality hazard: unfiltered cross product priced above
    /// the ceiling or the query budget (§3.1 / §2.6 dollar cost).
    QA001,
    /// Machine-evaluable predicate contradiction or tautology.
    QA002,
    /// OR group with no machine-evaluable member (pure crowd
    /// disjunction; §2.5 push-down cannot help).
    QA003,
    /// Compare sort requested/inferred past the §4.1 covering-design
    /// bound (256 items).
    QA004,
    /// `budget_dollars` below the cost-model floor for every
    /// admissible physical plan (would fail mid-flight instead).
    QA005,
    /// Pinned-operator contradiction (e.g. pinned SmartBatch grid
    /// larger than the candidate pair count).
    QA006,
    /// Dead query parts: duplicate/shadowed filter conjuncts,
    /// duplicate projections.
    QA007,
}

impl Code {
    /// The stable code string (`"QA001"`…).
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::QA001 => "QA001",
            Code::QA002 => "QA002",
            Code::QA003 => "QA003",
            Code::QA004 => "QA004",
            Code::QA005 => "QA005",
            Code::QA006 => "QA006",
            Code::QA007 => "QA007",
        }
    }

    /// Short rule name for docs and EXPLAIN output.
    pub fn rule_name(&self) -> &'static str {
        match self {
            Code::QA001 => "join-cardinality-hazard",
            Code::QA002 => "predicate-contradiction",
            Code::QA003 => "pure-crowd-disjunction",
            Code::QA004 => "compare-sort-bound",
            Code::QA005 => "budget-below-floor",
            Code::QA006 => "pinned-operator-contradiction",
            Code::QA007 => "dead-query-parts",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A 1-based source position, taken from the parser's token stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub line: usize,
    pub column: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    /// Human-readable explanation with the rule's numbers filled in.
    pub message: String,
    /// Source position of the offending construct, when one exists
    /// (budget-level diagnostics have none).
    pub span: Option<Span>,
}

impl Diagnostic {
    pub fn new(code: Code, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span: None,
        }
    }

    pub fn with_span(mut self, span: Option<Span>) -> Self {
        self.span = span;
        self
    }

    /// True for `Error`-level findings (what `deny` rejects on).
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    /// `QA004 [warn] at 1:33: Compare sort over ~300 items ...`
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.code, self.severity)?;
        if let Some(s) = &self.span {
            write!(f, " at {s}")?;
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_severity_and_span() {
        let d =
            Diagnostic::new(Code::QA004, Severity::Warn, "too many items").with_span(Some(Span {
                line: 1,
                column: 33,
            }));
        assert_eq!(d.to_string(), "QA004 [warn] at 1:33: too many items");
        let no_span = Diagnostic::new(Code::QA005, Severity::Error, "budget too low");
        assert_eq!(no_span.to_string(), "QA005 [error]: budget too low");
        assert!(no_span.is_error());
    }

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::QA001.as_str(), "QA001");
        assert_eq!(Code::QA007.as_str(), "QA007");
        assert_eq!(Code::QA002.rule_name(), "predicate-contradiction");
    }

    #[test]
    fn severity_orders_errors_first() {
        assert!(Severity::Error < Severity::Warn);
        assert!(Severity::Warn < Severity::Info);
    }
}
