//! The QA001–QA007 rule implementations.
//!
//! Each rule is a pure function over the parsed query, the compiled
//! physical plan, and the session configuration. Costs are priced
//! through the same [`CostModel`] the optimizer uses, so a diagnostic's
//! numbers always agree with EXPLAIN.

use super::diag::{Code, Diagnostic, Severity};
use super::SpanIndex;
use crate::lang::ast::{CmpOp, Expr, Literal, Predicate, Query, SelectItem};
use crate::ops::join::JoinStrategy;
use crate::opt::cost::{CostModel, EXACT_COMPARE_PLAN_MAX_N};
use crate::opt::physical::{CompiledPlan, PhysNode, PhysicalPlan};
use crate::opt::stats::StatisticsStore;
use crate::session::{ExecConfig, SortMode};

/// Everything a rule may look at.
pub(crate) struct RuleCx<'a> {
    pub spans: &'a SpanIndex,
    pub query: &'a Query,
    pub chosen: &'a CompiledPlan,
    /// Cheapest total estimate over the admissible optimize modes.
    pub floor_dollars: f64,
    pub config: &'a ExecConfig,
    pub stats: &'a StatisticsStore,
    pub budget_dollars: Option<f64>,
}

pub(crate) fn run_all(cx: &RuleCx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    qa001_join_cardinality(cx, &mut out);
    qa002_predicate_contradictions(cx, &mut out);
    qa003_pure_crowd_disjunction(cx, &mut out);
    qa004_compare_sort_bound(cx, &mut out);
    qa005_budget_floor(cx, &mut out);
    qa006_pin_contradictions(cx, &mut out);
    qa007_dead_parts(cx, &mut out);
    out
}

fn walk<'p>(plan: &'p PhysicalPlan, f: &mut dyn FnMut(&'p PhysicalPlan)) {
    f(plan);
    for child in plan.children() {
        walk(child, f);
    }
}

// ------------------------------------------------------------- QA001

/// Unfiltered cross joins priced past the ceiling (Warn) or past the
/// query budget (Error). §3.1: join HITs grow as `n·m` without a
/// POSSIBLY prefilter.
fn qa001_join_cardinality(cx: &RuleCx<'_>, out: &mut Vec<Diagnostic>) {
    let ceiling = cx.config.lint.join_hit_ceiling;
    walk(&cx.chosen.root, &mut |p| {
        let PhysNode::Join {
            left,
            right,
            clause,
            ..
        } = &p.node
        else {
            return;
        };
        if !clause.possibly.is_empty() {
            return; // §3.2 feature filtering bounds the pair count
        }
        let pairs = left.rows_out * right.rows_out;
        let over_budget = cx
            .budget_dollars
            .is_some_and(|b| p.cost.dollars > b && b >= 0.0);
        let over_ceiling = p.cost.hits > ceiling;
        if !over_budget && !over_ceiling {
            return;
        }
        let (severity, tail) = if over_budget {
            (
                Severity::Error,
                format!(
                    "exceeds the query budget of ${:.2} on its own",
                    cx.budget_dollars.unwrap_or(0.0)
                ),
            )
        } else {
            (
                Severity::Warn,
                format!("exceeds the configured ceiling of {ceiling:.0} HITs"),
            )
        };
        out.push(
            Diagnostic::new(
                Code::QA001,
                severity,
                format!(
                    "unfiltered cross join '{}' scores ~{:.0} candidate pairs \
                     (~{:.0} HITs, ~${:.2}); {tail} — add a POSSIBLY feature \
                     filter (§3.2) or pre-filter the inputs",
                    clause.on.name, pairs, p.cost.hits, p.cost.dollars
                ),
            )
            .with_span(cx.spans.first(&clause.on.name)),
        );
    });
}

// ------------------------------------------------------------- QA002

/// Partial order over literals, mirroring the executor's `sql_cmp`.
fn literal_cmp(a: &Literal, b: &Literal) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Literal::Number(x), Literal::Number(y)) => x.partial_cmp(y),
        (Literal::Str(x), Literal::Str(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

/// Numeric interval state for one column within one conjunction.
#[derive(Default)]
struct ColBounds {
    /// (bound, inclusive)
    lo: Option<(f64, bool)>,
    hi: Option<(f64, bool)>,
    eq: Option<f64>,
    ne: Vec<f64>,
    /// Count of upper-bound (`<`/`<=`) and lower-bound (`>`/`>=`)
    /// constraints, for QA007's shadowed-bound detection.
    uppers: usize,
    lowers: usize,
}

impl ColBounds {
    fn apply(&mut self, op: CmpOp, v: f64) {
        match op {
            CmpOp::Eq => {
                if self.eq.is_none() {
                    self.eq = Some(v);
                } else if self.eq != Some(v) {
                    // Two different equality constants: force the
                    // interval empty.
                    self.lo = Some((f64::INFINITY, true));
                    self.hi = Some((f64::NEG_INFINITY, true));
                }
            }
            CmpOp::Ne => self.ne.push(v),
            CmpOp::Lt | CmpOp::Le => {
                self.uppers += 1;
                let incl = op == CmpOp::Le;
                let tighter = match self.hi {
                    None => true,
                    Some((h, hincl)) => v < h || (v == h && hincl && !incl),
                };
                if tighter {
                    self.hi = Some((v, incl));
                }
            }
            CmpOp::Gt | CmpOp::Ge => {
                self.lowers += 1;
                let incl = op == CmpOp::Ge;
                let tighter = match self.lo {
                    None => true,
                    Some((l, lincl)) => v > l || (v == l && lincl && !incl),
                };
                if tighter {
                    self.lo = Some((v, incl));
                }
            }
        }
    }

    fn infeasible(&self) -> bool {
        if let (Some((l, lincl)), Some((h, hincl))) = (self.lo, self.hi) {
            if l > h || (l == h && !(lincl && hincl)) {
                return true;
            }
        }
        if let Some(e) = self.eq {
            if let Some((l, lincl)) = self.lo {
                if e < l || (e == l && !lincl) {
                    return true;
                }
            }
            if let Some((h, hincl)) = self.hi {
                if e > h || (e == h && !hincl) {
                    return true;
                }
            }
            if self.ne.contains(&e) {
                return true;
            }
        }
        false
    }
}

/// Flip `col OP lit` so the column is always on the left.
fn normalized_compare(p: &Predicate) -> Option<(&str, CmpOp, &Literal)> {
    let Predicate::Compare { left, op, right } = p else {
        return None;
    };
    match (left, right) {
        (Expr::Column(c), Expr::Literal(l)) => Some((c, *op, l)),
        (Expr::Literal(l), Expr::Column(c)) => {
            let flipped = match op {
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
                other => *other,
            };
            Some((c, flipped, l))
        }
        _ => None,
    }
}

/// Machine-evaluable contradictions and tautologies. A tautological
/// predicate is dead weight; a contradictory conjunction short-circuits
/// the group (or, with a single group, the whole query) to empty.
fn qa002_predicate_contradictions(cx: &RuleCx<'_>, out: &mut Vec<Diagnostic>) {
    let groups = &cx.query.where_groups;
    let single = groups.len() == 1;
    for (gi, group) in groups.iter().enumerate() {
        let scope = if single {
            "the query".to_owned()
        } else {
            format!("OR group {}", gi + 1)
        };
        let mut group_dead = false;
        let mut cols: Vec<(String, ColBounds)> = Vec::new();
        for p in group {
            match p {
                Predicate::Compare { left, op, right } => match (left, right) {
                    (Expr::Literal(a), Expr::Literal(b)) => match literal_cmp(a, b) {
                        Some(ord) if op.eval(ord) => out.push(Diagnostic::new(
                            Code::QA002,
                            Severity::Warn,
                            format!(
                                "literal predicate {a:?} {op:?} {b:?} is always \
                                 true and can be dropped"
                            ),
                        )),
                        Some(_) => group_dead = true,
                        None => {}
                    },
                    (Expr::Column(a), Expr::Column(b)) if a == b => {
                        match op {
                            CmpOp::Eq | CmpOp::Le | CmpOp::Ge => out.push(
                                Diagnostic::new(
                                    Code::QA002,
                                    Severity::Warn,
                                    format!(
                                        "predicate compares column {a} with itself \
                                         and is always true"
                                    ),
                                )
                                .with_span(cx.spans.column(a)),
                            ),
                            CmpOp::Ne | CmpOp::Lt | CmpOp::Gt => group_dead = true,
                        };
                    }
                    _ => {
                        if let Some((col, op, Literal::Number(v))) = normalized_compare(p) {
                            let entry = match cols.iter_mut().find(|(c, _)| c == col) {
                                Some((_, b)) => b,
                                None => {
                                    cols.push((col.to_owned(), ColBounds::default()));
                                    &mut cols.last_mut().expect("just pushed").1
                                }
                            };
                            entry.apply(op, *v);
                        }
                    }
                },
                Predicate::Udf(_) => {}
            }
        }
        if group_dead {
            out.push(Diagnostic::new(
                Code::QA002,
                Severity::Warn,
                format!(
                    "a machine-evaluable predicate is always false: {scope} \
                     returns no rows{}",
                    if single {
                        ""
                    } else {
                        " and the whole group can be dropped"
                    }
                ),
            ));
            continue;
        }
        for (col, bounds) in &cols {
            if bounds.infeasible() {
                out.push(
                    Diagnostic::new(
                        Code::QA002,
                        Severity::Warn,
                        format!(
                            "constraints on column {col} are contradictory \
                             (empty interval): {scope} returns no rows"
                        ),
                    )
                    .with_span(cx.spans.column(col)),
                );
            }
        }
    }
}

// ------------------------------------------------------------- QA003

/// OR groups whose every member needs the crowd: §2.5 push-down cannot
/// prune their input, so every row reaching the disjunction is asked.
fn qa003_pure_crowd_disjunction(cx: &RuleCx<'_>, out: &mut Vec<Diagnostic>) {
    if cx.query.where_groups.len() < 2 {
        return;
    }
    // The physical OR node knows the input cardinality and filter op.
    let mut or_node: Option<(f64, crate::ops::filter::FilterOp)> = None;
    walk(&cx.chosen.root, &mut |p| {
        if let PhysNode::CrowdFilterOr { input, op, .. } = &p.node {
            or_node = Some((input.rows_out, op.clone()));
        }
    });
    let Some((rows, op)) = or_node else { return };
    let model = CostModel::new(cx.stats);
    for (gi, group) in cx.query.where_groups.iter().enumerate() {
        if group.iter().any(|p| matches!(p, Predicate::Compare { .. })) {
            continue;
        }
        let mut est = crate::opt::cost::CostEstimate::ZERO;
        for _ in group {
            est += model.filter(rows, &op);
        }
        let first_udf = group.iter().find_map(|p| match p {
            Predicate::Udf(c) => Some(c.name.as_str()),
            _ => None,
        });
        out.push(
            Diagnostic::new(
                Code::QA003,
                Severity::Warn,
                format!(
                    "OR group {} has no machine-evaluable member: all ~{rows:.0} \
                     input rows go to the crowd (~{:.0} extra HITs, ~${:.2}); \
                     adding a machine predicate would let §2.5 push-down \
                     shrink it",
                    gi + 1,
                    est.hits,
                    est.dollars
                ),
            )
            .with_span(first_udf.and_then(|n| cx.spans.first(n))),
        );
    }
}

// ------------------------------------------------------------- QA004

/// Compare sorts past the §4.1 covering-design bound: beyond
/// [`EXACT_COMPARE_PLAN_MAX_N`] items the group plan is no longer
/// exact and the HIT count grows quadratically.
fn qa004_compare_sort_bound(cx: &RuleCx<'_>, out: &mut Vec<Diagnostic>) {
    walk(&cx.chosen.root, &mut |p| {
        let PhysNode::OrderBy { input, keys, mode } = &p.node else {
            return;
        };
        let SortMode::Compare(_) = mode else { return };
        let crowd_key = keys.iter().find_map(|k| match &k.expr {
            Expr::Udf(call) => Some(call),
            _ => None,
        });
        let Some(call) = crowd_key else { return };
        let n = input.rows_out;
        if n <= EXACT_COMPARE_PLAN_MAX_N as f64 {
            return;
        }
        out.push(
            Diagnostic::new(
                Code::QA004,
                Severity::Warn,
                format!(
                    "Compare sort over ~{n:.0} items exceeds the §4.1 \
                     covering-design bound ({EXACT_COMPARE_PLAN_MAX_N}): \
                     ~{:.0} HITs (~${:.2}); use Rate or Hybrid for large \
                     inputs (§4.1.2)",
                    p.cost.hits, p.cost.dollars
                ),
            )
            .with_span(cx.spans.first(&call.name)),
        );
    });
}

// ------------------------------------------------------------- QA005

/// Budgets below the cost-model floor fail with `BudgetExceeded` only
/// *after* money is spent; reject them up front instead. The floor is
/// the cheapest admissible plan's estimate, so with learned statistics
/// a cost-based replan may still fit a budget the as-written plan
/// would not.
fn qa005_budget_floor(cx: &RuleCx<'_>, out: &mut Vec<Diagnostic>) {
    let Some(budget) = cx.budget_dollars else {
        return;
    };
    if cx.chosen.estimate.hits <= 0.0 {
        return; // machine-only plans spend nothing
    }
    if budget <= 0.0 {
        out.push(Diagnostic::new(
            Code::QA005,
            Severity::Error,
            format!(
                "budget ${budget:.2} cannot admit any crowd work: the budget \
                 gate refuses the first crowd operator (estimated plan cost \
                 ~${:.2})",
                cx.chosen.estimate.dollars
            ),
        ));
    } else if budget < cx.floor_dollars {
        out.push(Diagnostic::new(
            Code::QA005,
            Severity::Error,
            format!(
                "budget ${budget:.2} is below the cost-model floor ~${:.2} for \
                 every admissible physical plan; the query would fail with \
                 BudgetExceeded mid-flight after spending money",
                cx.floor_dollars
            ),
        ));
    }
}

// ------------------------------------------------------------- QA006

/// Pinned operators that contradict the data they will see. The
/// optimizer never overrides a pin, so these run as pinned.
fn qa006_pin_contradictions(cx: &RuleCx<'_>, out: &mut Vec<Diagnostic>) {
    let pins = cx.config.pins;
    if pins.join {
        if let JoinStrategy::SmartBatch { rows, cols } = cx.config.join.strategy {
            let grid = (rows * cols) as f64;
            walk(&cx.chosen.root, &mut |p| {
                let PhysNode::Join {
                    left,
                    right,
                    clause,
                    op,
                    ..
                } = &p.node
                else {
                    return;
                };
                if !matches!(op.strategy, JoinStrategy::SmartBatch { .. }) {
                    return;
                }
                let pairs = left.rows_out * right.rows_out;
                if pairs < grid {
                    out.push(
                        Diagnostic::new(
                            Code::QA006,
                            Severity::Warn,
                            format!(
                                "pinned SmartBatch {rows}x{cols} join on ~{pairs:.0} \
                                 candidate pairs: one {grid:.0}-pair grid cannot \
                                 even fill; batching buys nothing here (§3.1)"
                            ),
                        )
                        .with_span(cx.spans.first(&clause.on.name)),
                    );
                }
            });
        }
    }
    if pins.sort {
        if let SortMode::Hybrid(_, 0) = cx.config.sort {
            let mut has_crowd_sort = false;
            walk(&cx.chosen.root, &mut |p| {
                if let PhysNode::OrderBy { keys, .. } = &p.node {
                    if keys.iter().any(|k| matches!(k.expr, Expr::Udf(_))) {
                        has_crowd_sort = true;
                    }
                }
            });
            if has_crowd_sort {
                out.push(Diagnostic::new(
                    Code::QA006,
                    Severity::Warn,
                    "pinned Hybrid sort with a zero comparison budget degenerates \
                     to a plain Rate sort (§4.1.3); pin Rate instead or give it \
                     iterations"
                        .to_owned(),
                ));
            }
        }
    }
    if pins.combine && cx.config.combine_conjunct_filters {
        let mut has_conjunctive_filter = false;
        walk(&cx.chosen.root, &mut |p| {
            if let PhysNode::CrowdFilter { conjuncts, .. } = &p.node {
                if conjuncts.len() > 1 {
                    has_conjunctive_filter = true;
                }
            }
        });
        if !has_conjunctive_filter {
            out.push(Diagnostic::new(
                Code::QA006,
                Severity::Info,
                "filter combining (§2.6) is pinned on, but the query has no \
                 conjunctive crowd filter to combine; the pin has no effect"
                    .to_owned(),
            ));
        }
    }
}

// ------------------------------------------------------------- QA007

/// Dead query parts: duplicate conjuncts, duplicate OR groups,
/// shadowed bounds, duplicate projections. Each costs HITs (or reader
/// attention) and changes nothing.
fn qa007_dead_parts(cx: &RuleCx<'_>, out: &mut Vec<Diagnostic>) {
    // Duplicate predicates within one conjunction group.
    for group in &cx.query.where_groups {
        let mut seen: Vec<&Predicate> = Vec::new();
        for p in group {
            if seen.contains(&p) {
                let (label, span) = match p {
                    Predicate::Udf(c) => (
                        format!("crowd filter {}(..)", c.name),
                        cx.spans.nth(&c.name, 1),
                    ),
                    Predicate::Compare { left, .. } => {
                        let col = match left {
                            Expr::Column(c) => cx.spans.column(c),
                            _ => None,
                        };
                        ("machine predicate".to_owned(), col)
                    }
                };
                out.push(
                    Diagnostic::new(
                        Code::QA007,
                        Severity::Warn,
                        format!(
                            "duplicate {label} in the same conjunction: the \
                             repeat filters nothing further and (for crowd \
                             filters) wastes a serial round"
                        ),
                    )
                    .with_span(span),
                );
            } else {
                seen.push(p);
            }
        }
        // Shadowed interval bounds: two uppers (or two lowers) on the
        // same column — one is implied by the other.
        let mut per_col: Vec<(&str, Vec<(CmpOp, f64)>)> = Vec::new();
        for p in group {
            if let Some((col, op, Literal::Number(v))) = normalized_compare(p) {
                if matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) {
                    match per_col.iter_mut().find(|(c, _)| *c == col) {
                        Some((_, v_list)) => v_list.push((op, *v)),
                        None => per_col.push((col, vec![(op, *v)])),
                    }
                }
            }
        }
        for (col, constraints) in &per_col {
            let uppers = constraints
                .iter()
                .filter(|(op, _)| matches!(op, CmpOp::Lt | CmpOp::Le))
                .count();
            let lowers = constraints.len() - uppers;
            for (dir, count) in [("upper", uppers), ("lower", lowers)] {
                // Distinct constraints only: exact duplicates were
                // already reported above.
                let distinct: std::collections::BTreeSet<String> = constraints
                    .iter()
                    .filter(|(op, _)| match dir {
                        "upper" => matches!(op, CmpOp::Lt | CmpOp::Le),
                        _ => matches!(op, CmpOp::Gt | CmpOp::Ge),
                    })
                    .map(|(op, v)| format!("{op:?}{v}"))
                    .collect();
                if count >= 2 && distinct.len() >= 2 {
                    out.push(
                        Diagnostic::new(
                            Code::QA007,
                            Severity::Warn,
                            format!(
                                "column {col} has {count} {dir} bounds in one \
                                 conjunction; the looser bound is shadowed and \
                                 can be dropped"
                            ),
                        )
                        .with_span(cx.spans.column(col)),
                    );
                }
            }
        }
    }
    // Duplicate OR groups.
    let groups = &cx.query.where_groups;
    if groups.len() >= 2 {
        for (i, g) in groups.iter().enumerate() {
            if groups[..i].contains(g) {
                out.push(Diagnostic::new(
                    Code::QA007,
                    Severity::Warn,
                    format!(
                        "OR group {} duplicates an earlier group; disjuncts run \
                         in parallel (§2.5) so the repeat posts its crowd work \
                         twice for the same verdict",
                        i + 1
                    ),
                ));
            }
        }
    }
    // Duplicate projected columns.
    let mut seen_cols: Vec<&str> = Vec::new();
    for item in &cx.query.select {
        if let SelectItem::Column(name) = item {
            if seen_cols.contains(&name.as_str()) {
                out.push(
                    Diagnostic::new(
                        Code::QA007,
                        Severity::Warn,
                        format!("column {name} is projected more than once"),
                    )
                    .with_span(cx.spans.column(name)),
                );
            } else {
                seen_cols.push(name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_bounds_interval_feasibility() {
        let mut b = ColBounds::default();
        b.apply(CmpOp::Gt, 5.0);
        b.apply(CmpOp::Lt, 3.0);
        assert!(b.infeasible(), "x > 5 AND x < 3");

        let mut b = ColBounds::default();
        b.apply(CmpOp::Ge, 3.0);
        b.apply(CmpOp::Le, 3.0);
        assert!(!b.infeasible(), "x >= 3 AND x <= 3 admits 3");

        let mut b = ColBounds::default();
        b.apply(CmpOp::Gt, 3.0);
        b.apply(CmpOp::Le, 3.0);
        assert!(b.infeasible(), "x > 3 AND x <= 3 is empty");

        let mut b = ColBounds::default();
        b.apply(CmpOp::Eq, 4.0);
        b.apply(CmpOp::Ne, 4.0);
        assert!(b.infeasible(), "x = 4 AND x != 4");

        let mut b = ColBounds::default();
        b.apply(CmpOp::Eq, 4.0);
        b.apply(CmpOp::Eq, 5.0);
        assert!(b.infeasible(), "x = 4 AND x = 5");

        let mut b = ColBounds::default();
        b.apply(CmpOp::Eq, 4.0);
        b.apply(CmpOp::Lt, 10.0);
        assert!(!b.infeasible(), "x = 4 AND x < 10 admits 4");
    }

    #[test]
    fn normalized_compare_flips_reversed_literals() {
        let p = Predicate::Compare {
            left: Expr::Literal(Literal::Number(5.0)),
            op: CmpOp::Lt,
            right: Expr::Column("id".into()),
        };
        // 5 < id  ≡  id > 5
        let (col, op, lit) = normalized_compare(&p).unwrap();
        assert_eq!(col, "id");
        assert_eq!(op, CmpOp::Gt);
        assert_eq!(lit, &Literal::Number(5.0));
    }
}
