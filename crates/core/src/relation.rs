//! In-memory relations and the tab-delimited loader.
//!
//! §2.6: "Qurk is implemented as a Scala workflow engine with several
//! types of input including relational databases and tab-delimited text
//! files." We reproduce the tab-delimited path; rows type-check against
//! the declared schema on the way in.

use crate::columnar::{self, ColumnStore, RelationWindow, PROCESSING_WINDOW_SIZE};
use crate::error::{QurkError, Result};
use crate::schema::{Schema, ValueType};
use crate::tuple::Tuple;
use crate::value::Value;

/// A schema-checked bag of tuples.
///
/// Storage is dual-layout: the row view (`Vec<Tuple>`, the original
/// API) and a column-major [`ColumnStore`] mirror kept in lock-step on
/// every append (relations are append-only, so the two can never
/// diverge). Machine-side operators read flat [`Self::column`] slices
/// and [`Self::windows`]; crowd-side code keeps using [`Self::rows`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Tuple>,
    cols: ColumnStore,
}

impl Relation {
    pub fn new(schema: Schema) -> Self {
        let cols = ColumnStore::new(schema.len());
        Relation {
            schema,
            rows: Vec::new(),
            cols,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row, type-checking against the schema.
    pub fn push(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.schema.len() {
            return Err(QurkError::Schema(format!(
                "row has {} values, schema has {} columns",
                values.len(),
                self.schema.len()
            )));
        }
        for (v, f) in values.iter().zip(self.schema.fields()) {
            if !f.ty.admits(v) {
                return Err(QurkError::Schema(format!(
                    "value {v:?} does not fit column {} ({:?})",
                    f.name, f.ty
                )));
            }
        }
        self.cols.push_row(&values);
        self.rows.push(Tuple::new(values));
        Ok(())
    }

    /// Append an already-checked tuple (internal fast path for
    /// operators that construct rows from existing relations).
    pub(crate) fn push_unchecked(&mut self, tuple: Tuple) {
        debug_assert_eq!(tuple.len(), self.schema.len());
        self.cols.push_row(tuple.values());
        self.rows.push(tuple);
    }

    /// Build column-wise from pre-assembled columns (one `Vec<Value>`
    /// per schema field, all the same length). Type-checks exactly
    /// like [`Self::push`]; the result is indistinguishable from the
    /// same data pushed row-wise.
    pub fn from_columns(schema: Schema, columns: Vec<Vec<Value>>) -> Result<Relation> {
        if columns.len() != schema.len() {
            return Err(QurkError::Schema(format!(
                "{} columns supplied, schema has {}",
                columns.len(),
                schema.len()
            )));
        }
        let n = columns.first().map(Vec::len).unwrap_or(0);
        for (col, f) in columns.iter().zip(schema.fields()) {
            if col.len() != n {
                return Err(QurkError::Schema(format!(
                    "column {} has {} values, expected {n}",
                    f.name,
                    col.len()
                )));
            }
            for v in col {
                if !f.ty.admits(v) {
                    return Err(QurkError::Schema(format!(
                        "value {v:?} does not fit column {} ({:?})",
                        f.name, f.ty
                    )));
                }
            }
        }
        let rows = (0..n)
            .map(|r| Tuple::new(columns.iter().map(|c| c[r]).collect()))
            .collect();
        Ok(Relation {
            schema,
            rows,
            cols: ColumnStore::from_columns(columns),
        })
    }

    /// Zero-copy column slice: all rows' values for schema field
    /// `idx`, contiguous in memory.
    pub fn column(&self, idx: usize) -> &[Value] {
        self.cols.column(idx)
    }

    /// Iterate the relation in fixed-size processing windows
    /// ([`PROCESSING_WINDOW_SIZE`] rows) of zero-copy column slices.
    pub fn windows(&self) -> impl Iterator<Item = RelationWindow<'_>> {
        columnar::windows(&self.cols, PROCESSING_WINDOW_SIZE)
    }

    /// Like [`Self::windows`] with an explicit window size (tests,
    /// benches, and operators with unusual working sets).
    pub fn windows_of(&self, size: usize) -> impl Iterator<Item = RelationWindow<'_>> {
        columnar::windows(&self.cols, size)
    }

    /// Columnar gather: a new relation containing `indices`' rows (in
    /// the given order, duplicates allowed). Copies column-by-column —
    /// a flat sweep per column instead of a `Tuple` clone per row.
    pub fn gather(&self, indices: &[usize]) -> Relation {
        let columns: Vec<Vec<Value>> = (0..self.schema.len())
            .map(|c| {
                let col = self.cols.column(c);
                indices.iter().map(|&r| col[r]).collect()
            })
            .collect();
        let rows = indices.iter().map(|&r| self.rows[r].clone()).collect();
        Relation {
            schema: self.schema.clone(),
            rows,
            cols: ColumnStore::from_columns(columns),
        }
    }

    /// Iterate rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.rows.iter()
    }

    /// Rename columns to `alias.<base>` (scan under an alias).
    pub fn qualified(mut self, alias: &str) -> Relation {
        self.schema = self.schema.qualified(alias);
        self
    }

    /// Parse a tab-delimited document: `NULL` is null, `item://N` is an
    /// item reference, otherwise values parse per the schema's column
    /// type.
    pub fn from_tsv(schema: Schema, text: &str) -> Result<Relation> {
        let mut rel = Relation::new(schema);
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split('\t').collect();
            if parts.len() != rel.schema.len() {
                return Err(QurkError::Schema(format!(
                    "line {}: expected {} fields, found {}",
                    lineno + 1,
                    rel.schema.len(),
                    parts.len()
                )));
            }
            let mut values = Vec::with_capacity(parts.len());
            for (raw, field) in parts.iter().zip(rel.schema.fields()) {
                values.push(parse_value(raw, field.ty, lineno + 1)?);
            }
            rel.push(values)?;
        }
        Ok(rel)
    }

    /// Serialize to tab-delimited text (inverse of [`Self::from_tsv`]).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            let line: Vec<String> = row.values().iter().map(render_tsv).collect();
            out.push_str(&line.join("\t"));
            out.push('\n');
        }
        out
    }
}

fn render_tsv(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_owned(),
        other => other.render(),
    }
}

fn parse_value(raw: &str, ty: ValueType, line: usize) -> Result<Value> {
    if raw == "NULL" {
        return Ok(Value::Null);
    }
    let err = |m: String| QurkError::Schema(format!("line {line}: {m}"));
    match ty {
        ValueType::Bool => raw
            .parse::<bool>()
            .map(Value::Bool)
            .map_err(|_| err(format!("bad bool {raw:?}"))),
        ValueType::Int => raw
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| err(format!("bad int {raw:?}"))),
        ValueType::Float => raw
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(format!("bad float {raw:?}"))),
        ValueType::Text => Ok(Value::text(raw)),
        ValueType::Item => raw
            .strip_prefix("item://")
            .and_then(|n| n.parse::<u64>().ok())
            .map(|n| Value::Item(qurk_crowd::ItemId(n)))
            .ok_or_else(|| err(format!("bad item reference {raw:?}"))),
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(&[
            ("id", ValueType::Int),
            ("name", ValueType::Text),
            ("img", ValueType::Item),
        ])
    }

    #[test]
    fn push_type_checks() {
        let mut r = Relation::new(schema());
        r.push(vec![Value::Int(1), Value::text("a"), Value::Null])
            .unwrap();
        let err = r.push(vec![Value::text("x"), Value::text("a"), Value::Null]);
        assert!(matches!(err, Err(QurkError::Schema(_))));
        let err = r.push(vec![Value::Int(1)]);
        assert!(matches!(err, Err(QurkError::Schema(_))));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn tsv_roundtrip() {
        let text = "1\talice\titem://4\n2\tNULL\titem://5\n";
        let r = Relation::from_tsv(schema(), text).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows()[1][1], Value::Null);
        assert_eq!(r.rows()[0][2], Value::Item(qurk_crowd::ItemId(4)));
        assert_eq!(r.to_tsv(), text);
    }

    #[test]
    fn tsv_rejects_bad_rows() {
        assert!(Relation::from_tsv(schema(), "1\tonly-two").is_err());
        assert!(Relation::from_tsv(schema(), "x\ta\titem://1").is_err());
        assert!(Relation::from_tsv(schema(), "1\ta\tnot-item").is_err());
    }

    #[test]
    fn tsv_skips_blank_lines() {
        let r = Relation::from_tsv(schema(), "\n1\ta\titem://1\n\n").unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn from_columns_equals_row_wise() {
        let text = "1\talice\titem://4\n2\tNULL\titem://5\n";
        let row_wise = Relation::from_tsv(schema(), text).unwrap();
        let col_wise = Relation::from_columns(
            schema(),
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::text("alice"), Value::Null],
                vec![
                    Value::Item(qurk_crowd::ItemId(4)),
                    Value::Item(qurk_crowd::ItemId(5)),
                ],
            ],
        )
        .unwrap();
        assert_eq!(row_wise, col_wise);
        assert_eq!(col_wise.to_tsv(), text);
    }

    #[test]
    fn from_columns_validates() {
        // Wrong column count.
        assert!(Relation::from_columns(schema(), vec![vec![]]).is_err());
        // Ragged columns.
        assert!(Relation::from_columns(
            schema(),
            vec![vec![Value::Int(1)], vec![Value::text("a")], vec![]],
        )
        .is_err());
        // Type mismatch.
        assert!(Relation::from_columns(
            schema(),
            vec![
                vec![Value::text("x")],
                vec![Value::text("a")],
                vec![Value::Null]
            ],
        )
        .is_err());
    }

    #[test]
    fn column_slices_mirror_rows() {
        let r = Relation::from_tsv(schema(), "1\ta\titem://1\n2\tb\titem://2\n").unwrap();
        assert_eq!(r.column(0), &[Value::Int(1), Value::Int(2)]);
        assert_eq!(r.column(1), &[Value::text("a"), Value::text("b")]);
        for (ri, row) in r.rows().iter().enumerate() {
            for ci in 0..r.schema().len() {
                assert_eq!(r.column(ci)[ri], row[ci]);
            }
        }
    }

    #[test]
    fn windows_reassemble() {
        let mut r = Relation::new(Schema::new(&[("x", ValueType::Int)]));
        for i in 0..10 {
            r.push(vec![Value::Int(i)]).unwrap();
        }
        let vals: Vec<Value> = r
            .windows_of(3)
            .flat_map(|w| w.column(0).iter().copied())
            .collect();
        assert_eq!(vals, r.column(0));
        assert_eq!(r.windows().count(), 1); // default window > 10 rows
    }

    #[test]
    fn gather_selects_rows_in_order() {
        let r = Relation::from_tsv(schema(), "1\ta\titem://1\n2\tb\titem://2\n3\tc\titem://3\n")
            .unwrap();
        let g = r.gather(&[2, 0, 2]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.rows()[0], r.rows()[2]);
        assert_eq!(g.rows()[1], r.rows()[0]);
        assert_eq!(g.column(0), &[Value::Int(3), Value::Int(1), Value::Int(3)]);
        assert_eq!(g.schema(), r.schema());
    }

    #[test]
    fn qualification() {
        let r = Relation::new(schema()).qualified("c");
        assert_eq!(r.schema().fields()[0].name, "c.id");
    }

    #[test]
    fn iteration() {
        let mut r = Relation::new(Schema::new(&[("x", ValueType::Int)]));
        r.push(vec![Value::Int(1)]).unwrap();
        r.push(vec![Value::Int(2)]).unwrap();
        let sum: i64 = r.iter().map(|t| t[0].as_int().unwrap()).sum();
        assert_eq!(sum, 3);
    }
}
