//! In-memory relations and the tab-delimited loader.
//!
//! §2.6: "Qurk is implemented as a Scala workflow engine with several
//! types of input including relational databases and tab-delimited text
//! files." We reproduce the tab-delimited path; rows type-check against
//! the declared schema on the way in.

use crate::error::{QurkError, Result};
use crate::schema::{Schema, ValueType};
use crate::tuple::Tuple;
use crate::value::Value;

/// A schema-checked bag of tuples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Relation {
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row, type-checking against the schema.
    pub fn push(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.schema.len() {
            return Err(QurkError::Schema(format!(
                "row has {} values, schema has {} columns",
                values.len(),
                self.schema.len()
            )));
        }
        for (v, f) in values.iter().zip(self.schema.fields()) {
            if !f.ty.admits(v) {
                return Err(QurkError::Schema(format!(
                    "value {v:?} does not fit column {} ({:?})",
                    f.name, f.ty
                )));
            }
        }
        self.rows.push(Tuple::new(values));
        Ok(())
    }

    /// Append an already-checked tuple (internal fast path for
    /// operators that construct rows from existing relations).
    pub(crate) fn push_unchecked(&mut self, tuple: Tuple) {
        debug_assert_eq!(tuple.len(), self.schema.len());
        self.rows.push(tuple);
    }

    /// Iterate rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.rows.iter()
    }

    /// Rename columns to `alias.<base>` (scan under an alias).
    pub fn qualified(mut self, alias: &str) -> Relation {
        self.schema = self.schema.qualified(alias);
        self
    }

    /// Parse a tab-delimited document: `NULL` is null, `item://N` is an
    /// item reference, otherwise values parse per the schema's column
    /// type.
    pub fn from_tsv(schema: Schema, text: &str) -> Result<Relation> {
        let mut rel = Relation::new(schema);
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split('\t').collect();
            if parts.len() != rel.schema.len() {
                return Err(QurkError::Schema(format!(
                    "line {}: expected {} fields, found {}",
                    lineno + 1,
                    rel.schema.len(),
                    parts.len()
                )));
            }
            let mut values = Vec::with_capacity(parts.len());
            for (raw, field) in parts.iter().zip(rel.schema.fields()) {
                values.push(parse_value(raw, field.ty, lineno + 1)?);
            }
            rel.push(values)?;
        }
        Ok(rel)
    }

    /// Serialize to tab-delimited text (inverse of [`Self::from_tsv`]).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            let line: Vec<String> = row.values().iter().map(render_tsv).collect();
            out.push_str(&line.join("\t"));
            out.push('\n');
        }
        out
    }
}

fn render_tsv(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_owned(),
        other => other.render(),
    }
}

fn parse_value(raw: &str, ty: ValueType, line: usize) -> Result<Value> {
    if raw == "NULL" {
        return Ok(Value::Null);
    }
    let err = |m: String| QurkError::Schema(format!("line {line}: {m}"));
    match ty {
        ValueType::Bool => raw
            .parse::<bool>()
            .map(Value::Bool)
            .map_err(|_| err(format!("bad bool {raw:?}"))),
        ValueType::Int => raw
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| err(format!("bad int {raw:?}"))),
        ValueType::Float => raw
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(format!("bad float {raw:?}"))),
        ValueType::Text => Ok(Value::text(raw)),
        ValueType::Item => raw
            .strip_prefix("item://")
            .and_then(|n| n.parse::<u64>().ok())
            .map(|n| Value::Item(qurk_crowd::ItemId(n)))
            .ok_or_else(|| err(format!("bad item reference {raw:?}"))),
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(&[
            ("id", ValueType::Int),
            ("name", ValueType::Text),
            ("img", ValueType::Item),
        ])
    }

    #[test]
    fn push_type_checks() {
        let mut r = Relation::new(schema());
        r.push(vec![Value::Int(1), Value::text("a"), Value::Null])
            .unwrap();
        let err = r.push(vec![Value::text("x"), Value::text("a"), Value::Null]);
        assert!(matches!(err, Err(QurkError::Schema(_))));
        let err = r.push(vec![Value::Int(1)]);
        assert!(matches!(err, Err(QurkError::Schema(_))));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn tsv_roundtrip() {
        let text = "1\talice\titem://4\n2\tNULL\titem://5\n";
        let r = Relation::from_tsv(schema(), text).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows()[1][1], Value::Null);
        assert_eq!(r.rows()[0][2], Value::Item(qurk_crowd::ItemId(4)));
        assert_eq!(r.to_tsv(), text);
    }

    #[test]
    fn tsv_rejects_bad_rows() {
        assert!(Relation::from_tsv(schema(), "1\tonly-two").is_err());
        assert!(Relation::from_tsv(schema(), "x\ta\titem://1").is_err());
        assert!(Relation::from_tsv(schema(), "1\ta\tnot-item").is_err());
    }

    #[test]
    fn tsv_skips_blank_lines() {
        let r = Relation::from_tsv(schema(), "\n1\ta\titem://1\n\n").unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn qualification() {
        let r = Relation::new(schema()).qualified("c");
        assert_eq!(r.schema().fields()[0].name, "c.id");
    }

    #[test]
    fn iteration() {
        let mut r = Relation::new(Schema::new(&[("x", ValueType::Int)]));
        r.push(vec![Value::Int(1)]).unwrap();
        r.push(vec![Value::Int(2)]).unwrap();
        let sum: i64 = r.iter().map(|t| t[0].as_int().unwrap()).sum();
        assert_eq!(sum, 3);
    }
}
