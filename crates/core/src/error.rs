//! Error type for the query engine.

use std::fmt;

use crate::analyze::Diagnostic;

/// Errors surfaced by parsing, planning, or executing a Qurk query.
#[derive(Debug, Clone, PartialEq)]
pub enum QurkError {
    /// Lexing/parsing failure with position information.
    Parse {
        message: String,
        line: usize,
        column: usize,
        /// The offending source line, rendered under the message with
        /// a caret at `column` when present.
        snippet: Option<String>,
    },
    /// Reference to an unknown table.
    UnknownTable(String),
    /// Reference to an unknown task/UDF.
    UnknownTask(String),
    /// Reference to an unknown column.
    UnknownColumn(String),
    /// A task was used in a position its type does not support
    /// (e.g. a Filter task in ORDER BY).
    TaskTypeMismatch {
        task: String,
        expected: &'static str,
        found: &'static str,
    },
    /// Schema violation when constructing relations.
    Schema(String),
    /// The crowd did not complete the work (e.g. batch too large).
    CrowdIncomplete { outstanding: u32 },
    /// A per-query dollar budget was exhausted before the next crowd
    /// operator could start (see
    /// [`QueryBuilder::budget_dollars`](crate::session::QueryBuilder::budget_dollars)).
    BudgetExceeded {
        budget_dollars: f64,
        spent_dollars: f64,
    },
    /// A crowd round was posted with a non-finite or negative time
    /// limit. The scheduler rejects the round before it can poison the
    /// shared marketplace clock (an infinite deadline would run the
    /// simulation forever; a NaN made resume order nondeterministic).
    InvalidDeadline { limit_secs: f64 },
    /// The pre-flight analyzer found Error-level diagnostics and the
    /// lint policy is [`LintPolicy::Deny`](crate::analyze::LintPolicy):
    /// the query was rejected before any HIT was posted.
    Rejected { diagnostics: Vec<Diagnostic> },
    /// The durable store failed (I/O error or corruption) while a
    /// query required durability (see [`crate::store`]).
    Store(String),
    /// Anything else.
    Other(String),
}

impl fmt::Display for QurkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QurkError::Parse {
                message,
                line,
                column,
                snippet,
            } => {
                write!(f, "parse error at {line}:{column}: {message}")?;
                if let Some(src_line) = snippet {
                    let caret_pad = " ".repeat(column.saturating_sub(1));
                    write!(f, "\n  {src_line}\n  {caret_pad}^")?;
                }
                Ok(())
            }
            QurkError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            QurkError::UnknownTask(t) => write!(f, "unknown task: {t}"),
            QurkError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            QurkError::TaskTypeMismatch {
                task,
                expected,
                found,
            } => {
                write!(f, "task {task} has type {found}, expected {expected}")
            }
            QurkError::Schema(m) => write!(f, "schema error: {m}"),
            QurkError::CrowdIncomplete { outstanding } => {
                write!(
                    f,
                    "crowd work incomplete: {outstanding} assignments outstanding"
                )
            }
            QurkError::BudgetExceeded {
                budget_dollars,
                spent_dollars,
            } => {
                write!(
                    f,
                    "query budget exhausted: spent ${spent_dollars:.3} of ${budget_dollars:.3}"
                )
            }
            QurkError::InvalidDeadline { limit_secs } => {
                write!(
                    f,
                    "invalid round deadline: limit of {limit_secs} seconds is not a finite, \
                     non-negative duration"
                )
            }
            QurkError::Rejected { diagnostics } => {
                let errors = diagnostics.iter().filter(|d| d.is_error()).count();
                write!(
                    f,
                    "query rejected by pre-flight analysis ({errors} error{}):",
                    if errors == 1 { "" } else { "s" }
                )?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            QurkError::Store(m) => write!(f, "durable store error: {m}"),
            QurkError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for QurkError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, QurkError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = QurkError::Parse {
            message: "bad token".into(),
            line: 2,
            column: 7,
            snippet: None,
        };
        assert_eq!(e.to_string(), "parse error at 2:7: bad token");
        assert_eq!(
            QurkError::UnknownTable("t".into()).to_string(),
            "unknown table: t"
        );
        let e = QurkError::TaskTypeMismatch {
            task: "f".into(),
            expected: "Rank",
            found: "Filter",
        };
        assert!(e.to_string().contains("expected Rank"));
    }
}
