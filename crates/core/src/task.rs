//! Typed task templates (§2.1–§2.4).
//!
//! A [`TaskDef`] is the validated form of a parsed `TASK` block. Four
//! types exist, mirroring the paper:
//!
//! * **Filter** — Yes/No question per tuple (`isFemale`).
//! * **Generative** — free-text or constrained (Radio) responses, one
//!   or many fields (`animalInfo`, `gender`).
//! * **Rank** — ordering information for ORDER BY (`squareSorter`),
//!   rendered either as a comparison or a rating interface.
//! * **EquiJoin** — pairwise match question for joins (`samePerson`).
//!
//! **Simulation convention**: the crowd oracle keys off the task name
//! for Filter predicates and Generative/feature lookups, and off
//! `OrderDimensionName` for Rank tasks. Datasets register ground truth
//! under those names.

use crate::error::{QurkError, Result};
use crate::lang::ast::{PropValue, ResponseOption, ResponseSpec, TaskDefAst, Template};

/// The four task types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskType {
    Filter,
    Generative,
    Rank,
    EquiJoin,
}

impl TaskType {
    pub fn name(&self) -> &'static str {
        match self {
            TaskType::Filter => "Filter",
            TaskType::Generative => "Generative",
            TaskType::Rank => "Rank",
            TaskType::EquiJoin => "EquiJoin",
        }
    }
}

/// Answer-combination strategy (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CombinerKind {
    #[default]
    MajorityVote,
    /// Ipeirotis et al. EM (§2.1's `QualityAdjust`).
    QualityAdjust,
}

/// Text normalization strategy (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NormalizerKind {
    #[default]
    None,
    LowercaseSingleSpace,
}

impl NormalizerKind {
    pub fn apply(&self, raw: &str) -> String {
        match self {
            NormalizerKind::None => raw.to_owned(),
            NormalizerKind::LowercaseSingleSpace => {
                qurk_combine::normalize_lowercase_single_space(raw)
            }
        }
    }
}

/// One generative output field.
#[derive(Debug, Clone, PartialEq)]
pub struct GenField {
    pub name: String,
    pub response: ResponseSpec,
    pub combiner: CombinerKind,
    pub normalizer: NormalizerKind,
}

impl GenField {
    /// For Radio responses: the concrete option labels (UNKNOWN
    /// excluded) and whether UNKNOWN is offered.
    pub fn radio_options(&self) -> Option<(Vec<&str>, bool)> {
        match &self.response {
            ResponseSpec::Radio { options, .. } => {
                let mut labels = Vec::new();
                let mut unknown = false;
                for o in options {
                    match o {
                        ResponseOption::Value(v) => labels.push(v.as_str()),
                        ResponseOption::Unknown => unknown = true,
                    }
                }
                Some((labels, unknown))
            }
            ResponseSpec::Text { .. } => None,
        }
    }
}

/// A validated task definition.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskDef {
    pub name: String,
    pub params: Vec<String>,
    pub ty: TaskType,
    pub combiner: CombinerKind,
    /// Filter / Generative prompt.
    pub prompt: Option<Template>,
    /// Filter button labels.
    pub yes_text: String,
    pub no_text: String,
    /// Generative fields (single-response tasks get one synthetic field
    /// named "value").
    pub fields: Vec<GenField>,
    /// Rank labels.
    pub singular_name: Option<String>,
    pub plural_name: Option<String>,
    pub order_dimension: Option<String>,
    pub least_name: Option<String>,
    pub most_name: Option<String>,
    /// Rank item HTML.
    pub html: Option<Template>,
    /// EquiJoin UI templates.
    pub left_preview: Option<Template>,
    pub left_normal: Option<Template>,
    pub right_preview: Option<Template>,
    pub right_normal: Option<Template>,
}

impl TaskDef {
    /// Validate and convert a parsed TASK block.
    pub fn from_ast(ast: &TaskDefAst) -> Result<TaskDef> {
        let ty = match ast.task_type.as_str() {
            t if t.eq_ignore_ascii_case("Filter") => TaskType::Filter,
            t if t.eq_ignore_ascii_case("Generative") => TaskType::Generative,
            t if t.eq_ignore_ascii_case("Rank") => TaskType::Rank,
            t if t.eq_ignore_ascii_case("EquiJoin") => TaskType::EquiJoin,
            other => {
                return Err(QurkError::Other(format!(
                    "task {}: unknown TYPE {other}",
                    ast.name
                )))
            }
        };

        let template_prop = |name: &str| -> Option<Template> {
            match ast.prop(name) {
                Some(PropValue::Template(t)) => Some(t.clone()),
                _ => None,
            }
        };
        let string_prop = |name: &str| -> Option<String> {
            match ast.prop(name) {
                Some(PropValue::Template(t)) => Some(t.format.clone()),
                Some(PropValue::Ident(s)) => Some(s.clone()),
                _ => None,
            }
        };

        let combiner = match ast.prop("Combiner") {
            None => CombinerKind::MajorityVote,
            Some(PropValue::Ident(s)) if s.eq_ignore_ascii_case("MajorityVote") => {
                CombinerKind::MajorityVote
            }
            Some(PropValue::Ident(s)) if s.eq_ignore_ascii_case("QualityAdjust") => {
                CombinerKind::QualityAdjust
            }
            Some(other) => {
                return Err(QurkError::Other(format!(
                    "task {}: bad Combiner {other:?}",
                    ast.name
                )))
            }
        };

        // Generative fields: explicit Fields block or single Response.
        let mut fields = Vec::new();
        if let Some(PropValue::Fields(fs)) = ast.prop("Fields") {
            for (fname, props) in fs {
                let mut response = None;
                let mut fcomb = combiner;
                let mut norm = NormalizerKind::None;
                for (pname, pval) in props {
                    match (pname.to_ascii_lowercase().as_str(), pval) {
                        ("response", PropValue::Response(r)) => response = Some(r.clone()),
                        ("combiner", PropValue::Ident(s)) => {
                            fcomb = if s.eq_ignore_ascii_case("QualityAdjust") {
                                CombinerKind::QualityAdjust
                            } else {
                                CombinerKind::MajorityVote
                            };
                        }
                        ("normalizer", PropValue::Ident(s)) => {
                            norm = if s.eq_ignore_ascii_case("LowercaseSingleSpace") {
                                NormalizerKind::LowercaseSingleSpace
                            } else {
                                NormalizerKind::None
                            };
                        }
                        _ => {
                            return Err(QurkError::Other(format!(
                                "task {}: bad field property {pname}",
                                ast.name
                            )))
                        }
                    }
                }
                fields.push(GenField {
                    name: fname.clone(),
                    response: response.ok_or_else(|| {
                        QurkError::Other(format!(
                            "task {}: field {fname} missing Response",
                            ast.name
                        ))
                    })?,
                    combiner: fcomb,
                    normalizer: norm,
                });
            }
        } else if let Some(PropValue::Response(r)) = ast.prop("Response") {
            fields.push(GenField {
                name: "value".to_owned(),
                response: r.clone(),
                combiner,
                normalizer: NormalizerKind::None,
            });
        }

        let def = TaskDef {
            name: ast.name.clone(),
            params: ast.params.clone(),
            ty,
            combiner,
            prompt: template_prop("Prompt"),
            yes_text: string_prop("YesText").unwrap_or_else(|| "Yes".to_owned()),
            no_text: string_prop("NoText").unwrap_or_else(|| "No".to_owned()),
            fields,
            singular_name: string_prop("SingularName").or_else(|| string_prop("SingluarName")),
            plural_name: string_prop("PluralName"),
            order_dimension: string_prop("OrderDimensionName"),
            least_name: string_prop("LeastName"),
            most_name: string_prop("MostName"),
            html: template_prop("Html"),
            left_preview: template_prop("LeftPreview"),
            left_normal: template_prop("LeftNormal"),
            right_preview: template_prop("RightPreview"),
            right_normal: template_prop("RightNormal"),
        };
        def.validate()?;
        Ok(def)
    }

    fn validate(&self) -> Result<()> {
        let fail = |m: String| Err(QurkError::Other(format!("task {}: {m}", self.name)));
        match self.ty {
            TaskType::Filter => {
                if self.prompt.is_none() {
                    return fail("Filter requires a Prompt".into());
                }
                if self.params.len() != 1 {
                    return fail(format!("Filter takes 1 param, has {}", self.params.len()));
                }
            }
            TaskType::Generative => {
                if self.prompt.is_none() {
                    return fail("Generative requires a Prompt".into());
                }
                if self.fields.is_empty() {
                    return fail("Generative requires Fields or a Response".into());
                }
            }
            TaskType::Rank => {
                if self.order_dimension.is_none() {
                    return fail("Rank requires OrderDimensionName".into());
                }
                if self.params.len() != 1 {
                    return fail(format!("Rank takes 1 param, has {}", self.params.len()));
                }
            }
            TaskType::EquiJoin => {
                if self.params.len() != 2 {
                    return fail(format!(
                        "EquiJoin takes 2 params, has {}",
                        self.params.len()
                    ));
                }
            }
        }
        Ok(())
    }

    /// The simulation key this task asks about: task name for
    /// filters/features, `OrderDimensionName` for ranks.
    pub fn oracle_key(&self) -> &str {
        match self.ty {
            TaskType::Rank => self.order_dimension.as_deref().unwrap_or(&self.name),
            _ => &self.name,
        }
    }

    /// For single-field categorical tasks (feature extraction): option
    /// labels and whether UNKNOWN is offered.
    pub fn feature_options(&self) -> Option<(Vec<&str>, bool)> {
        if self.fields.len() == 1 {
            self.fields[0].radio_options()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse_tasks;

    fn one(src: &str) -> TaskDef {
        let asts = parse_tasks(src).unwrap();
        TaskDef::from_ast(&asts[0]).unwrap()
    }

    #[test]
    fn filter_defaults() {
        let t = one(r#"TASK isFemale(field) TYPE Filter:
                Prompt: "<img src='%s'>?", tuple[field]
            "#);
        assert_eq!(t.ty, TaskType::Filter);
        assert_eq!(t.yes_text, "Yes");
        assert_eq!(t.no_text, "No");
        assert_eq!(t.combiner, CombinerKind::MajorityVote);
        assert_eq!(t.oracle_key(), "isFemale");
    }

    #[test]
    fn filter_requires_prompt() {
        let asts = parse_tasks("TASK f(x) TYPE Filter:\n YesText: \"Y\"").unwrap();
        assert!(TaskDef::from_ast(&asts[0]).is_err());
    }

    #[test]
    fn rank_oracle_key_is_dimension() {
        let t = one(r#"TASK squareSorter(field) TYPE Rank:
                SingularName: "square"
                PluralName: "squares"
                OrderDimensionName: "area"
                LeastName: "smallest"
                MostName: "largest"
                Html: "<img src='%s'>", tuple[field]
            "#);
        assert_eq!(t.ty, TaskType::Rank);
        assert_eq!(t.oracle_key(), "area");
        assert_eq!(t.most_name.as_deref(), Some("largest"));
    }

    #[test]
    fn rank_requires_dimension() {
        let asts = parse_tasks("TASK r(x) TYPE Rank:\n SingularName: \"s\"").unwrap();
        assert!(TaskDef::from_ast(&asts[0]).is_err());
    }

    #[test]
    fn generative_single_response_becomes_value_field() {
        let t = one(r#"TASK gender(field) TYPE Generative:
                Prompt: "%s gender?", tuple[field]
                Response: Radio("Gender", ["Male", "Female", UNKNOWN])
                Combiner: MajorityVote
            "#);
        assert_eq!(t.fields.len(), 1);
        let (opts, unknown) = t.feature_options().unwrap();
        assert_eq!(opts, vec!["Male", "Female"]);
        assert!(unknown);
    }

    #[test]
    fn generative_fields_with_normalizers() {
        let t = one(r#"TASK animalInfo(field) TYPE Generative:
                Prompt: "%s?", tuple[field]
                Fields: {
                    common: { Response: Text("Common name"),
                              Combiner: MajorityVote,
                              Normalizer: LowercaseSingleSpace }
                }
            "#);
        assert_eq!(t.fields[0].normalizer, NormalizerKind::LowercaseSingleSpace);
        assert_eq!(t.fields[0].normalizer.apply(" A  B "), "a b");
        assert!(t.feature_options().is_none()); // Text, not Radio
    }

    #[test]
    fn equijoin_validates_arity() {
        let t = one(r#"TASK samePerson(f1, f2) TYPE EquiJoin:
                Combiner: QualityAdjust
            "#);
        assert_eq!(t.ty, TaskType::EquiJoin);
        assert_eq!(t.combiner, CombinerKind::QualityAdjust);
        let asts = parse_tasks("TASK bad(x) TYPE EquiJoin:\n Combiner: MajorityVote").unwrap();
        assert!(TaskDef::from_ast(&asts[0]).is_err());
    }

    #[test]
    fn unknown_type_rejected() {
        let asts = parse_tasks("TASK t(x) TYPE Wat:\n Prompt: \"p\"").unwrap();
        assert!(TaskDef::from_ast(&asts[0]).is_err());
    }

    #[test]
    fn normalizer_none_is_identity() {
        assert_eq!(NormalizerKind::None.apply(" A "), " A ");
    }
}
