//! Logical planning (§2.5).
//!
//! "Query planning in Qurk is done in a way similar to conventional
//! logical to physical query plan generation; a query is translated
//! into a plan-tree that processes input tables in a bottom-up fashion.
//! Relational operations that can be performed by a computer rather
//! than humans are pushed down the query plan as far as possible."
//!
//! Rules reproduced here:
//!
//! * machine-evaluable comparisons sit directly above scans, below any
//!   crowd filter;
//! * crowd filters referencing a single table are applied before joins
//!   over that table;
//! * conjunct (AND) filters run serially, disjunct (OR) groups in
//!   parallel;
//! * joins are left-deep in query order (Qurk "currently lacks
//!   selectivity estimation, so it orders filters and joins as they
//!   appear in the query");
//! * ORDER BY / LIMIT / projection top the plan.

use crate::catalog::Catalog;
use crate::error::{QurkError, Result};
use crate::lang::ast::{Expr, JoinClause, OrderExpr, Predicate, Query, SelectItem, UdfCall};
use crate::task::TaskType;

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    Scan {
        table: String,
        alias: String,
    },
    /// Machine-evaluable comparisons (no HITs).
    MachineFilter {
        input: Box<LogicalPlan>,
        predicates: Vec<Predicate>,
    },
    /// Serial crowd filters (AND).
    CrowdFilter {
        input: Box<LogicalPlan>,
        conjuncts: Vec<UdfCall>,
    },
    /// Parallel disjunct groups (OR of ANDs).
    CrowdFilterOr {
        input: Box<LogicalPlan>,
        groups: Vec<Vec<Predicate>>,
    },
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        clause: JoinClause,
    },
    OrderBy {
        input: Box<LogicalPlan>,
        keys: Vec<OrderExpr>,
    },
    Limit {
        input: Box<LogicalPlan>,
        n: usize,
    },
    Project {
        input: Box<LogicalPlan>,
        items: Vec<SelectItem>,
    },
}

impl std::fmt::Display for LogicalPlan {
    /// Indented plan-tree rendering (the §6 "iterative debugging"
    /// EXPLAIN-style view); also reused verbatim in
    /// [`QueryReport::explain_full`](crate::session::QueryReport::explain_full).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        f.write_str(&out)
    }
}

impl LogicalPlan {
    /// Pretty-print the plan tree (equivalent to `to_string()`).
    pub fn explain(&self) -> String {
        self.to_string()
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan { table, alias } => {
                out.push_str(&format!("{pad}Scan {table} AS {alias}\n"));
            }
            LogicalPlan::MachineFilter { input, predicates } => {
                out.push_str(&format!(
                    "{pad}MachineFilter [{} predicates]\n",
                    predicates.len()
                ));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::CrowdFilter { input, conjuncts } => {
                let names: Vec<&str> = conjuncts.iter().map(|c| c.name.as_str()).collect();
                out.push_str(&format!("{pad}CrowdFilter {}\n", names.join(" AND ")));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::CrowdFilterOr { input, groups } => {
                out.push_str(&format!("{pad}CrowdFilterOr [{} groups]\n", groups.len()));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                clause,
            } => {
                out.push_str(&format!(
                    "{pad}CrowdJoin ON {} [{} POSSIBLY]\n",
                    clause.on.name,
                    clause.possibly.len()
                ));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            LogicalPlan::OrderBy { input, keys } => {
                out.push_str(&format!("{pad}OrderBy [{} keys]\n", keys.len()));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Project { input, items } => {
                out.push_str(&format!("{pad}Project [{} columns]\n", items.len()));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

/// Which table binding (alias) an expression references; `None` if
/// several or none.
fn expr_binding(e: &Expr) -> Option<String> {
    match e {
        Expr::Column(c) => c
            .split('.')
            .next()
            .map(|s| s.to_owned())
            .filter(|_| c.contains('.')),
        Expr::Literal(_) => None,
        Expr::Udf(call) => call_binding(call),
    }
}

fn call_binding(call: &UdfCall) -> Option<String> {
    let mut binding: Option<String> = None;
    for a in &call.args {
        match expr_binding(a) {
            None => continue,
            Some(b) => match &binding {
                None => binding = Some(b),
                Some(prev) if *prev == b => {}
                Some(_) => return None, // touches multiple tables
            },
        }
    }
    binding
}

fn predicate_binding(p: &Predicate) -> Option<String> {
    match p {
        Predicate::Udf(c) => call_binding(c),
        Predicate::Compare { left, right, .. } => match (expr_binding(left), expr_binding(right)) {
            (Some(a), Some(b)) if a == b => Some(a),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            _ => None,
        },
    }
}

/// Compile a parsed query into a logical plan.
pub fn plan_query(query: &Query, catalog: &Catalog) -> Result<LogicalPlan> {
    // Validate tables and collect bindings.
    catalog.table(&query.from.table)?;
    for j in &query.joins {
        catalog.table(&j.right.table)?;
    }

    // Validate UDF references and types.
    let check_task = |call: &UdfCall, expected: &[TaskType]| -> Result<()> {
        let t = catalog.task(&call.name)?;
        if !expected.contains(&t.ty) {
            return Err(QurkError::TaskTypeMismatch {
                task: call.name.clone(),
                expected: expected[0].name(),
                found: t.ty.name(),
            });
        }
        Ok(())
    };
    for group in &query.where_groups {
        for p in group {
            if let Predicate::Udf(c) = p {
                check_task(c, &[TaskType::Filter])?;
            }
        }
    }
    for j in &query.joins {
        check_task(&j.on, &[TaskType::EquiJoin])?;
        for p in &j.possibly {
            match p {
                crate::lang::ast::PossiblyClause::FeatureEq { left, right } => {
                    check_task(left, &[TaskType::Generative])?;
                    check_task(right, &[TaskType::Generative])?;
                }
                crate::lang::ast::PossiblyClause::FeatureLit { call, .. } => {
                    check_task(call, &[TaskType::Generative])?;
                }
            }
        }
    }
    for o in &query.order_by {
        if let Expr::Udf(c) = &o.expr {
            check_task(c, &[TaskType::Rank])?;
        }
    }

    // Partition WHERE predicates. Single-group (pure conjunction)
    // predicates are split per binding and pushed; multi-group (OR)
    // predicates stay together above the joins.
    let single_group = query.where_groups.len() == 1;
    let mut per_binding: std::collections::HashMap<String, (Vec<Predicate>, Vec<UdfCall>)> =
        std::collections::HashMap::new();
    let mut residual: Vec<Predicate> = Vec::new();
    if single_group {
        for p in &query.where_groups[0] {
            match (predicate_binding(p), p) {
                (Some(b), Predicate::Compare { .. }) => {
                    per_binding.entry(b).or_default().0.push(p.clone())
                }
                (Some(b), Predicate::Udf(c)) => per_binding.entry(b).or_default().1.push(c.clone()),
                (None, _) => residual.push(p.clone()),
            }
        }
    }

    // Build each base table's sub-plan: scan -> machine -> crowd.
    let build_base = |table: &str, alias: &str| -> LogicalPlan {
        let mut plan = LogicalPlan::Scan {
            table: table.to_owned(),
            alias: alias.to_owned(),
        };
        if let Some((machine, crowd)) = per_binding.get(alias) {
            if !machine.is_empty() {
                plan = LogicalPlan::MachineFilter {
                    input: Box::new(plan),
                    predicates: machine.clone(),
                };
            }
            if !crowd.is_empty() {
                plan = LogicalPlan::CrowdFilter {
                    input: Box::new(plan),
                    conjuncts: crowd.clone(),
                };
            }
        }
        plan
    };

    let mut plan = build_base(&query.from.table, query.from.binding());
    // Left-deep joins in query order.
    for j in &query.joins {
        let right = build_base(&j.right.table, j.right.binding());
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(right),
            clause: j.clone(),
        };
    }

    // Residual predicates / OR groups above the joins.
    if single_group {
        if !residual.is_empty() {
            let (machine, crowd): (Vec<_>, Vec<_>) = residual
                .into_iter()
                .partition(|p| matches!(p, Predicate::Compare { .. }));
            if !machine.is_empty() {
                plan = LogicalPlan::MachineFilter {
                    input: Box::new(plan),
                    predicates: machine,
                };
            }
            if !crowd.is_empty() {
                plan = LogicalPlan::CrowdFilter {
                    input: Box::new(plan),
                    conjuncts: crowd
                        .into_iter()
                        .map(|p| match p {
                            Predicate::Udf(c) => c,
                            Predicate::Compare { .. } => unreachable!(),
                        })
                        .collect(),
                };
            }
        }
    } else if !query.where_groups.is_empty() {
        plan = LogicalPlan::CrowdFilterOr {
            input: Box::new(plan),
            groups: query.where_groups.clone(),
        };
    }

    if !query.order_by.is_empty() {
        plan = LogicalPlan::OrderBy {
            input: Box::new(plan),
            keys: query.order_by.clone(),
        };
    }
    if let Some(n) = query.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    plan = LogicalPlan::Project {
        input: Box::new(plan),
        items: query.select.clone(),
    };
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse_query;
    use crate::relation::Relation;
    use crate::schema::{Schema, ValueType};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(&[
            ("id", ValueType::Int),
            ("name", ValueType::Text),
            ("img", ValueType::Item),
        ]);
        c.register_table("celeb", Relation::new(schema.clone()));
        c.register_table("photos", Relation::new(schema.clone()));
        c.register_table("scenes", Relation::new(schema));
        c.define_tasks(
            r#"TASK isFemale(field) TYPE Filter:
                Prompt: "%s?", tuple[field]
               TASK samePerson(a, b) TYPE EquiJoin:
                Combiner: QualityAdjust
               TASK gender(field) TYPE Generative:
                Prompt: "%s?", tuple[field]
                Response: Radio("G", ["Male", "Female", UNKNOWN])
               TASK sorter(field) TYPE Rank:
                OrderDimensionName: "area"
            "#,
        )
        .unwrap();
        c
    }

    fn plan(src: &str) -> LogicalPlan {
        plan_query(&parse_query(src).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn machine_below_crowd() {
        let p = plan("SELECT c.name FROM celeb AS c WHERE isFemale(c.img) AND c.id < 5");
        // Project -> CrowdFilter -> MachineFilter -> Scan
        let LogicalPlan::Project { input, .. } = p else {
            panic!()
        };
        let LogicalPlan::CrowdFilter { input, .. } = *input else {
            panic!("crowd filter should top machine filter")
        };
        let LogicalPlan::MachineFilter { input, .. } = *input else {
            panic!("machine filter missing")
        };
        assert!(matches!(*input, LogicalPlan::Scan { .. }));
    }

    #[test]
    fn filters_pushed_below_join() {
        let p = plan(
            "SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img) \
             WHERE isFemale(c.img)",
        );
        let LogicalPlan::Project { input, .. } = p else {
            panic!()
        };
        let LogicalPlan::Join { left, right, .. } = *input else {
            panic!("expected join on top")
        };
        assert!(matches!(*left, LogicalPlan::CrowdFilter { .. }));
        assert!(matches!(*right, LogicalPlan::Scan { .. }));
    }

    #[test]
    fn or_groups_stay_above() {
        let p = plan("SELECT c.name FROM celeb c WHERE isFemale(c.img) OR isFemale(c.img)");
        let LogicalPlan::Project { input, .. } = p else {
            panic!()
        };
        assert!(matches!(*input, LogicalPlan::CrowdFilterOr { groups, .. } if groups.len() == 2));
    }

    #[test]
    fn order_and_limit_stack() {
        let p = plan("SELECT name FROM celeb ORDER BY sorter(img) LIMIT 3");
        let LogicalPlan::Project { input, .. } = p else {
            panic!()
        };
        let LogicalPlan::Limit { input, n } = *input else {
            panic!()
        };
        assert_eq!(n, 3);
        assert!(matches!(*input, LogicalPlan::OrderBy { .. }));
    }

    #[test]
    fn unknown_table_rejected() {
        let q = parse_query("SELECT x FROM nope").unwrap();
        assert!(matches!(
            plan_query(&q, &catalog()),
            Err(QurkError::UnknownTable(_))
        ));
    }

    #[test]
    fn unknown_task_rejected() {
        let q = parse_query("SELECT name FROM celeb WHERE notATask(img)").unwrap();
        assert!(matches!(
            plan_query(&q, &catalog()),
            Err(QurkError::UnknownTask(_))
        ));
    }

    #[test]
    fn task_type_mismatch_rejected() {
        // A Rank task used as a filter.
        let q = parse_query("SELECT name FROM celeb WHERE sorter(img)").unwrap();
        assert!(matches!(
            plan_query(&q, &catalog()),
            Err(QurkError::TaskTypeMismatch { .. })
        ));
        // A Filter task in ORDER BY.
        let q = parse_query("SELECT name FROM celeb ORDER BY isFemale(img)").unwrap();
        assert!(matches!(
            plan_query(&q, &catalog()),
            Err(QurkError::TaskTypeMismatch { .. })
        ));
    }

    #[test]
    fn possibly_tasks_validated() {
        let p = plan(
            "SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img) \
             AND POSSIBLY gender(c.img) = gender(p.img)",
        );
        let LogicalPlan::Project { input, .. } = p else {
            panic!()
        };
        assert!(matches!(*input, LogicalPlan::Join { clause, .. } if clause.possibly.len() == 1));
    }

    #[test]
    fn explain_renders_tree() {
        let p = plan(
            "SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img) \
             WHERE isFemale(c.img) ORDER BY sorter(c.img) LIMIT 2",
        );
        let text = p.explain();
        assert!(text.contains("CrowdJoin ON samePerson"));
        assert!(text.contains("CrowdFilter isFemale"));
        assert!(text.contains("Limit 2"));
        // Indentation shows the tree: scans sit deeper than the join.
        let depth = |needle: &str| {
            text.lines()
                .find(|l| l.contains(needle))
                .map(|l| l.len() - l.trim_start().len())
                .unwrap()
        };
        assert!(depth("Scan") > depth("CrowdJoin"));
    }

    /// Golden rendering of a 2-join + OR-filter query: `Display` is
    /// the EXPLAIN surface, so its exact shape is pinned.
    #[test]
    fn display_golden_two_joins_with_or_filter() {
        let p = plan(
            "SELECT c.name FROM celeb c \
             JOIN photos p ON samePerson(c.img, p.img) \
             JOIN scenes s ON samePerson(c.img, s.img) \
             WHERE isFemale(c.img) OR c.id < 3",
        );
        let expected = "\
Project [1 columns]
  CrowdFilterOr [2 groups]
    CrowdJoin ON samePerson [0 POSSIBLY]
      CrowdJoin ON samePerson [0 POSSIBLY]
        Scan celeb AS c
        Scan photos AS p
      Scan scenes AS s
";
        assert_eq!(p.to_string(), expected);
        assert_eq!(p.explain(), p.to_string());
    }
}
