//! # qurk
//!
//! A Rust reproduction of **Qurk**, the declarative crowd-powered query
//! engine of *Human-powered Sorts and Joins* (Marcus, Wu, Karger,
//! Madden, Miller — VLDB 2011).
//!
//! Qurk runs SQL-style queries whose filter, join, sort and generative
//! operators are executed by crowd workers. Operators are generic over
//! a [`backend::CrowdBackend`] — *what* is asked is decoupled from
//! *where* the HITs run — and every [`session::Session`] stacks
//! metering and caching decorators over the backend you give it:
//!
//! ```text
//!  query text ──lang::parser──▶ AST ──plan──▶ logical plan
//!      │                                        │
//!  TASK DSL ──catalog (task templates)──────────┤
//!                                               ▼
//!                  opt::physical::compile       OPTIMIZER: cost-based
//!                    ├─ opt::stats              physical plan selection
//!                    ├─ opt::cost               (HIT/$/latency model;
//!                    └─ opt::explain            as-written fallback)
//!                                               │ physical plan
//!                                               ▼
//!                  analyze::analyze_query       ANALYZER: pre-flight
//!                    └─ QA001…QA007 rules       diagnostics (check() /
//!                       (reuses opt::cost)      LintPolicy deny|warn|allow)
//!                                               │
//!                                               ▼
//!                             session::Session / QueryBuilder
//!                             (exec::Executor = deprecated shim)
//!                                               │
//!                 ops::{filter, generative, join, sort}   [generic over B]
//!                                               │        └──▶ opt::stats
//!                 hit::{batch, compiler}        │         (learned σ/κ/latency)
//!                                               ▼
//!                  backend::MeteringBackend     per-query accounting
//!                    └─ backend::CachingBackend Task Cache (Figure 1)
//!                         └─ B: CrowdBackend    Marketplace | Replay | …
//!
//!   MULTI-TENANT (qurk-serve):
//!                  service::QueryService        admission gate + budgets +
//!                    └─ service::scheduler      fairness policy; PARALLEL
//!                         │                     machine phase, barrier per
//!                         │                     HIT round, 1 serialized clock
//!                         └─ service::TenantBackend ──▶ service::SharedMarket
//!                              (stages posts,           (LRU-bounded cross-
//!                               yields on `run`)         tenant Task Cache)
//! ```
//!
//! ## The paper's contributions, mapped
//!
//! | Paper | Module |
//! |---|---|
//! | §2.1 query language + task templates | [`lang`], [`task`], [`catalog`] |
//! | §2.5 HIT generation / plan rules | [`plan`], [`hit`] |
//! | §2.6 Task Cache / MTurk boundary | [`backend`] |
//! | §3.1 SimpleJoin / NaiveBatch / SmartBatch | [`ops::join`] |
//! | §3.2 POSSIBLY feature filtering + κ/selectivity/leave-one-out | [`ops::join::feature_filter`] |
//! | §4.1 Compare / Rate / Hybrid sorts | [`ops::sort`] |
//! | §2.1 MajorityVote / QualityAdjust | re-exported from `qurk-combine` |
//! | §2.5 "lacks selectivity estimation" (closed) | [`opt`] |
//! | §6 adaptive assignment & batch sizing (future work) | [`adaptive`] |
//!
//! ## Quickstart
//!
//! ```
//! use qurk::prelude::*;
//!
//! // Hidden ground truth + simulated crowd.
//! let mut truth = qurk_crowd::GroundTruth::new();
//! let items = truth.new_items(4);
//! for (i, &it) in items.iter().enumerate() {
//!     truth.set_predicate(
//!         it,
//!         "isFemale",
//!         qurk_crowd::truth::PredicateTruth { value: i % 2 == 0, error_rate: 0.03 },
//!     );
//! }
//! let market = qurk_crowd::Marketplace::new(&qurk_crowd::CrowdConfig::default(), truth);
//!
//! // A table whose `img` column references crowd-visible items.
//! let mut celeb = Relation::new(Schema::new(&[
//!     ("name", ValueType::Text),
//!     ("img", ValueType::Item),
//! ]));
//! for (i, &it) in items.iter().enumerate() {
//!     celeb.push(vec![Value::text(format!("celeb{i}")), Value::Item(it)]).unwrap();
//! }
//!
//! // Register the table + a Filter task, then open a session.
//! let mut catalog = Catalog::new();
//! catalog.register_table("celeb", celeb);
//! catalog
//!     .define_tasks(
//!         r#"TASK isFemale(field) TYPE Filter:
//!             Prompt: "<img src='%s'> Is the person a woman?", tuple[field]
//!             YesText: "Yes"
//!             NoText: "No"
//!             Combiner: MajorityVote
//!         "#,
//!     )
//!     .unwrap();
//! let mut session = Session::builder().catalog(&catalog).backend(market).build();
//!
//! // Fluent per-query configuration; overrides never leak between
//! // queries on the same session.
//! let report = session
//!     .query("SELECT c.name FROM celeb AS c WHERE isFemale(c.img)")
//!     .budget_dollars(1.0)
//!     .report()
//!     .unwrap();
//! assert_eq!(report.relation.len(), 2);
//! assert!(report.cost_dollars > 0.0);
//!
//! // Identical re-runs are answered from the session's cache.
//! let again = session
//!     .query("SELECT c.name FROM celeb AS c WHERE isFemale(c.img)")
//!     .report()
//!     .unwrap();
//! assert_eq!(again.hits_posted, 0);
//! ```

pub mod adaptive;
pub mod analyze;
pub mod backend;
pub mod catalog;
pub mod columnar;
pub mod error;
pub mod exec;
pub mod hit;
pub mod intern;
pub mod lang;
pub mod ops;
pub mod opt;
pub mod plan;
pub mod relation;
pub mod schema;
pub mod service;
pub mod session;
pub mod store;
pub mod task;
pub mod tuple;
pub mod value;

/// Convenient re-exports for typical use.
pub mod prelude {
    pub use crate::analyze::{Code, Diagnostic, LintConfig, LintPolicy, Severity};
    pub use crate::backend::{CachingBackend, CrowdBackend, MeteringBackend, ReplayBackend};
    pub use crate::catalog::Catalog;
    pub use crate::error::QurkError;
    #[allow(deprecated)]
    pub use crate::exec::Executor;
    pub use crate::opt::{CostEstimate, OptimizeMode, StatisticsStore};
    pub use crate::relation::Relation;
    pub use crate::schema::{Schema, ValueType};
    pub use crate::session::{ExecConfig, QueryReport, Session, SessionBuilder, SortMode};
    pub use crate::value::Value;
}

pub use analyze::{Code, Diagnostic, LintConfig, LintPolicy, Severity};
pub use backend::{
    BackendUsage, CachingBackend, CrowdBackend, MeteringBackend, RecordingBackend, ReplayBackend,
    ReplayTrace,
};
pub use catalog::Catalog;
pub use columnar::{RelationWindow, PROCESSING_WINDOW_SIZE};
pub use error::QurkError;
#[allow(deprecated)]
pub use exec::Executor;
pub use intern::{IStr, SymbolTable, ValueId};
pub use opt::{CostEstimate, CostModel, OptimizeMode, PlanReport, StatisticsStore};
pub use relation::Relation;
pub use schema::{Schema, ValueType};
pub use service::{
    PollOrder, QueryService, SchedulePolicy, ServiceStats, SharedMarket, TenantBackend,
};
pub use session::{ExecConfig, QueryBuilder, QueryReport, Session, SessionBuilder, SortMode};
pub use store::{CrashPoint, DurableStore, FaultPlan, QueryCheckpoint, StoreError, StoreHealth};
pub use tuple::Tuple;
pub use value::Value;
