//! # qurk
//!
//! A Rust reproduction of **Qurk**, the declarative crowd-powered query
//! engine of *Human-powered Sorts and Joins* (Marcus, Wu, Karger,
//! Madden, Miller — VLDB 2011).
//!
//! Qurk runs SQL-style queries whose filter, join, sort and generative
//! operators are executed by crowd workers. This crate implements the
//! full pipeline against the simulated marketplace in `qurk-crowd`:
//!
//! ```text
//!  query text ──lang::parser──▶ AST ──plan──▶ logical plan
//!      │                                        │
//!  TASK DSL ──catalog (task templates)──────────┤
//!                                               ▼
//!                                       exec::Executor
//!                                               │
//!                 ops::{filter, generative, join, sort}
//!                                               │
//!                 hit::{batch, compiler, cache} │
//!                                               ▼
//!                              qurk_crowd::Marketplace (HIT groups)
//! ```
//!
//! ## The paper's contributions, mapped
//!
//! | Paper | Module |
//! |---|---|
//! | §2.1 query language + task templates | [`lang`], [`task`], [`catalog`] |
//! | §2.5 HIT generation / plan rules | [`plan`], [`hit`] |
//! | §3.1 SimpleJoin / NaiveBatch / SmartBatch | [`ops::join`] |
//! | §3.2 POSSIBLY feature filtering + κ/selectivity/leave-one-out | [`ops::join::feature_filter`] |
//! | §4.1 Compare / Rate / Hybrid sorts | [`ops::sort`] |
//! | §2.1 MajorityVote / QualityAdjust | re-exported from `qurk-combine` |
//! | §6 adaptive assignment & batch sizing (future work) | [`adaptive`] |
//!
//! ## Quickstart
//!
//! ```
//! use qurk::prelude::*;
//!
//! // Hidden ground truth + simulated crowd.
//! let mut truth = qurk_crowd::GroundTruth::new();
//! let items = truth.new_items(4);
//! for (i, &it) in items.iter().enumerate() {
//!     truth.set_predicate(
//!         it,
//!         "isFemale",
//!         qurk_crowd::truth::PredicateTruth { value: i % 2 == 0, error_rate: 0.03 },
//!     );
//! }
//! let mut market = qurk_crowd::Marketplace::new(&qurk_crowd::CrowdConfig::default(), truth);
//!
//! // A table whose `img` column references crowd-visible items.
//! let mut celeb = Relation::new(Schema::new(&[
//!     ("name", ValueType::Text),
//!     ("img", ValueType::Item),
//! ]));
//! for (i, &it) in items.iter().enumerate() {
//!     celeb.push(vec![Value::text(format!("celeb{i}")), Value::Item(it)]).unwrap();
//! }
//!
//! // Register the table + a Filter task, then run a query.
//! let mut catalog = Catalog::new();
//! catalog.register_table("celeb", celeb);
//! catalog
//!     .define_tasks(
//!         r#"TASK isFemale(field) TYPE Filter:
//!             Prompt: "<img src='%s'> Is the person a woman?", tuple[field]
//!             YesText: "Yes"
//!             NoText: "No"
//!             Combiner: MajorityVote
//!         "#,
//!     )
//!     .unwrap();
//! let result = Executor::new(&catalog, &mut market)
//!     .query("SELECT c.name FROM celeb AS c WHERE isFemale(c.img)")
//!     .unwrap();
//! assert_eq!(result.len(), 2);
//! ```

pub mod adaptive;
pub mod catalog;
pub mod error;
pub mod exec;
pub mod hit;
pub mod lang;
pub mod ops;
pub mod plan;
pub mod relation;
pub mod schema;
pub mod task;
pub mod tuple;
pub mod value;

/// Convenient re-exports for typical use.
pub mod prelude {
    pub use crate::catalog::Catalog;
    pub use crate::error::QurkError;
    pub use crate::exec::Executor;
    pub use crate::relation::Relation;
    pub use crate::schema::{Schema, ValueType};
    pub use crate::value::Value;
}

pub use catalog::Catalog;
pub use error::QurkError;
pub use exec::Executor;
pub use relation::Relation;
pub use schema::{Schema, ValueType};
pub use tuple::Tuple;
pub use value::Value;
