//! The `Session` / `QueryBuilder` execution API.
//!
//! A [`Session`] binds a [`Catalog`] to any [`CrowdBackend`] and runs
//! queries against it. Internally every session stacks two backend
//! decorators over the one you supply, plus a cross-query
//! [`StatisticsStore`] feeding the cost-based optimizer:
//!
//! ```text
//!   Session ── StatisticsStore (selectivities, κ/σ, latency)
//!     └─ MeteringBackend      per-query HIT/assignment/$ epochs
//!          └─ CachingBackend  Figure 1's Task Cache, at the HIT level
//!               └─ B          your backend (Marketplace, Replay, …)
//! ```
//!
//! Each query is planned logically ([`crate::plan`]), lowered to a
//! physical plan by the optimizer ([`crate::opt::physical`]) — cost
//! based by default, degrading to the as-written plan while no
//! statistics exist — and executed. Queries are configured fluently
//! and per query; overrides never touch the session's defaults, and
//! explicitly-set operators are *pinned* (the optimizer will not
//! override them):
//!
//! ```no_run
//! # use qurk::prelude::*;
//! # use qurk::exec::SortMode;
//! # use qurk::ops::sort::{HybridSort, RateSort};
//! # fn demo(catalog: &Catalog, market: qurk_crowd::Marketplace) -> Result<(), QurkError> {
//! let mut session = Session::builder().catalog(catalog).backend(market).build();
//! let report = session
//!     .query("SELECT p.name FROM people p WHERE isCool(p.img) ORDER BY byHeight(p.img)")
//!     .sort(SortMode::Hybrid(HybridSort::default(), 12))
//!     .combine_filters(true)
//!     .budget_dollars(5.0)
//!     .report()?;
//! println!("{} rows for ${:.2}", report.relation.len(), report.cost_dollars);
//! println!("{}", report.explain_full()); // plan + estimated vs actual
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use qurk_crowd::ItemId;

use crate::analyze::{analyze_query, render_diagnostics, Diagnostic, LintConfig, LintPolicy};
use crate::backend::{BackendUsage, CachingBackend, CrowdBackend, MeteringBackend};
use crate::catalog::Catalog;
use crate::error::{QurkError, Result};
use crate::lang::ast::{
    CmpOp, Expr, Literal, OrderExpr, PossiblyClause, Predicate, SelectItem, UdfCall,
};
use crate::lang::parser::parse_query;
use crate::ops::filter::FilterOp;
use crate::ops::generative::GenerativeOp;
use crate::ops::join::feature_filter::{FeatureFilter, FeatureFilterConfig, FeatureSpec};
use crate::ops::join::JoinOp;
use crate::ops::sort::{CompareSort, HybridSort, PairTally, RateSort, SortOutcome};
use crate::opt::explain::PlanReport;
use crate::opt::physical::{compile, OptimizeMode, PhysNode, PhysicalPlan, PinSet};
use crate::opt::stats::StatisticsStore;
use crate::plan::{plan_query, LogicalPlan};
use crate::relation::Relation;
use crate::schema::ValueType;
use crate::service::report::ServiceStats;
use crate::store::{DurableStore, StoreHealth};
use crate::task::TaskType;
use crate::tuple::Tuple;
use crate::value::Value;

/// Which sort implementation ORDER BY uses (§4.1).
#[derive(Debug, Clone)]
pub enum SortMode {
    Compare(CompareSort),
    Rate(RateSort),
    /// Hybrid with a fixed comparison budget (§4.1.3: "the user can
    /// control the resulting accuracy and cost by specifying the
    /// number of iterations").
    Hybrid(HybridSort, usize),
}

impl Default for SortMode {
    fn default() -> Self {
        SortMode::Compare(CompareSort::default())
    }
}

/// Default operator configuration, shared by every query of a session
/// unless overridden per query via [`QueryBuilder`].
#[derive(Debug, Clone, Default)]
pub struct ExecConfig {
    pub filter: FilterOp,
    pub join: JoinOp,
    pub feature_filter: FeatureFilterConfig,
    pub sort: SortMode,
    /// §2.6 *combining*: evaluate conjunctive WHERE filters in one HIT
    /// per tuple instead of serially. Footnote 2: this does more
    /// "work" (tuples the first filter would discard still reach the
    /// second) but cuts the total HIT count whenever the first filter
    /// passes anything.
    pub combine_conjunct_filters: bool,
    /// How the optimizer lowers logical plans. The cost-based default
    /// reproduces the as-written plan exactly until the session has
    /// learned statistics.
    pub optimize: OptimizeMode,
    /// Which operator choices were set explicitly (fluent setters set
    /// these); the optimizer never overrides a pinned choice.
    pub pins: PinSet,
    /// Pre-flight analyzer policy and thresholds.
    pub lint: LintConfig,
}

/// Per-query execution report, with resource numbers produced by the
/// session's [`MeteringBackend`] and the optimizer's plan report.
#[derive(Debug, Clone)]
pub struct QueryReport {
    pub relation: Relation,
    /// HITs posted to the real crowd while executing this query (cache
    /// hits cost none).
    pub hits_posted: usize,
    /// Dollars spent on this query.
    pub cost_dollars: f64,
    /// Assignments paid for by this query.
    pub assignments: u64,
    /// Virtual time this query took (seconds).
    pub elapsed_secs: f64,
    /// EXPLAIN text of the logical plan.
    pub explain: String,
    /// The optimizer's chosen physical plan, decision log, and cost
    /// estimate.
    pub plan: PlanReport,
    /// Pre-flight analyzer findings (empty under
    /// [`LintPolicy::Allow`] or for clean queries).
    pub diagnostics: Vec<Diagnostic>,
    /// Multi-tenant service accounting (queue wait, shared rounds,
    /// dedup savings). `None` for queries run outside
    /// [`crate::service`].
    pub service: Option<ServiceStats>,
}

impl QueryReport {
    /// This query's measured resource usage in [`BackendUsage`] form.
    pub fn actual_usage(&self) -> BackendUsage {
        BackendUsage {
            hits_posted: self.hits_posted,
            assignments: self.assignments,
            dollars: self.cost_dollars,
            elapsed_secs: self.elapsed_secs,
        }
    }

    /// Full EXPLAIN block: logical plan, chosen physical plan,
    /// optimizer decisions, and estimated vs actual HITs/$/latency.
    pub fn explain_full(&self) -> String {
        let mut out = self
            .plan
            .render_with_logical(&self.explain, Some(&self.actual_usage()));
        out.push_str(&render_diagnostics(&self.diagnostics));
        if let Some(svc) = &self.service {
            out.push_str(&svc.render());
        }
        out
    }
}

/// A catalog bound to a backend: the entry point for running queries.
///
/// Construct with [`Session::builder`] (or [`Session::new`] for the
/// defaults). The backend is owned; pass `&mut market` if you need the
/// marketplace back afterwards — `&mut B` implements [`CrowdBackend`].
pub struct Session<'c, B: CrowdBackend> {
    catalog: &'c Catalog,
    backend: MeteringBackend<CachingBackend<B>>,
    config: ExecConfig,
    stats: StatisticsStore,
    store: Option<Arc<DurableStore>>,
}

/// Builder for [`Session`]: `Session::builder().catalog(..).backend(..).build()`.
pub struct SessionBuilder<'c, B: CrowdBackend> {
    catalog: Option<&'c Catalog>,
    backend: Option<B>,
    config: ExecConfig,
    stats: StatisticsStore,
    store: Option<Arc<DurableStore>>,
}

impl<'c, B: CrowdBackend> Default for SessionBuilder<'c, B> {
    fn default() -> Self {
        SessionBuilder {
            catalog: None,
            backend: None,
            config: ExecConfig::default(),
            stats: StatisticsStore::new(),
            store: None,
        }
    }
}

impl<'c, B: CrowdBackend> SessionBuilder<'c, B> {
    pub fn catalog(mut self, catalog: &'c Catalog) -> Self {
        self.catalog = Some(catalog);
        self
    }

    pub fn backend(mut self, backend: B) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Session-wide default operator configuration.
    pub fn config(mut self, config: ExecConfig) -> Self {
        self.config = config;
        self
    }

    /// Session-wide default sort mode (pinned: the optimizer keeps it).
    pub fn sort(mut self, mode: SortMode) -> Self {
        self.config.sort = mode;
        self.config.pins.sort = true;
        self
    }

    /// Session-wide default for §2.6 filter combining (pinned).
    pub fn combine_filters(mut self, on: bool) -> Self {
        self.config.combine_conjunct_filters = on;
        self.config.pins.combine = true;
        self
    }

    /// How queries are optimized ([`OptimizeMode::CostBased`] by
    /// default).
    pub fn optimize(mut self, mode: OptimizeMode) -> Self {
        self.config.optimize = mode;
        self
    }

    /// Session-wide pre-flight analysis policy
    /// ([`LintPolicy::Warn`] by default).
    pub fn lint(mut self, policy: LintPolicy) -> Self {
        self.config.lint.policy = policy;
        self
    }

    /// Seed the session with statistics learned elsewhere (e.g. an
    /// earlier session's [`Session::statistics`] export).
    pub fn statistics(mut self, stats: StatisticsStore) -> Self {
        self.stats = stats;
        self
    }

    /// Attach an already-open durable store (see [`crate::store`]).
    /// The session's task cache is preloaded from it and every paid
    /// round, plus the per-query statistics deltas, are journaled
    /// write-ahead; on the next open an identical query replays free.
    pub fn store(mut self, store: Arc<DurableStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Open (or create) a durable store at `path` and attach it —
    /// shorthand for [`DurableStore::open`] + [`Self::store`].
    ///
    /// # Errors
    /// Fails if the file cannot be opened or is corrupt beyond the
    /// torn-tail cases the store repairs itself.
    pub fn persist_to(self, path: impl AsRef<Path>) -> Result<Self> {
        let store = DurableStore::open(path).map_err(QurkError::from)?;
        Ok(self.store(Arc::new(store)))
    }

    /// # Panics
    /// Panics if `catalog` or `backend` was not provided.
    pub fn build(self) -> Session<'c, B> {
        let catalog = self.catalog.expect("SessionBuilder: missing .catalog(..)");
        let backend = self.backend.expect("SessionBuilder: missing .backend(..)");
        let (caching, stats) = match self.store {
            Some(store) => {
                // Recovered statistics are evidence from *earlier*
                // processes; merge the builder's (possibly seeded)
                // store over them so fresher κ/σ features win.
                let mut stats = store.stats_snapshot();
                stats.merge(&self.stats);
                (CachingBackend::with_journal(backend, store), stats)
            }
            None => (CachingBackend::new(backend), self.stats),
        };
        let store = caching.journal().cloned();
        Session {
            catalog,
            backend: MeteringBackend::new(caching),
            config: self.config,
            stats,
            store,
        }
    }
}

impl<'c, B: CrowdBackend> Session<'c, B> {
    pub fn builder() -> SessionBuilder<'c, B> {
        SessionBuilder::default()
    }

    /// A session with default configuration.
    pub fn new(catalog: &'c Catalog, backend: B) -> Self {
        Session::builder().catalog(catalog).backend(backend).build()
    }

    /// Session-wide default configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Mutate the session-wide defaults (prefer per-query overrides on
    /// [`QueryBuilder`]; note that direct mutation does not pin the
    /// touched operators against the optimizer — set
    /// [`ExecConfig::pins`] yourself if you need that).
    pub fn config_mut(&mut self) -> &mut ExecConfig {
        &mut self.config
    }

    /// The statistics learned from this session's completed queries.
    pub fn statistics(&self) -> &StatisticsStore {
        &self.stats
    }

    /// Mutable access to the statistics store (e.g. to
    /// [`StatisticsStore::merge`] another session's evidence or
    /// [`StatisticsStore::clear`] it).
    pub fn statistics_mut(&mut self) -> &mut StatisticsStore {
        &mut self.stats
    }

    /// The session's backend stack (metering over caching over yours).
    pub fn backend(&self) -> &MeteringBackend<CachingBackend<B>> {
        &self.backend
    }

    pub fn backend_mut(&mut self) -> &mut MeteringBackend<CachingBackend<B>> {
        &mut self.backend
    }

    /// Per-query resource usage, oldest first (one entry per completed
    /// `run()`/`report()` call, including failed queries).
    pub fn usage_history(&self) -> &[BackendUsage] {
        self.backend.history()
    }

    /// (cache hits, cache misses) across all queries of this session.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.backend.inner().stats()
    }

    /// The attached durable store, if the session was built with
    /// [`SessionBuilder::store`] / [`SessionBuilder::persist_to`].
    pub fn store(&self) -> Option<&Arc<DurableStore>> {
        self.store.as_ref()
    }

    /// Start building a query. Nothing executes until
    /// [`QueryBuilder::run`] / [`QueryBuilder::report`].
    pub fn query<'s>(&'s mut self, sql: &str) -> QueryBuilder<'s, 'c, B> {
        QueryBuilder {
            config: self.config.clone(),
            session: self,
            sql: sql.to_owned(),
            budget_dollars: None,
        }
    }

    /// Parse, plan and execute with the session's default config.
    pub fn run(&mut self, sql: &str) -> Result<Relation> {
        self.query(sql).run()
    }

    /// Execute with an explicit config (the shim and QueryBuilder
    /// funnel through here).
    pub(crate) fn execute(
        &mut self,
        sql: &str,
        config: &ExecConfig,
        budget_dollars: Option<f64>,
    ) -> Result<QueryReport> {
        let parsed = parse_query(sql)?;
        self.execute_parsed(sql, &parsed, config, budget_dollars)
    }

    /// Execute an already-parsed query. The service scheduler parses
    /// once at admission and carries the AST to the query thread, so
    /// what executes is exactly what the admission gate analyzed —
    /// `sql` is only used for diagnostics rendering.
    pub(crate) fn execute_parsed(
        &mut self,
        sql: &str,
        parsed: &crate::lang::ast::Query,
        config: &ExecConfig,
        budget_dollars: Option<f64>,
    ) -> Result<QueryReport> {
        let logical = plan_query(parsed, self.catalog)?;
        let compiled = compile(&logical, self.catalog, config, &self.stats)?;
        let plan = PlanReport::from(&compiled);
        let diagnostics = if config.lint.policy == LintPolicy::Allow {
            Vec::new()
        } else {
            let diagnostics = analyze_query(
                sql,
                parsed,
                self.catalog,
                config,
                &self.stats,
                budget_dollars,
            )?;
            if config.lint.policy == LintPolicy::Deny
                && diagnostics.iter().any(Diagnostic::is_error)
            {
                return Err(QurkError::Rejected { diagnostics });
            }
            diagnostics
        };
        let stats_before = self.store.is_some().then(|| self.stats.clone());
        // Batch boundary for the cache's eviction bound: entries the
        // previous query touched become evictable, entries this query
        // touches are pinned until it finishes.
        self.backend.inner_mut().begin_batch();
        self.backend.begin_epoch();
        let outcome = self.run_physical(&compiled.root, budget_dollars);
        let usage = self.backend.end_epoch();
        self.stats
            .record_epoch(usage.hits_posted as u64, usage.elapsed_secs);
        for round in self.backend.last_epoch_groups() {
            self.stats.record_round(round.work_units, round.secs);
        }
        if outcome.is_err() {
            // A failed query's live postings are abandoned; release
            // their in-flight dedup slots so a retry re-posts instead
            // of piggybacking on work nobody is driving.
            self.backend.inner_mut().release_all_in_flight();
        }
        if let Some(store) = &self.store {
            let before = stats_before.expect("snapshot taken when store attached");
            store.append_stats_delta(&self.stats.diff(&before));
            // The store is this session's durability contract: once it
            // cannot write, "acknowledged" rounds are no longer safe,
            // so fail the query loudly (injected test faults excepted).
            if let StoreHealth::Failed(msg) = store.health() {
                return Err(QurkError::Store(msg));
            }
        }
        Ok(QueryReport {
            relation: outcome?,
            hits_posted: usage.hits_posted,
            cost_dollars: usage.dollars,
            assignments: usage.assignments,
            elapsed_secs: usage.elapsed_secs,
            explain: logical.to_string(),
            plan,
            diagnostics,
            service: None,
        })
    }

    /// Execute an already-built logical plan (lowered through the
    /// optimizer under `config.optimize`).
    pub(crate) fn execute_plan(
        &mut self,
        plan: &LogicalPlan,
        config: &ExecConfig,
        budget_dollars: Option<f64>,
    ) -> Result<Relation> {
        let compiled = compile(plan, self.catalog, config, &self.stats)?;
        self.run_physical(&compiled.root, budget_dollars)
    }

    /// Execute a compiled physical plan.
    fn run_physical(
        &mut self,
        plan: &PhysicalPlan,
        budget_dollars: Option<f64>,
    ) -> Result<Relation> {
        let budget = budget_dollars.map(|limit| BudgetGuard {
            limit,
            start_spend: self.backend.spend_dollars(),
        });
        let mut runner = PlanRunner {
            catalog: self.catalog,
            backend: &mut self.backend,
            stats: &mut self.stats,
            budget,
        };
        runner.run_plan(plan)
    }
}

/// A fluent, per-query configuration handle. Overrides apply to this
/// query only; the session's defaults are untouched. Explicit operator
/// overrides are pinned — the cost-based optimizer will not replace
/// them.
pub struct QueryBuilder<'s, 'c, B: CrowdBackend> {
    session: &'s mut Session<'c, B>,
    sql: String,
    config: ExecConfig,
    budget_dollars: Option<f64>,
}

impl<B: CrowdBackend> QueryBuilder<'_, '_, B> {
    /// Replace the whole per-query configuration.
    pub fn config(mut self, config: ExecConfig) -> Self {
        self.config = config;
        self
    }

    /// Sort implementation for ORDER BY (§4.1). Pinned.
    pub fn sort(mut self, mode: SortMode) -> Self {
        self.config.sort = mode;
        self.config.pins.sort = true;
        self
    }

    /// Crowd filter operator settings. Pinned.
    pub fn filter(mut self, op: FilterOp) -> Self {
        self.config.filter = op;
        self.config.pins.filter = true;
        self
    }

    /// Crowd join operator settings (strategy, combiner, …). Pinned.
    pub fn join(mut self, op: JoinOp) -> Self {
        self.config.join = op;
        self.config.pins.join = true;
        self
    }

    /// POSSIBLY-clause feature filtering settings (§3.2). Pinned.
    pub fn feature_filter(mut self, config: FeatureFilterConfig) -> Self {
        self.config.feature_filter = config;
        self.config.pins.feature_filter = true;
        self
    }

    /// §2.6 combining for conjunctive WHERE filters. Pinned.
    pub fn combine_filters(mut self, on: bool) -> Self {
        self.config.combine_conjunct_filters = on;
        self.config.pins.combine = true;
        self
    }

    /// How this query is optimized: [`OptimizeMode::CostBased`]
    /// (default) or [`OptimizeMode::AsWritten`].
    pub fn optimize(mut self, mode: OptimizeMode) -> Self {
        self.config.optimize = mode;
        self
    }

    /// Assignments requested per HIT, applied to every operator of
    /// this query (`None` fields use the backend default).
    pub fn assignments(mut self, n: u32) -> Self {
        self.config.filter.assignments = Some(n);
        self.config.join.assignments = Some(n);
        self.config.feature_filter.assignments = Some(n);
        match &mut self.config.sort {
            SortMode::Compare(op) => op.assignments = Some(n),
            SortMode::Rate(op) => op.assignments = Some(n),
            SortMode::Hybrid(op, _) => {
                op.assignments = Some(n);
                op.rate.assignments = Some(n);
            }
        }
        self
    }

    /// Pre-flight analysis policy for this query only.
    pub fn lint(mut self, policy: LintPolicy) -> Self {
        self.config.lint.policy = policy;
        self
    }

    /// Hard dollar budget for this query: once the query's spend
    /// reaches the budget, the next crowd operator refuses to start
    /// and the query fails with [`QurkError::BudgetExceeded`]. Work
    /// already in flight is not interrupted, so the final spend can
    /// overshoot by at most one operator round.
    pub fn budget_dollars(mut self, dollars: f64) -> Self {
        self.budget_dollars = Some(dollars);
        self
    }

    /// Execute and return the result relation.
    pub fn run(self) -> Result<Relation> {
        Ok(self.report()?.relation)
    }

    /// Execute and return the result plus cost accounting.
    pub fn report(self) -> Result<QueryReport> {
        let QueryBuilder {
            session,
            sql,
            config,
            budget_dollars,
        } = self;
        session.execute(&sql, &config, budget_dollars)
    }

    /// Run the pre-flight analyzer without executing: parse, plan,
    /// optimize, and return the diagnostics. Posts no crowd work and
    /// never rejects — callers inspect the findings themselves.
    pub fn check(self) -> Result<Vec<Diagnostic>> {
        let parsed = parse_query(&self.sql)?;
        analyze_query(
            &self.sql,
            &parsed,
            self.session.catalog,
            &self.config,
            &self.session.stats,
            self.budget_dollars,
        )
    }

    /// Parse, plan and optimize without posting any crowd work;
    /// returns the EXPLAIN text (logical plan, chosen physical plan,
    /// the cost model's estimate, and any analyzer diagnostics).
    pub fn explain(self) -> Result<String> {
        let parsed = parse_query(&self.sql)?;
        let logical = plan_query(&parsed, self.session.catalog)?;
        let compiled = compile(
            &logical,
            self.session.catalog,
            &self.config,
            &self.session.stats,
        )?;
        let diagnostics = analyze_query(
            &self.sql,
            &parsed,
            self.session.catalog,
            &self.config,
            &self.session.stats,
            self.budget_dollars,
        )?;
        let report = PlanReport {
            mode: compiled.mode,
            physical: compiled.root.to_string(),
            decisions: compiled.decisions,
            estimate: compiled.estimate,
        };
        Ok(format!(
            "logical plan:\n{}{}{}",
            logical,
            report.render(None),
            render_diagnostics(&diagnostics)
        ))
    }
}

// ---------------------------------------------------------------- engine

struct BudgetGuard {
    limit: f64,
    start_spend: f64,
}

/// Executes one physical plan against a backend, feeding the session's
/// statistics store with every operator outcome.
/// One side of a compiled machine-filter comparison: a resolved column
/// index (read from the relation's column slices) or a pre-evaluated
/// literal.
enum FilterOperand {
    Col(usize),
    Const(Value),
}

struct PlanRunner<'r, B: CrowdBackend> {
    catalog: &'r Catalog,
    backend: &'r mut B,
    stats: &'r mut StatisticsStore,
    budget: Option<BudgetGuard>,
}

impl<B: CrowdBackend> PlanRunner<'_, B> {
    /// Refuse to start new crowd work once the budget is spent.
    fn charge_gate(&mut self) -> Result<()> {
        if let Some(b) = &self.budget {
            let spent = self.backend.spend_dollars() - b.start_spend;
            if spent >= b.limit {
                return Err(QurkError::BudgetExceeded {
                    budget_dollars: b.limit,
                    spent_dollars: spent,
                });
            }
        }
        Ok(())
    }

    fn run_plan(&mut self, plan: &PhysicalPlan) -> Result<Relation> {
        match &plan.node {
            PhysNode::Scan { table, alias } => {
                Ok(self.catalog.table(table)?.clone().qualified(alias))
            }
            PhysNode::MachineFilter { input, predicates } => {
                let rel = self.run_plan(input)?;
                self.machine_filter(rel, predicates)
            }
            PhysNode::CrowdFilter {
                input,
                conjuncts,
                combined,
                op,
            } => {
                let mut rel = self.run_plan(input)?;
                if *combined && conjuncts.len() > 1 {
                    rel = self.crowd_filter_combined(rel, conjuncts, op)?;
                } else {
                    // §2.5: conjuncts issue serially by default.
                    for call in conjuncts {
                        rel = self.crowd_filter(rel, call, op)?;
                    }
                }
                Ok(rel)
            }
            PhysNode::CrowdFilterOr { input, groups, op } => {
                let rel = self.run_plan(input)?;
                self.crowd_filter_or(rel, groups, op)
            }
            PhysNode::Join {
                left,
                right,
                clause,
                op,
                feature_filter,
                ..
            } => {
                let l = self.run_plan(left)?;
                let r = self.run_plan(right)?;
                self.crowd_join(l, r, clause, op, feature_filter)
            }
            PhysNode::OrderBy { input, keys, mode } => {
                let rel = self.run_plan(input)?;
                self.order_by(rel, keys, mode)
            }
            PhysNode::ExtractExtreme { input, call, desc } => {
                // §2.3: "For MAX/MIN, we use an interface that extracts
                // the best element from a batch at a time".
                let rel = self.run_plan(input)?;
                self.extract_extreme(rel, call, *desc)
            }
            PhysNode::Limit { input, n } => {
                let rel = self.run_plan(input)?;
                let mut out = Relation::new(rel.schema().clone());
                for row in rel.rows().iter().take(*n) {
                    out.push_unchecked(row.clone());
                }
                Ok(out)
            }
            PhysNode::Project { input, items } => {
                let rel = self.run_plan(input)?;
                self.project(rel, items)
            }
        }
    }

    // ---------------- helpers ----------------

    fn eval_expr(&self, rel: &Relation, row: &Tuple, e: &Expr) -> Result<Value> {
        match e {
            Expr::Column(name) => row
                .field(rel.schema(), name)
                .cloned()
                .ok_or_else(|| QurkError::UnknownColumn(name.clone())),
            Expr::Literal(Literal::Number(n)) => {
                if n.fract() == 0.0 {
                    Ok(Value::Int(*n as i64))
                } else {
                    Ok(Value::Float(*n))
                }
            }
            Expr::Literal(Literal::Str(s)) => Ok(Value::text(s.clone())),
            Expr::Udf(_) => Err(QurkError::Other(
                "UDF calls cannot be evaluated by machine".into(),
            )),
        }
    }

    fn machine_filter(&self, rel: Relation, predicates: &[Predicate]) -> Result<Relation> {
        // Columnar fast path: when every predicate is a comparison over
        // resolvable columns/literals, compile it once and sweep the
        // relation's column slices window by window instead of walking
        // row objects. Falls back to the row loop otherwise so error
        // behaviour (unknown columns, crowd predicates, UDF operands)
        // is byte-for-byte what it was.
        if let Some(compiled) = Self::compile_machine_predicates(&rel, predicates) {
            let mut keep: Vec<usize> = Vec::new();
            let mut mask: Vec<bool> = Vec::new();
            for w in rel.windows() {
                mask.clear();
                mask.resize(w.len(), true);
                for (lop, op, rop) in &compiled {
                    match (lop, rop) {
                        (FilterOperand::Col(li), FilterOperand::Col(ri)) => {
                            let (lc, rc) = (w.column(*li), w.column(*ri));
                            for (k, m) in mask.iter_mut().enumerate() {
                                *m = *m && lc[k].sql_cmp(&rc[k]).is_some_and(|ord| op.eval(ord));
                            }
                        }
                        (FilterOperand::Col(li), FilterOperand::Const(v)) => {
                            let lc = w.column(*li);
                            for (k, m) in mask.iter_mut().enumerate() {
                                *m = *m && lc[k].sql_cmp(v).is_some_and(|ord| op.eval(ord));
                            }
                        }
                        (FilterOperand::Const(v), FilterOperand::Col(ri)) => {
                            let rc = w.column(*ri);
                            for (k, m) in mask.iter_mut().enumerate() {
                                *m = *m && v.sql_cmp(&rc[k]).is_some_and(|ord| op.eval(ord));
                            }
                        }
                        (FilterOperand::Const(l), FilterOperand::Const(r)) => {
                            if !l.sql_cmp(r).is_some_and(|ord| op.eval(ord)) {
                                mask.fill(false);
                            }
                        }
                    }
                }
                keep.extend(
                    mask.iter()
                        .enumerate()
                        .filter_map(|(k, &m)| m.then_some(w.start() + k)),
                );
            }
            return Ok(rel.gather(&keep));
        }

        let mut out = Relation::new(rel.schema().clone());
        'rows: for row in rel.rows() {
            for p in predicates {
                let Predicate::Compare { left, op, right } = p else {
                    return Err(QurkError::Other(
                        "machine filter received a crowd predicate".into(),
                    ));
                };
                let l = self.eval_expr(&rel, row, left)?;
                let r = self.eval_expr(&rel, row, right)?;
                match l.sql_cmp(&r) {
                    Some(ord) if op.eval(ord) => {}
                    _ => continue 'rows, // false or NULL
                }
            }
            out.push_unchecked(row.clone());
        }
        Ok(out)
    }

    /// Compile machine predicates to column indices and constants for
    /// the columnar sweep. `None` means "use the row loop" — some
    /// predicate is not a plain comparison or references something the
    /// schema cannot resolve.
    fn compile_machine_predicates(
        rel: &Relation,
        predicates: &[Predicate],
    ) -> Option<Vec<(FilterOperand, CmpOp, FilterOperand)>> {
        let operand = |e: &Expr| -> Option<FilterOperand> {
            match e {
                Expr::Column(name) => rel.schema().resolve(name).map(FilterOperand::Col),
                Expr::Literal(Literal::Number(n)) => {
                    Some(FilterOperand::Const(if n.fract() == 0.0 {
                        Value::Int(*n as i64)
                    } else {
                        Value::Float(*n)
                    }))
                }
                Expr::Literal(Literal::Str(s)) => Some(FilterOperand::Const(Value::text(s))),
                Expr::Udf(_) => None,
            }
        };
        predicates
            .iter()
            .map(|p| match p {
                Predicate::Compare { left, op, right } => {
                    Some((operand(left)?, *op, operand(right)?))
                }
                _ => None,
            })
            .collect()
    }

    /// Resolve a UDF argument to an Item-typed column index.
    fn resolve_item_col(&self, rel: &Relation, e: &Expr) -> Result<usize> {
        let Expr::Column(name) = e else {
            return Err(QurkError::Other(format!(
                "crowd UDF argument must be a column, got {e:?}"
            )));
        };
        if let Some(i) = rel.schema().resolve(name) {
            if rel.schema().fields()[i].ty == ValueType::Item {
                return Ok(i);
            }
        }
        // Whole-tuple reference (`isFemale(c)`): the single Item column
        // under that alias.
        let prefix = format!("{name}.");
        let candidates: Vec<usize> = rel
            .schema()
            .fields()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.ty == ValueType::Item && f.name.starts_with(&prefix))
            .map(|(i, _)| i)
            .collect();
        if candidates.len() == 1 {
            Ok(candidates[0])
        } else {
            Err(QurkError::UnknownColumn(name.clone()))
        }
    }

    fn crowd_filter(&mut self, rel: Relation, call: &UdfCall, op: &FilterOp) -> Result<Relation> {
        self.charge_gate()?;
        let task = self.catalog.task(&call.name)?;
        if task.ty != TaskType::Filter {
            return Err(QurkError::TaskTypeMismatch {
                task: call.name.clone(),
                expected: "Filter",
                found: task.ty.name(),
            });
        }
        let arg = call
            .args
            .first()
            .ok_or_else(|| QurkError::Other(format!("filter {} needs an argument", call.name)))?;
        let col = self.resolve_item_col(&rel, arg)?;
        // Rows with NULL items cannot be asked about and fail the
        // filter.
        let mut items = Vec::new();
        let mut item_rows = Vec::new();
        for (ri, row) in rel.rows().iter().enumerate() {
            if let Some(item) = row[col].as_item() {
                items.push(item);
                item_rows.push(ri);
            }
        }
        let op = FilterOp {
            combiner: task.combiner,
            ..op.clone()
        };
        let mask = op.run(self.backend, task.oracle_key(), &items)?;
        let passed = mask.iter().filter(|&&b| b).count();
        self.stats
            .record_filter(task.oracle_key(), items.len(), passed);
        let mut out = Relation::new(rel.schema().clone());
        for (k, &ri) in item_rows.iter().enumerate() {
            if mask[k] {
                out.push_unchecked(rel.rows()[ri].clone());
            }
        }
        Ok(out)
    }

    /// §2.6 combining: all conjunct filters of a tuple in one HIT.
    fn crowd_filter_combined(
        &mut self,
        rel: Relation,
        conjuncts: &[UdfCall],
        op: &FilterOp,
    ) -> Result<Relation> {
        self.charge_gate()?;
        // Resolve every task and argument column up front; all
        // conjuncts must address the same Item column set per row.
        let mut predicates: Vec<&str> = Vec::with_capacity(conjuncts.len());
        let mut cols: Vec<usize> = Vec::with_capacity(conjuncts.len());
        for call in conjuncts {
            let task = self.catalog.task(&call.name)?;
            if task.ty != TaskType::Filter {
                return Err(QurkError::TaskTypeMismatch {
                    task: call.name.clone(),
                    expected: "Filter",
                    found: task.ty.name(),
                });
            }
            let arg = call.args.first().ok_or_else(|| {
                QurkError::Other(format!("filter {} needs an argument", call.name))
            })?;
            cols.push(self.resolve_item_col(&rel, arg)?);
            predicates.push(task.oracle_key());
        }
        // Combining requires one shared item per tuple (the paper
        // combines tasks over "the same tuple"); fall back to the
        // first column's item.
        let col = cols[0];
        let mut items = Vec::new();
        let mut item_rows = Vec::new();
        for (ri, row) in rel.rows().iter().enumerate() {
            if let Some(item) = row[col].as_item() {
                items.push(item);
                item_rows.push(ri);
            }
        }
        // Unlike the serial path, combining keeps the configured
        // combiner for every conjunct (per-task combiners cannot be
        // honored inside one shared HIT).
        let masks = op.run_combined(self.backend, &predicates, &items)?;
        for (pi, &pred) in predicates.iter().enumerate() {
            let passed = masks.iter().filter(|m| m[pi]).count();
            self.stats.record_filter(pred, items.len(), passed);
        }
        let mut out = Relation::new(rel.schema().clone());
        for (k, &ri) in item_rows.iter().enumerate() {
            if masks[k].iter().all(|&b| b) {
                out.push_unchecked(rel.rows()[ri].clone());
            }
        }
        Ok(out)
    }

    fn crowd_filter_or(
        &mut self,
        rel: Relation,
        groups: &[Vec<Predicate>],
        op: &FilterOp,
    ) -> Result<Relation> {
        // §2.5: disjuncts are issued in parallel; each group's verdict
        // is the AND of its predicates, a row passes if any group does.
        //
        // Machine-evaluable members of a group run first regardless of
        // written order — they cost nothing and shrink the set of rows
        // the group's crowd predicates must ask about (the same
        // push-below-crowd rule §2.5 applies to conjunctions).
        let mut keep = vec![false; rel.len()];
        for group in groups {
            let mut group_mask = vec![true; rel.len()];
            let (machine, crowd): (Vec<&Predicate>, Vec<&Predicate>) = group
                .iter()
                .partition(|p| matches!(p, Predicate::Compare { .. }));
            for p in machine.into_iter().chain(crowd) {
                match p {
                    Predicate::Compare { left, op, right } => {
                        for (ri, row) in rel.rows().iter().enumerate() {
                            if group_mask[ri] {
                                let l = self.eval_expr(&rel, row, left)?;
                                let r = self.eval_expr(&rel, row, right)?;
                                group_mask[ri] = matches!(
                                    l.sql_cmp(&r),
                                    Some(ord) if op.eval(ord)
                                );
                            }
                        }
                    }
                    Predicate::Udf(call) => {
                        self.charge_gate()?;
                        let task = self.catalog.task(&call.name)?;
                        let arg = call.args.first().ok_or_else(|| {
                            QurkError::Other(format!("filter {} needs an argument", call.name))
                        })?;
                        let col = self.resolve_item_col(&rel, arg)?;
                        let mut items = Vec::new();
                        let mut rows = Vec::new();
                        for (ri, row) in rel.rows().iter().enumerate() {
                            if group_mask[ri] {
                                match row[col].as_item() {
                                    Some(it) => {
                                        items.push(it);
                                        rows.push(ri);
                                    }
                                    None => group_mask[ri] = false,
                                }
                            }
                        }
                        let op = FilterOp {
                            combiner: task.combiner,
                            ..op.clone()
                        };
                        let mask = op.run(self.backend, task.oracle_key(), &items)?;
                        let passed = mask.iter().filter(|&&b| b).count();
                        self.stats
                            .record_filter(task.oracle_key(), items.len(), passed);
                        for (k, &ri) in rows.iter().enumerate() {
                            group_mask[ri] = mask[k];
                        }
                    }
                }
            }
            for (ri, &g) in group_mask.iter().enumerate() {
                keep[ri] = keep[ri] || g;
            }
        }
        let mut out = Relation::new(rel.schema().clone());
        for (ri, row) in rel.rows().iter().enumerate() {
            if keep[ri] {
                out.push_unchecked(row.clone());
            }
        }
        Ok(out)
    }

    fn crowd_join(
        &mut self,
        left: Relation,
        right: Relation,
        clause: &crate::lang::ast::JoinClause,
        op: &JoinOp,
        feature_filter: &FeatureFilterConfig,
    ) -> Result<Relation> {
        self.charge_gate()?;
        let join_task = self.catalog.task(&clause.on.name)?;
        if join_task.ty != TaskType::EquiJoin {
            return Err(QurkError::TaskTypeMismatch {
                task: clause.on.name.clone(),
                expected: "EquiJoin",
                found: join_task.ty.name(),
            });
        }
        if clause.on.args.len() != 2 {
            return Err(QurkError::Other(format!(
                "join predicate {} needs two arguments",
                clause.on.name
            )));
        }
        // Which argument refers to which side?
        let (lcol, rcol) = match (
            self.resolve_item_col(&left, &clause.on.args[0]),
            self.resolve_item_col(&right, &clause.on.args[1]),
        ) {
            (Ok(l), Ok(r)) => (l, r),
            _ => {
                // Swapped argument order.
                let l = self.resolve_item_col(&left, &clause.on.args[1])?;
                let r = self.resolve_item_col(&right, &clause.on.args[0])?;
                (l, r)
            }
        };

        // Literal POSSIBLY clauses prefilter one side (the §5 movie
        // query's numInScene); equality clauses drive pairwise feature
        // filtering.
        let mut left_rel = left;
        let mut right_rel = right;
        let mut eq_specs: Vec<FeatureSpec> = Vec::new();
        for p in &clause.possibly {
            match p {
                PossiblyClause::FeatureLit { call, op, value } => {
                    let (is_left, moved) = {
                        let arg = call.args.first().ok_or_else(|| {
                            QurkError::Other("feature call needs an argument".into())
                        })?;
                        if let Ok(col) = self.resolve_item_col(&left_rel, arg) {
                            (
                                true,
                                self.prefilter_literal(
                                    &left_rel,
                                    col,
                                    call,
                                    *op,
                                    value,
                                    feature_filter,
                                )?,
                            )
                        } else {
                            let col = self.resolve_item_col(&right_rel, arg)?;
                            (
                                false,
                                self.prefilter_literal(
                                    &right_rel,
                                    col,
                                    call,
                                    *op,
                                    value,
                                    feature_filter,
                                )?,
                            )
                        }
                    };
                    if is_left {
                        left_rel = moved;
                    } else {
                        right_rel = moved;
                    }
                }
                PossiblyClause::FeatureEq {
                    left: lc,
                    right: rc,
                } => {
                    let task = self.catalog.task(&lc.name)?;
                    if rc.name != lc.name {
                        return Err(QurkError::Other(format!(
                            "POSSIBLY compares different features: {} vs {}",
                            lc.name, rc.name
                        )));
                    }
                    let (opts, _) = task.feature_options().ok_or_else(|| {
                        QurkError::Other(format!(
                            "feature task {} must have a Radio response",
                            lc.name
                        ))
                    })?;
                    eq_specs.push(FeatureSpec {
                        name: task.oracle_key().to_owned(),
                        num_options: opts.len(),
                    });
                }
            }
        }

        let collect_items = |rel: &Relation, col: usize| -> Vec<ItemId> {
            rel.rows()
                .iter()
                .map(|row| row[col].as_item().unwrap_or(ItemId(u64::MAX)))
                .collect()
        };
        let left_items = collect_items(&left_rel, lcol);
        let right_items = collect_items(&right_rel, rcol);

        let candidates = if eq_specs.is_empty() {
            None
        } else {
            let ff = FeatureFilter::new(feature_filter.clone());
            let outcome = ff.run(self.backend, &eq_specs, &left_items, &right_items)?;
            // Remember each sampled feature's κ/σ so the next query's
            // planner can prune known-bad features without re-sampling.
            for (fi, spec) in eq_specs.iter().enumerate() {
                self.stats.record_feature(
                    &spec.name,
                    outcome.kappas[fi],
                    outcome.selectivities[fi],
                );
            }
            Some(outcome.candidates)
        };

        let op = JoinOp {
            combiner: join_task.combiner,
            ..op.clone()
        };
        let pairs_asked = candidates
            .as_ref()
            .map(|c| c.len())
            .unwrap_or(left_items.len() * right_items.len());
        let outcome = op.run(self.backend, &left_items, &right_items, candidates.as_ref())?;
        self.stats
            .record_join(&clause.on.name, pairs_asked, outcome.matches.len());

        let schema = left_rel.schema().join(right_rel.schema());
        let mut out = Relation::new(schema);
        for &(i, j) in &outcome.matches {
            out.push_unchecked(left_rel.rows()[i].concat(&right_rel.rows()[j]));
        }
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn prefilter_literal(
        &mut self,
        rel: &Relation,
        col: usize,
        call: &UdfCall,
        op: CmpOp,
        value: &Literal,
        feature_filter: &FeatureFilterConfig,
    ) -> Result<Relation> {
        self.charge_gate()?;
        let task = self.catalog.task(&call.name)?;
        let (opts, _) = task.feature_options().ok_or_else(|| {
            QurkError::Other(format!("feature task {} must be categorical", call.name))
        })?;
        let items: Vec<ItemId> = rel.rows().iter().filter_map(|r| r[col].as_item()).collect();
        let gen = GenerativeOp {
            batch_size: feature_filter.batch_size,
            combined_interface: false,
            assignments: feature_filter.assignments,
            limit_secs: feature_filter.limit_secs,
        };
        let outcome = gen.run(self.backend, task, &items)?;
        let want = match value {
            Literal::Str(s) => s.clone(),
            Literal::Number(n) => {
                if n.fract() == 0.0 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
        };
        let mut out = Relation::new(rel.schema().clone());
        let mut k = 0usize;
        for row in rel.rows() {
            if row[col].as_item().is_none() {
                continue;
            }
            let extracted = outcome.rows[k].get("value").cloned().unwrap_or(Value::Null);
            k += 1;
            let pass = match (&extracted, op) {
                (Value::Null, _) => true, // UNKNOWN matches anything
                (Value::Text(t), CmpOp::Eq) => *t == want,
                (Value::Text(t), CmpOp::Ne) => *t != want,
                (Value::Text(t), _) => {
                    // Ordered comparison over the option order.
                    let ti = opts.iter().position(|o| *t == *o);
                    let wi = opts.iter().position(|o| *o == want);
                    match (ti, wi) {
                        (Some(a), Some(b)) => op.eval(a.cmp(&b)),
                        _ => false,
                    }
                }
                _ => false,
            };
            if pass {
                out.push_unchecked(row.clone());
            }
        }
        Ok(out)
    }

    /// MAX/MIN aggregate: tournament extraction of the single best
    /// (DESC) or worst (ASC) row by a Rank task (§2.3).
    fn extract_extreme(&mut self, rel: Relation, call: &UdfCall, desc: bool) -> Result<Relation> {
        let task = self.catalog.task(&call.name)?;
        if task.ty != TaskType::Rank {
            return Err(QurkError::TaskTypeMismatch {
                task: call.name.clone(),
                expected: "Rank",
                found: task.ty.name(),
            });
        }
        let mut out = Relation::new(rel.schema().clone());
        if rel.is_empty() {
            return Ok(out);
        }
        self.charge_gate()?;
        let arg = call.args.first().ok_or_else(|| {
            QurkError::Other(format!("rank task {} needs an argument", call.name))
        })?;
        let col = self.resolve_item_col(&rel, arg)?;
        let items: Vec<ItemId> = rel.rows().iter().filter_map(|r| r[col].as_item()).collect();
        if items.is_empty() {
            return Ok(out);
        }
        // DESC LIMIT 1 = MAX ("most"); ASC LIMIT 1 = MIN ("least").
        // Batches of 5, the paper's comparison group size.
        let (best, _hits) =
            crate::ops::sort::extract_best(self.backend, &items, task.oracle_key(), 5, desc, None)?;
        if let Some(row) = rel.rows().iter().find(|r| r[col].as_item() == Some(best)) {
            out.push_unchecked(row.clone());
        }
        Ok(out)
    }

    fn order_by(&mut self, rel: Relation, keys: &[OrderExpr], mode: &SortMode) -> Result<Relation> {
        // Split keys: machine columns first, then at most one Rank UDF.
        let mut machine: Vec<(usize, bool)> = Vec::new();
        let mut crowd: Option<(&UdfCall, bool)> = None;
        for (ki, k) in keys.iter().enumerate() {
            match &k.expr {
                Expr::Column(name) => {
                    if crowd.is_some() {
                        return Err(QurkError::Other(
                            "machine sort keys must precede the crowd key".into(),
                        ));
                    }
                    let idx = rel
                        .schema()
                        .resolve(name)
                        .ok_or_else(|| QurkError::UnknownColumn(name.clone()))?;
                    machine.push((idx, k.desc));
                }
                Expr::Udf(call) => {
                    if crowd.is_some() || ki != keys.len() - 1 {
                        return Err(QurkError::Other(
                            "only one crowd sort key is supported, and it must be last".into(),
                        ));
                    }
                    crowd = Some((call, k.desc));
                }
                Expr::Literal(_) => {
                    return Err(QurkError::Other("cannot order by a literal".into()))
                }
            }
        }

        // Machine sort (stable). The comparator reads the key columns'
        // contiguous slices rather than indexing into row objects, so
        // each key comparison touches only the cache lines of the
        // columns actually being sorted on.
        let key_cols: Vec<(&[Value], bool)> = machine
            .iter()
            .map(|&(col, desc)| (rel.column(col), desc))
            .collect();
        let mut order: Vec<usize> = (0..rel.len()).collect();
        order.sort_by(|&a, &b| {
            for &(col, desc) in &key_cols {
                let ord = col[a].sql_cmp(&col[b]).unwrap_or(std::cmp::Ordering::Equal);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });

        if let Some((call, desc)) = crowd {
            let task = self.catalog.task(&call.name)?;
            if task.ty != TaskType::Rank {
                return Err(QurkError::TaskTypeMismatch {
                    task: call.name.clone(),
                    expected: "Rank",
                    found: task.ty.name(),
                });
            }
            let arg = call.args.first().ok_or_else(|| {
                QurkError::Other(format!("rank task {} needs an argument", call.name))
            })?;
            let col = self.resolve_item_col(&rel, arg)?;
            let dimension = task.oracle_key().to_owned();

            // Group rows sharing the machine-key prefix, sort each
            // group with the crowd (§5's per-actor scene ordering).
            let mut grouped: Vec<Vec<usize>> = Vec::new();
            for &ri in &order {
                let same_group = grouped.last().is_some_and(|g: &Vec<usize>| {
                    machine
                        .iter()
                        .all(|&(c, _)| rel.rows()[g[0]][c].sql_eq(&rel.rows()[ri][c]) == Some(true))
                });
                if same_group {
                    grouped.last_mut().unwrap().push(ri);
                } else {
                    grouped.push(vec![ri]);
                }
            }
            let mut final_order = Vec::with_capacity(rel.len());
            for group in grouped {
                let items: Vec<ItemId> = group
                    .iter()
                    .filter_map(|&ri| rel.rows()[ri][col].as_item())
                    .collect();
                if items.len() <= 1 {
                    final_order.extend(group);
                    continue;
                }
                self.charge_gate()?;
                let sorted_items = match mode {
                    SortMode::Compare(op) => {
                        let out = op.run(self.backend, &items, &dimension)?;
                        self.observe_sort_outcome(&dimension, &out, None);
                        out.order
                    }
                    SortMode::Rate(op) => {
                        let out = op.run(self.backend, &items, &dimension)?;
                        self.observe_sort_outcome(&dimension, &out, Some(op.scale));
                        out.order
                    }
                    SortMode::Hybrid(op, iterations) => {
                        let out = op.run(self.backend, &items, &dimension, *iterations)?;
                        self.observe_sort_outcome(&dimension, &out.initial, Some(op.rate.scale));
                        out.trajectory.last().cloned().unwrap_or(out.initial.order)
                    }
                };
                // Sort outcome is best-first ("Most" first); SQL ASC
                // means least-first.
                let item_rank: HashMap<ItemId, usize> = sorted_items
                    .iter()
                    .enumerate()
                    .map(|(i, &it)| (it, i))
                    .collect();
                let mut group_sorted = group.clone();
                group_sorted.sort_by_key(|&ri| {
                    rel.rows()[ri][col]
                        .as_item()
                        .and_then(|it| item_rank.get(&it).copied())
                        .unwrap_or(usize::MAX)
                });
                if !desc {
                    group_sorted.reverse();
                }
                final_order.extend(group_sorted);
            }
            order = final_order;
        }

        let mut out = Relation::new(rel.schema().clone());
        for ri in order {
            out.push_unchecked(rel.rows()[ri].clone());
        }
        Ok(out)
    }

    /// Learn the dimension's ambiguity from a completed sort: pairwise
    /// vote disagreement for comparisons (Figure 6's κ signal), or the
    /// normalized rating spread for ratings. `scale` is `Some` for
    /// rating-based outcomes.
    fn observe_sort_outcome(&mut self, dimension: &str, out: &SortOutcome, scale: Option<u8>) {
        let ambiguity = match scale {
            None => mean_pair_disagreement(&out.tally, out.scores.len()),
            Some(s) => {
                let stds: Vec<f64> = out.stds.iter().copied().filter(|v| v.is_finite()).collect();
                if stds.is_empty() || s < 2 {
                    None
                } else {
                    let mean_std = stds.iter().sum::<f64>() / stds.len() as f64;
                    // A std of half the scale range ≈ coin-flip rating.
                    Some((mean_std / ((s - 1) as f64 / 2.0)).clamp(0.0, 1.0))
                }
            }
        };
        if let Some(a) = ambiguity {
            self.stats.record_sort(dimension, a);
        }
    }

    fn project(&mut self, rel: Relation, items: &[SelectItem]) -> Result<Relation> {
        // Fast path: SELECT *.
        if items.len() == 1 && matches!(items[0], SelectItem::Star) {
            return Ok(rel);
        }
        let mut schema = crate::schema::Schema::default();
        // Each output column: either a copy of an input column or a
        // generative field.
        enum Col {
            Copy(usize),
            Gen { values: Vec<Value> },
        }
        let mut cols: Vec<Col> = Vec::new();
        // Cache generative runs per (task, arg) to avoid re-asking for
        // each selected field (the Fields mechanism answers them all at
        // once, §2.2).
        let mut gen_cache: HashMap<String, Vec<crate::ops::generative::GenRow>> = HashMap::new();

        for item in items {
            match item {
                SelectItem::Star => {
                    for (i, f) in rel.schema().fields().iter().enumerate() {
                        schema.push_field(&f.name, f.ty);
                        cols.push(Col::Copy(i));
                    }
                }
                SelectItem::Column(name) => {
                    let idx = rel
                        .schema()
                        .resolve(name)
                        .ok_or_else(|| QurkError::UnknownColumn(name.clone()))?;
                    let f = &rel.schema().fields()[idx];
                    let out_name = if schema.index_of(name).is_none() {
                        name.clone()
                    } else {
                        format!("{name}#{}", cols.len())
                    };
                    schema.push_field(&out_name, f.ty);
                    cols.push(Col::Copy(idx));
                }
                SelectItem::Udf { call, field } => {
                    let task = self.catalog.task(&call.name)?;
                    if task.ty != TaskType::Generative {
                        return Err(QurkError::TaskTypeMismatch {
                            task: call.name.clone(),
                            expected: "Generative",
                            found: task.ty.name(),
                        });
                    }
                    let key = format!("{call:?}");
                    if !gen_cache.contains_key(&key) {
                        self.charge_gate()?;
                        let arg = call.args.first().ok_or_else(|| {
                            QurkError::Other(format!("task {} needs an argument", call.name))
                        })?;
                        let col = self.resolve_item_col(&rel, arg)?;
                        let items_vec: Vec<ItemId> = rel
                            .rows()
                            .iter()
                            .map(|r| r[col].as_item().unwrap_or(ItemId(u64::MAX)))
                            .collect();
                        let gen = GenerativeOp::default();
                        let out = gen.run(self.backend, task, &items_vec)?;
                        gen_cache.insert(key.clone(), out.rows);
                    }
                    let rows = &gen_cache[&key];
                    let fname = field.clone().unwrap_or_else(|| "value".to_owned());
                    let out_name = match field {
                        Some(f) => format!("{}.{f}", call.name),
                        None => call.name.clone(),
                    };
                    let values: Vec<Value> = rows
                        .iter()
                        .map(|r| r.get(&fname).cloned().unwrap_or(Value::Null))
                        .collect();
                    schema.push_field(&out_name, ValueType::Text);
                    cols.push(Col::Gen { values });
                }
            }
        }

        let mut out = Relation::new(schema);
        for (ri, row) in rel.rows().iter().enumerate() {
            let values: Vec<Value> = cols
                .iter()
                .map(|c| match c {
                    Col::Copy(i) => row[*i],
                    Col::Gen { values } => values.get(ri).cloned().unwrap_or(Value::Null),
                })
                .collect();
            out.push_unchecked(Tuple::new(values));
        }
        Ok(out)
    }
}

/// Mean pairwise disagreement over all voted pairs of a comparison
/// tally: 0 = every contest unanimous, 1 = every contest tied.
fn mean_pair_disagreement(tally: &PairTally, n: usize) -> Option<f64> {
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let (wi, wj) = tally.votes(i, j);
            let votes = wi + wj;
            if votes > 0 {
                total += 2.0 * wi.min(wj) as f64 / votes as f64;
                pairs += 1;
            }
        }
    }
    (pairs > 0).then(|| total / pairs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::schema::Schema;
    use qurk_crowd::truth::{DimensionParams, PredicateTruth};
    use qurk_crowd::{CrowdConfig, EntityId, GroundTruth, Marketplace};

    fn setup() -> (Catalog, Marketplace) {
        let mut gt = GroundTruth::new();
        gt.define_dimension("height", DimensionParams::crisp(0.02));
        let items = gt.new_items(10);
        for (i, &it) in items.iter().enumerate() {
            gt.set_predicate(
                it,
                "isTall",
                PredicateTruth {
                    value: i >= 5,
                    error_rate: 0.03,
                },
            );
            gt.set_score(it, "height", i as f64);
            gt.set_entity(it, EntityId(i as u64));
        }
        let market = Marketplace::new(&CrowdConfig::default(), gt);

        let mut catalog = Catalog::new();
        let mut rel = Relation::new(Schema::new(&[
            ("id", ValueType::Int),
            ("img", ValueType::Item),
        ]));
        for (i, &it) in items.iter().enumerate() {
            rel.push(vec![Value::Int(i as i64), Value::Item(it)])
                .unwrap();
        }
        catalog.register_table("people", rel);
        catalog
            .define_tasks(
                r#"TASK isTall(field) TYPE Filter:
                    Prompt: "<img src='%s'> Tall?", tuple[field]
                   TASK byHeight(field) TYPE Rank:
                    OrderDimensionName: "height"
                    Html: "<img src='%s'>", tuple[field]
                "#,
            )
            .unwrap();
        (catalog, market)
    }

    #[test]
    fn builder_runs_query_and_reports_costs() {
        let (catalog, market) = setup();
        let mut session = Session::builder().catalog(&catalog).backend(market).build();
        let report = session
            .query("SELECT id FROM people WHERE isTall(people.img)")
            .report()
            .unwrap();
        // 10 items / batch 5 = 2 HITs x 5 assignments x $0.015.
        assert_eq!(report.hits_posted, 2);
        assert_eq!(report.assignments, 10);
        assert!((report.cost_dollars - 10.0 * 0.015).abs() < 1e-9);
        assert!(report.elapsed_secs > 0.0);
        assert!(report.explain.contains("CrowdFilter"));
        assert_eq!(session.usage_history().len(), 1);
    }

    #[test]
    fn session_caches_repeat_queries() {
        let (catalog, market) = setup();
        let mut session = Session::new(&catalog, market);
        let first = session
            .query("SELECT id FROM people WHERE isTall(people.img)")
            .report()
            .unwrap();
        let second = session
            .query("SELECT id FROM people WHERE isTall(people.img)")
            .report()
            .unwrap();
        assert!(first.hits_posted > 0);
        assert_eq!(second.hits_posted, 0, "repeat query must be cached");
        assert_eq!(second.cost_dollars, 0.0);
        assert_eq!(first.relation, second.relation);
    }

    #[test]
    fn borrowed_marketplace_backend_works() {
        let (catalog, mut market) = setup();
        {
            let mut session = Session::new(&catalog, &mut market);
            session
                .run("SELECT id FROM people WHERE isTall(people.img)")
                .unwrap();
        }
        // The marketplace is accessible again after the session ends.
        assert!(market.hits_posted() > 0);
    }

    #[test]
    fn budget_stops_new_crowd_work() {
        let (catalog, market) = setup();
        let mut session = Session::new(&catalog, market);
        let err = session
            .query("SELECT id FROM people WHERE isTall(people.img)")
            .budget_dollars(0.0)
            .run();
        assert!(
            matches!(err, Err(QurkError::BudgetExceeded { .. })),
            "{err:?}"
        );
        // No crowd work was posted.
        assert_eq!(session.backend().hits_posted(), 0);
        // The session remains usable without a budget.
        let rel = session
            .run("SELECT id FROM people WHERE isTall(people.img)")
            .unwrap();
        assert!(rel.len() >= 4);
    }

    #[test]
    fn explain_costs_nothing() {
        let (catalog, market) = setup();
        let mut session = Session::new(&catalog, market);
        let plan = session
            .query("SELECT id FROM people ORDER BY byHeight(people.img)")
            .explain()
            .unwrap();
        assert!(plan.contains("OrderBy"), "{plan}");
        assert!(plan.contains("physical plan"), "{plan}");
        assert!(plan.contains("estimated:"), "{plan}");
        assert_eq!(session.backend().hits_posted(), 0);
    }

    #[test]
    fn session_learns_statistics_from_queries() {
        let (catalog, market) = setup();
        let mut session = Session::new(&catalog, market);
        assert!(session.statistics().is_empty());
        session
            .run("SELECT id FROM people WHERE isTall(people.img)")
            .unwrap();
        let sel = session.statistics().filter_selectivity("isTall").unwrap();
        assert!((0.3..=0.7).contains(&sel), "sel={sel}");
        assert!(session.statistics().secs_per_hit().unwrap() > 0.0);

        session
            .run("SELECT id FROM people ORDER BY byHeight(people.img)")
            .unwrap();
        let amb = session.statistics().sort_ambiguity("height").unwrap();
        assert!(amb < 0.3, "crisp dimension should read unambiguous: {amb}");
    }

    #[test]
    fn report_carries_estimates_and_renders_explain() {
        let (catalog, market) = setup();
        let mut session = Session::new(&catalog, market);
        let report = session
            .query("SELECT id FROM people WHERE isTall(people.img)")
            .report()
            .unwrap();
        // Cardinality known from the catalog: 10 rows / batch 5.
        assert_eq!(report.plan.estimate.hits, 2.0);
        assert_eq!(report.plan.mode, OptimizeMode::CostBased);
        assert!(report.plan.decisions.is_empty(), "no stats, no deviations");
        let full = report.explain_full();
        assert!(full.contains("logical plan:"), "{full}");
        assert!(full.contains("estimated vs actual"), "{full}");
    }

    #[test]
    fn seeded_statistics_flow_through_builder() {
        let (catalog, market) = setup();
        let mut seed = StatisticsStore::new();
        seed.record_filter("isTall", 100, 50);
        let session = Session::builder()
            .catalog(&catalog)
            .backend(market)
            .statistics(seed)
            .build();
        assert_eq!(session.statistics().filter_selectivity("isTall"), Some(0.5));
    }

    /// Regression: a machine-evaluable member of an OR group must run
    /// before the group's crowd predicates regardless of written
    /// order — it costs nothing and shrinks the crowd's workload.
    /// Previously the group ran strictly as written, asking the crowd
    /// about every row first.
    #[test]
    fn or_group_machine_members_run_below_crowd_work() {
        let (catalog, market) = setup();
        let mut session = Session::new(&catalog, market);
        // Group 1: crowd predicate written BEFORE the machine one.
        // Machine-first narrows 10 rows to the 2 with id >= 8, so the
        // crowd sees one batch-5 HIT instead of two.
        let report = session
            .query(
                "SELECT id FROM people \
                 WHERE isTall(people.img) AND people.id >= 8 OR people.id < 0",
            )
            .report()
            .unwrap();
        assert_eq!(
            report.hits_posted, 1,
            "machine disjunct member must prefilter the crowd's input"
        );
        for row in report.relation.rows() {
            assert!(row[0].as_int().unwrap() >= 8);
        }
    }

    #[test]
    fn machine_only_query_reports_zero_cost_epoch() {
        let (catalog, market) = setup();
        let mut session = Session::new(&catalog, market);
        // A crowd query first, so the virtual clock has advanced.
        session
            .run("SELECT id FROM people WHERE isTall(people.img)")
            .unwrap();
        let report = session
            .query("SELECT id FROM people WHERE people.id < 3")
            .report()
            .unwrap();
        assert_eq!(report.hits_posted, 0);
        assert_eq!(report.cost_dollars, 0.0);
        assert_eq!(
            report.elapsed_secs, 0.0,
            "machine-only plans take no crowd time"
        );
    }
}
