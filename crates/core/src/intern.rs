//! String interning: `Text` values as u32 handles.
//!
//! Every distinct text value in the system is stored exactly once in a
//! process-wide append-only [`SymbolTable`]; relations, filters, join
//! keys, and Task Cache spec keys carry a 4-byte [`ValueId`] handle
//! instead of a heap `String`. Because the table deduplicates on
//! insert, two handles are equal **iff** their strings are equal, so
//! equality and hashing become integer ops on the hot paths, and
//! [`Value`](crate::Value) becomes a 16-byte `Copy` type — a row copy
//! is a flat `memcpy`, with no per-cell allocation.
//!
//! Interned strings are leaked (the table is append-only and lives for
//! the process), which is what lets [`IStr::as_str`] hand out
//! `&'static str` without holding a lock across the call. The
//! workloads here intern a bounded vocabulary (celebrity names, movie
//! titles, predicate strings), so the leak is the point: it is the
//! arena.
// lint:hot-path

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// Index of an interned string in the process-wide [`SymbolTable`].
///
/// Ids are assigned densely in first-intern order, so they are
/// deterministic for a deterministic execution — important because
/// replayed traces must be byte-identical to recorded ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Append-only deduplicating string table.
///
/// Usually used through the process-wide instance via [`IStr`], but
/// constructible standalone for tests and tooling.
#[derive(Default)]
pub struct SymbolTable {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

impl SymbolTable {
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Intern `s`, returning the id of its canonical copy.
    pub fn intern(&mut self, s: &str) -> ValueId {
        if let Some(&id) = self.map.get(s) {
            return ValueId(id);
        }
        let canonical: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(self.strings.len()).expect("symbol table overflow");
        self.strings.push(canonical);
        self.map.insert(canonical, id);
        ValueId(id)
    }

    /// Look up an id without interning. `None` if `s` was never seen.
    pub fn lookup(&self, s: &str) -> Option<ValueId> {
        self.map.get(s).map(|&id| ValueId(id))
    }

    /// The canonical string for `id`. Panics on a foreign id.
    pub fn resolve(&self, id: ValueId) -> &'static str {
        self.strings[id.0 as usize]
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

fn global() -> &'static RwLock<SymbolTable> {
    static TABLE: OnceLock<RwLock<SymbolTable>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(SymbolTable::new()))
}

/// An interned string: a `Copy` handle into the process-wide table.
///
/// Equality and hashing are integer ops on the id (dedup makes id
/// equality equivalent to string equality). Ordering compares string
/// *content* so SQL `ORDER BY` semantics are unchanged by interning.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct IStr(ValueId);

impl IStr {
    /// Intern `s` in the process-wide table.
    pub fn new(s: &str) -> IStr {
        // Fast path: already interned — a shared read lock suffices.
        {
            let table = global().read().unwrap_or_else(|e| e.into_inner());
            if let Some(id) = table.lookup(s) {
                return IStr(id);
            }
        }
        let mut table = global().write().unwrap_or_else(|e| e.into_inner());
        IStr(table.intern(s))
    }

    pub fn id(self) -> ValueId {
        self.0
    }

    /// The canonical string. `'static` because interned strings live
    /// for the process — no lock is held after this returns.
    pub fn as_str(self) -> &'static str {
        global()
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .resolve(self.0)
    }
}

impl PartialOrd for IStr {
    fn partial_cmp(&self, other: &IStr) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IStr {
    fn cmp(&self, other: &IStr) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl std::ops::Deref for IStr {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for IStr {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

// Debug renders like `&str` (`"alice"`, not `IStr(ValueId(3))`) so
// `Value::Text(..)` debug output — which feeds golden transcripts and
// spec-key derivation — is byte-identical to the pre-interning layout.
impl std::fmt::Debug for IStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl std::fmt::Display for IStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for IStr {
    fn from(s: &str) -> IStr {
        IStr::new(s)
    }
}

impl From<&String> for IStr {
    fn from(s: &String) -> IStr {
        IStr::new(s)
    }
}

impl From<String> for IStr {
    fn from(s: String) -> IStr {
        IStr::new(&s)
    }
}

impl PartialEq<str> for IStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for IStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for IStr {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<IStr> for str {
    fn eq(&self, other: &IStr) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<IStr> for String {
    fn eq(&self, other: &IStr) -> bool {
        self.as_str() == other.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_makes_id_equality_string_equality() {
        let a = IStr::new("alice");
        let b = IStr::new(&format!("ali{}", "ce"));
        let c = IStr::new("bob");
        assert_eq!(a.id(), b.id());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "alice");
    }

    #[test]
    fn ordering_is_by_content_not_id() {
        // Intern in reverse lexicographic order: ids go z < a but
        // content ordering must still say "a" < "z".
        let z = IStr::new("zzz-intern-order");
        let a = IStr::new("aaa-intern-order");
        assert!(a < z);
        assert!(z > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn debug_matches_str_debug() {
        let s = IStr::new("with \"quotes\"");
        assert_eq!(format!("{s:?}"), format!("{:?}", "with \"quotes\""));
        assert_eq!(format!("{s}"), "with \"quotes\"");
    }

    #[test]
    fn mixed_type_equality() {
        let s = IStr::new("mixed");
        let owned = String::from("mixed");
        assert!(s == "mixed");
        assert!(s == owned);
        assert!(*"mixed" == s);
        assert!(owned == s);
        assert_eq!(&*s, "mixed");
        assert_eq!(s.as_ref(), "mixed");
    }

    #[test]
    fn standalone_table() {
        let mut t = SymbolTable::new();
        assert!(t.is_empty());
        let a = t.intern("x");
        let b = t.intern("y");
        assert_eq!(t.intern("x"), a);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), "x");
        assert_eq!(t.lookup("y"), Some(b));
        assert_eq!(t.lookup("z"), None);
    }
}
