//! Relation schemas.

use crate::value::Value;

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueType {
    Bool,
    Int,
    Float,
    Text,
    /// Crowd-visible item reference.
    Item,
}

impl ValueType {
    /// Does `v` inhabit this type? `Null` inhabits every type.
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ValueType::Bool, Value::Bool(_))
                | (ValueType::Int, Value::Int(_))
                | (ValueType::Float, Value::Float(_))
                | (ValueType::Float, Value::Int(_))
                | (ValueType::Text, Value::Text(_))
                | (ValueType::Item, Value::Item(_))
        )
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub ty: ValueType,
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate column names.
    pub fn new(fields: &[(&str, ValueType)]) -> Self {
        let mut s = Schema::default();
        for &(name, ty) in fields {
            s.push_field(name, ty);
        }
        s
    }

    /// Append a field.
    ///
    /// # Panics
    /// Panics on duplicate column names.
    pub fn push_field(&mut self, name: &str, ty: ValueType) {
        assert!(
            self.index_of(name).is_none(),
            "duplicate column name: {name}"
        );
        self.fields.push(Field {
            name: name.to_owned(),
            ty,
        });
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Column index by exact name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Column index by name, also accepting `alias.name` qualified form
    /// when the schema stores qualified names (after joins) or plain
    /// names (single-table).
    pub fn resolve(&self, name: &str) -> Option<usize> {
        if let Some(i) = self.index_of(name) {
            return Some(i);
        }
        // A qualified reference can match an unqualified column or vice
        // versa, as long as it is unambiguous.
        let suffix_matches: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.name.rsplit('.').next() == name.rsplit('.').next()
                    && (f.name.ends_with(&format!(".{name}"))
                        || name.ends_with(&format!(".{}", f.name))
                        || f.name == name
                        || f.name.rsplit('.').next() == Some(name))
            })
            .map(|(i, _)| i)
            .collect();
        if suffix_matches.len() == 1 {
            Some(suffix_matches[0])
        } else {
            None
        }
    }

    /// Concatenate two schemas, qualifying collisions with the given
    /// aliases (used by joins).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut out = Schema::default();
        for f in &self.fields {
            out.push_field(&f.name, f.ty);
        }
        for f in &other.fields {
            if out.index_of(&f.name).is_some() {
                out.push_field(&format!("right.{}", f.name), f.ty);
            } else {
                out.push_field(&f.name, f.ty);
            }
        }
        out
    }

    /// Prefix every column with `alias.` (used when a table is scanned
    /// under an alias).
    pub fn qualified(&self, alias: &str) -> Schema {
        let mut out = Schema::default();
        for f in &self.fields {
            let base = f.name.rsplit('.').next().unwrap_or(&f.name);
            out.push_field(&format!("{alias}.{base}"), f.ty);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let s = Schema::new(&[("name", ValueType::Text), ("img", ValueType::Item)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("img"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_rejected() {
        Schema::new(&[("a", ValueType::Int), ("a", ValueType::Int)]);
    }

    #[test]
    fn admits_types() {
        assert!(ValueType::Int.admits(&Value::Int(1)));
        assert!(ValueType::Float.admits(&Value::Int(1))); // widening
        assert!(!ValueType::Int.admits(&Value::Float(1.0)));
        assert!(ValueType::Text.admits(&Value::Null));
    }

    #[test]
    fn qualified_resolution() {
        let s = Schema::new(&[("c.name", ValueType::Text), ("c.img", ValueType::Item)]);
        assert_eq!(s.resolve("c.img"), Some(1));
        assert_eq!(s.resolve("img"), Some(1));
        assert_eq!(s.resolve("name"), Some(0));
    }

    #[test]
    fn ambiguous_unqualified_is_none() {
        let s = Schema::new(&[("a.img", ValueType::Item), ("b.img", ValueType::Item)]);
        assert_eq!(s.resolve("img"), None);
        assert_eq!(s.resolve("a.img"), Some(0));
    }

    #[test]
    fn join_renames_collisions() {
        let a = Schema::new(&[("img", ValueType::Item)]);
        let b = Schema::new(&[("img", ValueType::Item), ("id", ValueType::Int)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 3);
        assert_eq!(j.fields()[1].name, "right.img");
        assert_eq!(j.index_of("id"), Some(2));
    }

    #[test]
    fn qualify_replaces_prefix() {
        let s = Schema::new(&[("name", ValueType::Text)]).qualified("c");
        assert_eq!(s.fields()[0].name, "c.name");
        let re = s.qualified("d");
        assert_eq!(re.fields()[0].name, "d.name");
    }
}
