//! The on-disk segment: one append-only, checksummed log file.
//!
//! ```text
//! file   := header record*
//! header := "QWAL" version:u32le            (8 bytes)
//! record := len:u32le crc:u32le payload     (payload[0] is the kind)
//! ```
//!
//! `crc` is the CRC-32 of the payload. On open the file is scanned
//! front to back; the first frame that is short, oversized, or fails
//! its checksum marks the **torn tail** — everything before it is the
//! recovered log and the file is truncated back to that offset (a
//! crash mid-append loses at most the record being written, never an
//! acknowledged one).
//!
//! Compaction writes a full snapshot to `<path>.compact.tmp` and
//! atomically renames it over the live log; a leftover temp file at
//! open is discarded (the crash happened before the swap, so the live
//! log is authoritative).
//!
//! All crash points of [`CrashPoint`](super::CrashPoint) are trip
//! wires in this module: once a [`FaultPlan`] fires, the segment goes
//! **dead** — every later write silently does nothing, modeling the
//! process being gone while the harness keeps executing.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::store::codec::crc32;
use crate::store::fault::{CrashPoint, FaultPlan};
use crate::store::{StoreError, StoreHealth};

const MAGIC: &[u8; 4] = b"QWAL";
const VERSION: u32 = 1;
pub(crate) const HEADER_LEN: u64 = 8;

/// Largest payload `open` will believe; anything bigger is read as a
/// torn/garbage tail. Generous next to real records (a few KB).
const MAX_PAYLOAD: u32 = 64 << 20;

pub(crate) struct Segment {
    path: PathBuf,
    file: File,
    /// Bytes of valid log (header + intact records).
    len: u64,
    health: StoreHealth,
    plan: Option<FaultPlan>,
}

impl Segment {
    /// Open (creating if absent) the segment at `path`, discarding any
    /// leftover compaction temp file and truncating a torn tail.
    /// Returns the segment plus the recovered record payloads.
    pub fn open(
        path: &Path,
        plan: Option<FaultPlan>,
    ) -> Result<(Segment, Vec<Vec<u8>>), StoreError> {
        let tmp = tmp_path(path);
        if tmp.exists() {
            // Crash between snapshot write and rename: the live log is
            // authoritative, the snapshot is garbage.
            std::fs::remove_file(&tmp).map_err(StoreError::Io)?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(StoreError::Io)?;
        let file_len = file.metadata().map_err(StoreError::Io)?.len();
        if file_len == 0 {
            file.write_all(&header_bytes()).map_err(StoreError::Io)?;
            file.flush().map_err(StoreError::Io)?;
            let seg = Segment {
                path: path.to_path_buf(),
                file,
                len: HEADER_LEN,
                health: StoreHealth::Alive,
                plan,
            };
            return Ok((seg, Vec::new()));
        }

        let mut bytes = Vec::with_capacity(file_len as usize);
        file.read_to_end(&mut bytes).map_err(StoreError::Io)?;
        if bytes.len() < HEADER_LEN as usize || &bytes[0..4] != MAGIC {
            return Err(StoreError::corrupt(format!(
                "{} is not a qurk store (bad magic)",
                path.display()
            )));
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != VERSION {
            return Err(StoreError::corrupt(format!(
                "unsupported store version {version} (expected {VERSION})"
            )));
        }

        let mut records = Vec::new();
        let mut pos = HEADER_LEN as usize;
        loop {
            if pos == bytes.len() {
                break; // clean end
            }
            if pos + 8 > bytes.len() {
                break; // torn frame header
            }
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
            let crc = u32::from_le_bytes([
                bytes[pos + 4],
                bytes[pos + 5],
                bytes[pos + 6],
                bytes[pos + 7],
            ]);
            if len == 0 || len > MAX_PAYLOAD {
                break; // garbage length: torn tail
            }
            let start = pos + 8;
            let end = start + len as usize;
            if end > bytes.len() {
                break; // torn payload
            }
            let payload = &bytes[start..end];
            if crc32(payload) != crc {
                break; // checksum failure: torn tail
            }
            records.push(payload.to_vec());
            pos = end;
        }
        if pos as u64 != file_len {
            // Drop the torn tail so the next append starts on a valid
            // frame boundary.
            file.set_len(pos as u64).map_err(StoreError::Io)?;
        }
        file.seek(SeekFrom::End(0)).map_err(StoreError::Io)?;
        let seg = Segment {
            path: path.to_path_buf(),
            file,
            len: pos as u64,
            health: StoreHealth::Alive,
            plan,
        };
        Ok((seg, records))
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of valid log on disk (as far as this handle knows).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    pub fn health(&self) -> StoreHealth {
        self.health.clone()
    }

    pub fn is_dead(&self) -> bool {
        !matches!(self.health, StoreHealth::Alive)
    }

    fn trip(&mut self, point: CrashPoint) -> bool {
        if self.is_dead() {
            return true;
        }
        if self.plan.as_mut().is_some_and(|p| p.trip(point)) {
            self.health = StoreHealth::FaultInjected(point);
        }
        self.is_dead()
    }

    fn fail(&mut self, e: std::io::Error) {
        if matches!(self.health, StoreHealth::Alive) {
            self.health = StoreHealth::Failed(e.to_string());
        }
    }

    /// Append one record. Write-ahead semantics: when this returns on
    /// a live segment the record is framed, checksummed and flushed.
    /// On a dead segment it is a silent no-op (the "process" is gone).
    pub fn append(&mut self, payload: &[u8]) {
        if self.trip(CrashPoint::AppendStart) {
            return;
        }
        let frame = frame_bytes(payload);
        // Torn-append injection: half the frame reaches the disk.
        let torn = {
            let dying = self
                .plan
                .as_mut()
                .is_some_and(|p| p.trip(CrashPoint::AppendTorn));
            if dying {
                self.health = StoreHealth::FaultInjected(CrashPoint::AppendTorn);
            }
            dying
        };
        let to_write = if torn {
            &frame[..frame.len() / 2]
        } else {
            &frame[..]
        };
        if let Err(e) = self
            .file
            .write_all(to_write)
            .and_then(|()| self.file.flush())
        {
            self.fail(e);
            return;
        }
        if torn {
            return; // dead; self.len stays at the last valid boundary
        }
        self.len += frame.len() as u64;
        self.trip(CrashPoint::AppendDone);
    }

    /// Replace the whole log with `payloads` (a compaction snapshot):
    /// write them to a temp file, fsync, atomically rename over the
    /// live log.
    pub fn rewrite(&mut self, payloads: &[Vec<u8>]) {
        if self.trip(CrashPoint::CompactStart) {
            return;
        }
        let mut bytes = header_bytes().to_vec();
        for p in payloads {
            bytes.extend_from_slice(&frame_bytes(p));
        }
        let tmp = tmp_path(&self.path);
        let torn = {
            let dying = self
                .plan
                .as_mut()
                .is_some_and(|p| p.trip(CrashPoint::CompactTorn));
            if dying {
                self.health = StoreHealth::FaultInjected(CrashPoint::CompactTorn);
            }
            dying
        };
        let to_write = if torn {
            &bytes[..bytes.len() / 2]
        } else {
            &bytes[..]
        };
        let write_tmp = || -> std::io::Result<File> {
            let mut f = File::create(&tmp)?;
            f.write_all(to_write)?;
            f.sync_all()?;
            Ok(f)
        };
        if let Err(e) = write_tmp() {
            self.fail(e);
            return;
        }
        if torn {
            return; // dead with a torn temp file on disk; live log intact
        }
        if self.trip(CrashPoint::CompactWritten) {
            return; // dead with a complete temp file, live log intact
        }
        if let Err(e) = std::fs::rename(&tmp, &self.path) {
            self.fail(e);
            return;
        }
        // Reopen our handle on the swapped-in file so later appends
        // land in the compacted log.
        let reopened = OpenOptions::new().read(true).append(true).open(&self.path);
        match reopened {
            Ok(f) => {
                self.file = f;
                self.len = bytes.len() as u64;
            }
            Err(e) => {
                self.fail(e);
                return;
            }
        }
        self.trip(CrashPoint::CompactSwapped);
    }
}

fn header_bytes() -> [u8; 8] {
    let mut h = [0u8; 8];
    h[0..4].copy_from_slice(MAGIC);
    h[4..8].copy_from_slice(&VERSION.to_le_bytes());
    h
}

fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".compact.tmp");
    PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::testutil::tmp_store_path;

    fn open_clean(path: &Path) -> (Segment, Vec<Vec<u8>>) {
        Segment::open(path, None).unwrap()
    }

    #[test]
    fn append_then_reopen_recovers_every_record() {
        let path = tmp_store_path("log-roundtrip");
        let (mut seg, recovered) = open_clean(&path);
        assert!(recovered.is_empty());
        seg.append(b"\x01first");
        seg.append(b"\x02second record");
        drop(seg);
        let (_seg, recovered) = open_clean(&path);
        assert_eq!(
            recovered,
            vec![b"\x01first".to_vec(), b"\x02second record".to_vec()]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let path = tmp_store_path("log-torn");
        let (mut seg, _) = open_clean(&path);
        seg.append(b"\x01keep me");
        drop(seg);
        // Simulate a crash mid-append: garbage half-frame at the tail.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x10, 0x00, 0x00, 0x00, 0xAA]).unwrap();
        drop(f);
        let (mut seg, recovered) = open_clean(&path);
        assert_eq!(recovered, vec![b"\x01keep me".to_vec()]);
        seg.append(b"\x02after recovery");
        drop(seg);
        let (_seg, recovered) = open_clean(&path);
        assert_eq!(
            recovered,
            vec![b"\x01keep me".to_vec(), b"\x02after recovery".to_vec()]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_record_drops_it_and_everything_after() {
        let path = tmp_store_path("log-crc");
        let (mut seg, _) = open_clean(&path);
        seg.append(b"\x01good");
        seg.append(b"\x02soon flipped");
        drop(seg);
        // Flip one payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_seg, recovered) = open_clean(&path);
        assert_eq!(recovered, vec![b"\x01good".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rewrite_swaps_atomically_and_cleans_leftover_tmp() {
        let path = tmp_store_path("log-rewrite");
        let (mut seg, _) = open_clean(&path);
        seg.append(b"\x01a");
        seg.append(b"\x01b");
        seg.rewrite(&[b"\x01merged".to_vec()]);
        seg.append(b"\x01after");
        drop(seg);
        let (_seg, recovered) = open_clean(&path);
        assert_eq!(
            recovered,
            vec![b"\x01merged".to_vec(), b"\x01after".to_vec()]
        );

        // A stale temp file (crash before rename) is discarded at open.
        std::fs::write(tmp_path(&path), b"garbage").unwrap();
        let (_seg, recovered) = open_clean(&path);
        assert_eq!(
            recovered,
            vec![b"\x01merged".to_vec(), b"\x01after".to_vec()]
        );
        assert!(!tmp_path(&path).exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dead_segment_writes_nothing() {
        let path = tmp_store_path("log-dead");
        let plan = FaultPlan::at(CrashPoint::AppendDone).on_occurrence(1);
        let (mut seg, _) = Segment::open(&path, Some(plan)).unwrap();
        seg.append(b"\x01durable");
        assert!(seg.is_dead());
        seg.append(b"\x01lost");
        seg.rewrite(&[b"\x01also lost".to_vec()]);
        drop(seg);
        let (_seg, recovered) = open_clean(&path);
        assert_eq!(recovered, vec![b"\x01durable".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_append_loses_only_the_in_flight_record() {
        let path = tmp_store_path("log-torn-inject");
        let plan = FaultPlan::at(CrashPoint::AppendTorn).on_occurrence(2);
        let (mut seg, _) = Segment::open(&path, Some(plan)).unwrap();
        seg.append(b"\x01first survives a torn second");
        seg.append(b"\x02this one tears");
        assert!(seg.is_dead());
        drop(seg);
        let (_seg, recovered) = open_clean(&path);
        assert_eq!(
            recovered,
            vec![b"\x01first survives a torn second".to_vec()]
        );
        std::fs::remove_file(&path).unwrap();
    }
}
