//! Hand-rolled binary codec for the durable log.
//!
//! No serialization crate is vendored, so the record payloads are
//! encoded with a tiny explicit scheme: little-endian fixed-width
//! integers, `f64` as its IEEE-754 bit pattern, strings and sequences
//! length-prefixed with a `u32`. Every encoder has a matching decoder
//! and the pair is exercised by round-trip tests; maps are always
//! written in sorted key order so identical logical state produces
//! identical bytes (compaction output is diffable).

use std::collections::HashMap;

use qurk_crowd::truth::ItemId;
use qurk_crowd::{Answer, WorkerId};

use crate::backend::{TraceAssignment, TraceEntry};
use crate::opt::stats::{Avg, FeatureStat, RoundSums, StatisticsStore, Tally};
use crate::store::StoreError;

// CRC-32 (IEEE 802.3, reflected), table built at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 checksum of `bytes` (IEEE polynomial).
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Append-only byte buffer with typed writers.
#[derive(Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Enc::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.f64(x);
            }
            None => self.bool(false),
        }
    }
}

/// Cursor over an encoded payload; every read is bounds-checked and a
/// failure surfaces as [`StoreError::Corrupt`].
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| StoreError::corrupt("payload shorter than its fields"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, StoreError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::corrupt(format!("bad bool byte {other}"))),
        }
    }

    pub fn u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    pub fn usize(&mut self) -> Result<usize, StoreError> {
        Ok(self.u64()? as usize)
    }

    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::corrupt("string field is not UTF-8"))
    }

    pub fn opt_f64(&mut self) -> Result<Option<f64>, StoreError> {
        Ok(if self.bool()? {
            Some(self.f64()?)
        } else {
            None
        })
    }

    /// Every decoder must drain its payload exactly; leftovers mean a
    /// schema mismatch.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(StoreError::corrupt("trailing bytes after payload"))
        }
    }
}

// ----------------------------------------------------- domain encoders

fn enc_answer(e: &mut Enc, a: &Answer) {
    match a {
        Answer::Bool(b) => {
            e.u8(0);
            e.bool(*b);
        }
        Answer::Category(c) => {
            e.u8(1);
            e.usize(*c);
        }
        Answer::Text(t) => {
            e.u8(2);
            e.str(t);
        }
        Answer::Ordering(items) => {
            e.u8(3);
            e.u32(items.len() as u32);
            for it in items {
                e.u64(it.0);
            }
        }
        Answer::Rating(r) => {
            e.u8(4);
            e.u8(*r);
        }
        Answer::Pick(it) => {
            e.u8(5);
            e.u64(it.0);
        }
    }
}

fn dec_answer(d: &mut Dec<'_>) -> Result<Answer, StoreError> {
    Ok(match d.u8()? {
        0 => Answer::Bool(d.bool()?),
        1 => Answer::Category(d.usize()?),
        2 => Answer::Text(d.str()?),
        3 => {
            let n = d.u32()? as usize;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(ItemId(d.u64()?));
            }
            Answer::Ordering(items)
        }
        4 => Answer::Rating(d.u8()?),
        5 => Answer::Pick(ItemId(d.u64()?)),
        tag => return Err(StoreError::corrupt(format!("bad answer tag {tag}"))),
    })
}

pub(crate) fn enc_trace_entry(e: &mut Enc, entry: &TraceEntry) {
    e.usize(entry.question_count);
    e.u32(entry.assignments.len() as u32);
    for a in &entry.assignments {
        e.usize(a.worker.0);
        e.f64(a.accept_delay_secs);
        e.f64(a.submit_delay_secs);
        e.u32(a.answers.len() as u32);
        for ans in &a.answers {
            enc_answer(e, ans);
        }
    }
}

pub(crate) fn dec_trace_entry(d: &mut Dec<'_>) -> Result<TraceEntry, StoreError> {
    let question_count = d.usize()?;
    let n = d.u32()? as usize;
    let mut assignments = Vec::with_capacity(n);
    for _ in 0..n {
        let worker = WorkerId(d.usize()?);
        let accept_delay_secs = d.f64()?;
        let submit_delay_secs = d.f64()?;
        let m = d.u32()? as usize;
        let mut answers = Vec::with_capacity(m);
        for _ in 0..m {
            answers.push(dec_answer(d)?);
        }
        assignments.push(TraceAssignment {
            worker,
            answers,
            accept_delay_secs,
            submit_delay_secs,
        });
    }
    Ok(TraceEntry {
        question_count,
        assignments,
    })
}

fn sorted<V>(map: &HashMap<String, V>) -> Vec<(&String, &V)> {
    let mut v: Vec<_> = map.iter().collect();
    v.sort_by(|a, b| a.0.cmp(b.0));
    v
}

pub(crate) fn enc_stats(e: &mut Enc, s: &StatisticsStore) {
    e.u32(s.filters.len() as u32);
    for (k, t) in sorted(&s.filters) {
        e.str(k);
        e.u64(t.seen);
        e.u64(t.passed);
    }
    e.u32(s.joins.len() as u32);
    for (k, t) in sorted(&s.joins) {
        e.str(k);
        e.u64(t.seen);
        e.u64(t.passed);
    }
    e.u32(s.features.len() as u32);
    for (k, f) in sorted(&s.features) {
        e.str(k);
        e.f64(f.kappa);
        e.f64(f.selectivity);
    }
    e.u32(s.sorts.len() as u32);
    for (k, a) in sorted(&s.sorts) {
        e.str(k);
        e.u64(a.n);
        e.f64(a.sum);
    }
    e.u64(s.epoch_hits);
    e.f64(s.epoch_secs);
    e.u64(s.rounds.n);
    e.f64(s.rounds.sum_h);
    e.f64(s.rounds.sum_t);
    e.f64(s.rounds.sum_hh);
    e.f64(s.rounds.sum_ht);
}

pub(crate) fn dec_stats(d: &mut Dec<'_>) -> Result<StatisticsStore, StoreError> {
    let mut s = StatisticsStore::default();
    for _ in 0..d.u32()? {
        let k = d.str()?;
        let seen = d.u64()?;
        let passed = d.u64()?;
        s.filters.insert(k, Tally { seen, passed });
    }
    for _ in 0..d.u32()? {
        let k = d.str()?;
        let seen = d.u64()?;
        let passed = d.u64()?;
        s.joins.insert(k, Tally { seen, passed });
    }
    for _ in 0..d.u32()? {
        let k = d.str()?;
        let kappa = d.f64()?;
        let selectivity = d.f64()?;
        s.features.insert(k, FeatureStat { kappa, selectivity });
    }
    for _ in 0..d.u32()? {
        let k = d.str()?;
        let n = d.u64()?;
        let sum = d.f64()?;
        s.sorts.insert(k, Avg { n, sum });
    }
    s.epoch_hits = d.u64()?;
    s.epoch_secs = d.f64()?;
    s.rounds = RoundSums {
        n: d.u64()?,
        sum_h: d.f64()?,
        sum_t: d.f64()?,
        sum_hh: d.f64()?,
        sum_ht: d.f64()?,
    };
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.bool(true);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.f64(-0.125);
        e.str("héllo");
        e.opt_f64(None);
        e.opt_f64(Some(2.5));
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.f64().unwrap(), -0.125);
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.opt_f64().unwrap(), None);
        assert_eq!(d.opt_f64().unwrap(), Some(2.5));
        d.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_corrupt_not_panics() {
        let mut e = Enc::new();
        e.str("abcdef");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..bytes.len() - 2]);
        assert!(d.str().is_err());
        // A length prefix pointing past the buffer must not overflow.
        let mut d = Dec::new(&[0xFF, 0xFF, 0xFF, 0xFF]);
        assert!(d.str().is_err());
    }

    #[test]
    fn trace_entries_round_trip() {
        let entry = TraceEntry {
            question_count: 3,
            assignments: vec![
                TraceAssignment {
                    worker: WorkerId(42),
                    answers: vec![
                        Answer::Bool(true),
                        Answer::Category(2),
                        Answer::Text("blue".into()),
                        Answer::Ordering(vec![ItemId(9), ItemId(1)]),
                        Answer::Rating(4),
                        Answer::Pick(ItemId(7)),
                    ],
                    accept_delay_secs: 1.5,
                    submit_delay_secs: 30.25,
                },
                TraceAssignment {
                    worker: WorkerId(0),
                    answers: vec![],
                    accept_delay_secs: 0.0,
                    submit_delay_secs: 0.0,
                },
            ],
        };
        let mut e = Enc::new();
        enc_trace_entry(&mut e, &entry);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = dec_trace_entry(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back, entry);
    }

    #[test]
    fn stats_round_trip_and_encode_deterministically() {
        let mut s = StatisticsStore::new();
        s.record_filter("isTall", 10, 4);
        s.record_filter("isRed", 6, 1);
        s.record_join("sameCeleb", 100, 12);
        s.record_feature("hairColor", 0.8, 0.4);
        s.record_sort("area", 0.3);
        s.record_epoch(12, 360.0);
        s.record_round(4.0, 120.0);

        let mut e = Enc::new();
        enc_stats(&mut e, &s);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = dec_stats(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back, s);

        // Same logical content re-encodes to identical bytes (sorted
        // map order), regardless of hash-map iteration order.
        let mut e2 = Enc::new();
        enc_stats(&mut e2, &back);
        assert_eq!(e2.into_bytes(), bytes);
    }
}
