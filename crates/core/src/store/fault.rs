//! Deterministic fault injection for the durable store.
//!
//! A [`FaultPlan`] names one numbered durability point
//! ([`CrashPoint`]) and an occurrence count; when the store reaches
//! that point for the n-th time it **dies**: every subsequent write
//! becomes a no-op, leaving the file exactly as a real `kill -9` at
//! that instant would (torn points first write a partial record so the
//! tail is genuinely garbage). The process keeps running — the harness
//! discards the in-memory results, reopens the path, and asserts the
//! recovery invariants (`tests/crash_matrix.rs`).
//!
//! Dying instead of panicking keeps the sweep deterministic: no panic
//! hooks, no unwind races across query threads, and the same code path
//! as a real crash (the bytes on disk are all that survives either
//! way).

use std::fmt;

/// A numbered durability point inside the store where a crash can be
/// injected. The catalogue is exhaustive over the store's write paths:
/// three points around a record append, four around a compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// 1 — before any byte of a record append is written.
    AppendStart,
    /// 2 — mid-append: the frame header and roughly half the payload
    /// reach the file, then the process dies (a torn tail).
    AppendTorn,
    /// 3 — after an append is fully written and flushed: the record is
    /// durable, but nothing after it is.
    AppendDone,
    /// 4 — a compaction was triggered but dies before the snapshot
    /// temp file receives any byte.
    CompactStart,
    /// 5 — mid-compaction: the temp file is half-written, the live log
    /// untouched.
    CompactTorn,
    /// 6 — the snapshot temp file is complete but the atomic rename
    /// over the live log never happens.
    CompactWritten,
    /// 7 — the rename happened; the process dies before any in-memory
    /// bookkeeping after the swap.
    CompactSwapped,
}

impl CrashPoint {
    /// Every crash point, in catalogue order — the fault-matrix sweep
    /// iterates this.
    pub const ALL: [CrashPoint; 7] = [
        CrashPoint::AppendStart,
        CrashPoint::AppendTorn,
        CrashPoint::AppendDone,
        CrashPoint::CompactStart,
        CrashPoint::CompactTorn,
        CrashPoint::CompactWritten,
        CrashPoint::CompactSwapped,
    ];

    /// Stable catalogue number (1-based, matches `docs/store.md`).
    pub fn code(self) -> u8 {
        match self {
            CrashPoint::AppendStart => 1,
            CrashPoint::AppendTorn => 2,
            CrashPoint::AppendDone => 3,
            CrashPoint::CompactStart => 4,
            CrashPoint::CompactTorn => 5,
            CrashPoint::CompactWritten => 6,
            CrashPoint::CompactSwapped => 7,
        }
    }

    /// Parse the kebab-case name used by `qurk-serve --crash`.
    pub fn parse(name: &str) -> Option<CrashPoint> {
        CrashPoint::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// Kebab-case name (inverse of [`Self::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::AppendStart => "append-start",
            CrashPoint::AppendTorn => "append-torn",
            CrashPoint::AppendDone => "append-done",
            CrashPoint::CompactStart => "compact-start",
            CrashPoint::CompactTorn => "compact-torn",
            CrashPoint::CompactWritten => "compact-written",
            CrashPoint::CompactSwapped => "compact-swapped",
        }
    }
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (#{})", self.name(), self.code())
    }
}

/// Kill the store at the n-th occurrence of one [`CrashPoint`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    point: CrashPoint,
    /// 1-based occurrence at which to die.
    occurrence: u32,
    hits: u32,
}

impl FaultPlan {
    /// Die the first time `point` is reached.
    pub fn at(point: CrashPoint) -> Self {
        FaultPlan {
            point,
            occurrence: 1,
            hits: 0,
        }
    }

    /// Die the `n`-th time the point is reached instead of the first
    /// (`n` is 1-based; 0 is treated as 1).
    pub fn on_occurrence(mut self, n: u32) -> Self {
        self.occurrence = n.max(1);
        self
    }

    pub fn point(&self) -> CrashPoint {
        self.point
    }

    /// Called by the store at each durability point; `true` means "die
    /// now".
    pub(crate) fn trip(&mut self, point: CrashPoint) -> bool {
        if point != self.point {
            return false;
        }
        self.hits += 1;
        self.hits == self.occurrence
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_numbered_and_named() {
        let mut seen = std::collections::HashSet::new();
        for (i, p) in CrashPoint::ALL.iter().enumerate() {
            assert_eq!(usize::from(p.code()), i + 1);
            assert!(seen.insert(p.code()));
            assert_eq!(CrashPoint::parse(p.name()), Some(*p));
        }
        assert_eq!(CrashPoint::parse("no-such-point"), None);
    }

    #[test]
    fn plan_trips_on_the_requested_occurrence_only() {
        let mut plan = FaultPlan::at(CrashPoint::AppendDone).on_occurrence(3);
        assert!(!plan.trip(CrashPoint::AppendStart));
        assert!(!plan.trip(CrashPoint::AppendDone));
        assert!(!plan.trip(CrashPoint::AppendDone));
        assert!(plan.trip(CrashPoint::AppendDone));
        // Past the target occurrence the plan stays quiet (the store
        // is dead by then anyway).
        assert!(!plan.trip(CrashPoint::AppendDone));
    }
}
