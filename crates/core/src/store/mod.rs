//! `qurk::store` — the durable state layer (log-structured WAL).
//!
//! Crowd work costs real dollars, so losing state to a crash re-buys
//! answers the crowd already gave. This module persists the three
//! things worth dollars across restarts:
//!
//! 1. the **Task Cache** (spec key → paid assignments, the §2.5 cache
//!    at the HIT boundary),
//! 2. the learned [`StatisticsStore`](crate::opt::stats::StatisticsStore)
//!    evidence, and
//! 3. per-query **checkpoints** (tenant, SQL, budget, rounds consumed)
//!    so a restarted [`QueryService`](crate::service::QueryService)
//!    resumes in-flight queries by replaying their paid rounds from
//!    the cache instead of re-posting them.
//!
//! The format is a single append-only, checksummed segment file with
//! periodic compaction ([`log`]); every mutation is one framed record
//! ([`durable`]) written **ahead** of the in-memory acknowledgement.
//! Crash behavior is specified by a numbered [`CrashPoint`] catalogue
//! and verified by a deterministic fault-injection harness
//! ([`FaultPlan`], `tests/crash_matrix.rs`): at every crash point ×
//! seed, recovery never double-pays a spec, never loses a flushed
//! paid assignment, and resumed queries are byte-identical to
//! uninterrupted runs. See `docs/store.md` for the file format and
//! the recovery guarantees.
//!
//! This module is the only place in the workspace allowed to issue
//! `std::fs` **writes** (enforced by `cargo run -p xtask -- lint`,
//! rule `durable-fs`): all durability flows through this WAL API.

mod codec;
mod durable;
mod fault;
mod log;

pub use durable::{DurableStore, QueryCheckpoint, RecoveredState, SharedStore, TenantRecord};
pub use fault::{CrashPoint, FaultPlan};

use std::fmt;

/// Why a store operation failed (or why the store refused to open).
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file exists but is not a readable store (bad magic,
    /// unsupported version, undecodable record).
    Corrupt(String),
}

impl StoreError {
    fn corrupt(reason: impl Into<String>) -> Self {
        StoreError::Corrupt(reason.into())
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt(r) => write!(f, "store corrupt: {r}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<StoreError> for crate::error::QurkError {
    fn from(e: StoreError) -> Self {
        crate::error::QurkError::Store(e.to_string())
    }
}

/// Liveness of an open [`DurableStore`].
///
/// A store **dies** instead of erroring: after an injected crash
/// ([`FaultPlan`]) or a real I/O failure, every subsequent write is a
/// silent no-op — exactly the observable behavior of a killed process
/// — and the reason is available here. Callers that must fail loudly
/// on degraded durability (e.g. single-tenant
/// [`Session`](crate::session::Session) runs) check this after work.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreHealth {
    Alive,
    /// Dead by deterministic fault injection at this crash point.
    FaultInjected(CrashPoint),
    /// Dead by a real filesystem error (fail-stop, first error wins).
    Failed(String),
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique temp path per call (process id + counter), so tests
    /// never collide and can run in parallel.
    pub fn tmp_store_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("qurk-store-{tag}-{}-{n}.qwal", std::process::id()))
    }
}
