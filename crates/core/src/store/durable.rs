//! The typed durable store over one [`Segment`](super::log).
//!
//! Record kinds (payload byte 0):
//!
//! | kind | record | payload |
//! |---|---|---|
//! | 1 | CacheEntry | spec key + [`TraceEntry`] (a paid round's answers) |
//! | 2 | StatsDelta | a [`StatisticsStore`] learning delta |
//! | 3 | Checkpoint | query id, tenant, SQL, budget, rounds consumed |
//! | 4 | Rounds | query id + cumulative HIT rounds consumed |
//! | 5 | QueryDone | query id (checkpoint retired) |
//! | 6 | Tenant | tenant name, budget, attributed spend |
//!
//! Recovery folds the records front to back: cache entries accumulate
//! (first write wins, matching the cache's `or_insert`), stats deltas
//! merge, checkpoints stay live until their `QueryDone`, and tenant
//! records are latest-wins. Compaction rewrites exactly that folded
//! state as one snapshot, in sorted order so equal state produces
//! equal bytes.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use crate::backend::TraceEntry;
use crate::opt::stats::StatisticsStore;
use crate::store::codec::{dec_stats, dec_trace_entry, enc_stats, enc_trace_entry, Dec, Enc};
use crate::store::fault::FaultPlan;
use crate::store::log::Segment;
use crate::store::{StoreError, StoreHealth};

const KIND_CACHE_ENTRY: u8 = 1;
const KIND_STATS_DELTA: u8 = 2;
const KIND_CHECKPOINT: u8 = 3;
const KIND_ROUNDS: u8 = 4;
const KIND_QUERY_DONE: u8 = 5;
const KIND_TENANT: u8 = 6;

/// A persisted in-flight query: enough to resubmit it after a crash.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCheckpoint {
    /// Store-assigned id, unique for the lifetime of the log.
    pub id: u64,
    pub tenant: String,
    pub sql: String,
    pub budget: Option<f64>,
    /// Cumulative HIT rounds the query had consumed when last heard
    /// from (its paid work up to there is in the cache records).
    pub rounds_consumed: u64,
}

/// A persisted tenant registration (latest record wins).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRecord {
    pub name: String,
    pub budget: Option<f64>,
    /// Dollars attributed across completed batches.
    pub spent: f64,
}

/// Everything a fresh process can know after replaying the log.
#[derive(Debug, Clone, Default)]
pub struct RecoveredState {
    /// Spec key → paid assignments (the durable Task Cache).
    pub cache: HashMap<u64, TraceEntry>,
    /// Merged statistics deltas.
    pub stats: StatisticsStore,
    /// Checkpoints without a matching `QueryDone`, in id order.
    pub checkpoints: Vec<QueryCheckpoint>,
    /// Registered tenants with their persisted budgets and spend.
    pub tenants: Vec<TenantRecord>,
}

struct Inner {
    segment: Segment,
    state: RecoveredState,
    /// Record payloads appended since the last compaction (compaction
    /// triggers on log growth, not logical size).
    bytes_since_compact: u64,
    compact_threshold: u64,
    next_query_id: u64,
}

/// The durable, crash-safe store behind [`CachingBackend`
/// journaling](crate::backend::CachingBackend::with_journal),
/// [`Session::persist_to`](crate::session::SessionBuilder::persist_to)
/// and [`QueryService::with_store`](crate::service::QueryService).
///
/// Shareable (`Arc<DurableStore>`) and thread-safe: all methods take
/// `&self`. Appends are write-ahead — when an `append_*` call returns
/// on a healthy store, the record is framed, checksummed and flushed.
/// A store that has **died** (injected [`FaultPlan`] crash or a real
/// I/O failure, see [`Self::health`]) turns every write into a no-op,
/// exactly as if the process were gone; readers of the same path see
/// only what was durable at death.
pub struct DurableStore {
    inner: Mutex<Inner>,
}

/// Compact when at least this much record data accumulated since the
/// last snapshot (tests shrink it via [`DurableStore::with_compact_threshold`]).
const DEFAULT_COMPACT_THRESHOLD: u64 = 1 << 20;

impl DurableStore {
    /// Open (creating if absent) the store at `path`, replaying the
    /// log into a [`RecoveredState`].
    pub fn open(path: impl AsRef<Path>) -> Result<DurableStore, StoreError> {
        Self::open_impl(path.as_ref(), None)
    }

    /// [`Self::open`] with a fault plan armed — the deterministic
    /// crash-injection entry point used by the fault-matrix harness.
    pub fn open_with_faults(
        path: impl AsRef<Path>,
        plan: FaultPlan,
    ) -> Result<DurableStore, StoreError> {
        Self::open_impl(path.as_ref(), Some(plan))
    }

    fn open_impl(path: &Path, plan: Option<FaultPlan>) -> Result<DurableStore, StoreError> {
        let (segment, payloads) = Segment::open(path, plan)?;
        let mut state = RecoveredState::default();
        let mut done: Vec<u64> = Vec::new();
        let mut max_id = 0u64;
        for payload in &payloads {
            apply_record(payload, &mut state, &mut done, &mut max_id)?;
        }
        state.checkpoints.retain(|c| !done.contains(&c.id));
        state.checkpoints.sort_by_key(|c| c.id);
        state.tenants.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(DurableStore {
            inner: Mutex::new(Inner {
                segment,
                state,
                bytes_since_compact: 0,
                compact_threshold: DEFAULT_COMPACT_THRESHOLD,
                next_query_id: max_id + 1,
            }),
        })
    }

    /// Lower (or raise) the automatic compaction threshold, in bytes
    /// of appended records. Builder-style, before sharing the store.
    pub fn with_compact_threshold(self, bytes: u64) -> Self {
        self.lock().compact_threshold = bytes.max(1);
        self
    }

    /// Every record is self-contained and the state is re-derivable
    /// from the log, so a poisoned lock (a panicking query thread mid-
    /// append) is recovered, not propagated.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn path(&self) -> PathBuf {
        self.lock().segment.path().to_path_buf()
    }

    /// Liveness: `Alive`, dead by injected fault, or dead by I/O error.
    pub fn health(&self) -> StoreHealth {
        self.lock().segment.health()
    }

    pub fn is_dead(&self) -> bool {
        self.lock().segment.is_dead()
    }

    /// Bytes of valid log on disk.
    pub fn len_bytes(&self) -> u64 {
        self.lock().segment.len_bytes()
    }

    // ------------------------------------------------------- recovery

    /// The durable Task Cache as of the last replay/append.
    pub fn cache_snapshot(&self) -> HashMap<u64, TraceEntry> {
        self.lock().state.cache.clone()
    }

    /// Spec keys with durable paid answers, sorted.
    pub fn cache_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.lock().state.cache.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// The merged learned statistics.
    pub fn stats_snapshot(&self) -> StatisticsStore {
        self.lock().state.stats.clone()
    }

    /// Checkpoints not yet retired by a `QueryDone`, in id order —
    /// the queries a restarted service should resume.
    pub fn live_checkpoints(&self) -> Vec<QueryCheckpoint> {
        self.lock().state.checkpoints.clone()
    }

    /// Persisted tenant registrations, sorted by name.
    pub fn tenants_snapshot(&self) -> Vec<TenantRecord> {
        self.lock().state.tenants.clone()
    }

    /// The next unused checkpoint id.
    pub fn next_query_id(&self) -> u64 {
        self.lock().next_query_id
    }

    // -------------------------------------------------------- appends

    /// Journal one paid round's answers for `key`. Write-ahead: on a
    /// healthy store the entry is durable when this returns.
    pub fn append_cache_entry(&self, key: u64, entry: &TraceEntry) {
        let mut e = Enc::new();
        e.u8(KIND_CACHE_ENTRY);
        e.u64(key);
        enc_trace_entry(&mut e, entry);
        let mut inner = self.lock();
        inner
            .state
            .cache
            .entry(key)
            .or_insert_with(|| entry.clone());
        Self::append_and_maybe_compact(&mut inner, e.into_bytes());
    }

    /// Journal a learning delta (see [`StatisticsStore::diff`]).
    pub fn append_stats_delta(&self, delta: &StatisticsStore) {
        if delta.is_empty() {
            return;
        }
        let mut e = Enc::new();
        e.u8(KIND_STATS_DELTA);
        enc_stats(&mut e, delta);
        let mut inner = self.lock();
        inner.state.stats.merge(delta);
        Self::append_and_maybe_compact(&mut inner, e.into_bytes());
    }

    /// Journal a newly admitted query; returns its checkpoint id.
    pub fn append_checkpoint(&self, tenant: &str, sql: &str, budget: Option<f64>) -> u64 {
        let mut inner = self.lock();
        let id = inner.next_query_id;
        inner.next_query_id += 1;
        let cp = QueryCheckpoint {
            id,
            tenant: tenant.to_owned(),
            sql: sql.to_owned(),
            budget,
            rounds_consumed: 0,
        };
        let bytes = enc_checkpoint(&cp);
        inner.state.checkpoints.push(cp);
        Self::append_and_maybe_compact(&mut inner, bytes);
        id
    }

    /// Journal a query's cumulative consumed HIT rounds (monotone;
    /// recovery keeps the max seen).
    pub fn append_rounds(&self, id: u64, rounds_consumed: u64) {
        let mut e = Enc::new();
        e.u8(KIND_ROUNDS);
        e.u64(id);
        e.u64(rounds_consumed);
        let mut inner = self.lock();
        if let Some(cp) = inner.state.checkpoints.iter_mut().find(|c| c.id == id) {
            cp.rounds_consumed = cp.rounds_consumed.max(rounds_consumed);
        }
        Self::append_and_maybe_compact(&mut inner, e.into_bytes());
    }

    /// Retire a checkpoint: the query finished (either way) and must
    /// not be resumed by a future recovery.
    pub fn append_query_done(&self, id: u64) {
        let mut e = Enc::new();
        e.u8(KIND_QUERY_DONE);
        e.u64(id);
        let mut inner = self.lock();
        inner.state.checkpoints.retain(|c| c.id != id);
        Self::append_and_maybe_compact(&mut inner, e.into_bytes());
    }

    /// Journal a tenant registration / spend update (latest wins).
    pub fn append_tenant(&self, name: &str, budget: Option<f64>, spent: f64) {
        let rec = TenantRecord {
            name: name.to_owned(),
            budget,
            spent,
        };
        let bytes = enc_tenant(&rec);
        let mut inner = self.lock();
        match inner.state.tenants.iter_mut().find(|t| t.name == rec.name) {
            Some(t) => *t = rec,
            None => {
                inner.state.tenants.push(rec);
                inner.state.tenants.sort_by(|a, b| a.name.cmp(&b.name));
            }
        }
        Self::append_and_maybe_compact(&mut inner, bytes);
    }

    /// Force a compaction now (normally automatic past the threshold).
    pub fn compact_now(&self) {
        let mut inner = self.lock();
        Self::compact(&mut inner);
    }

    fn append_and_maybe_compact(inner: &mut Inner, payload: Vec<u8>) {
        inner.segment.append(&payload);
        inner.bytes_since_compact += payload.len() as u64 + 8;
        if inner.bytes_since_compact >= inner.compact_threshold {
            Self::compact(inner);
        }
    }

    /// Rewrite the log as one snapshot of the folded state, in sorted
    /// order (equal state ⇒ equal bytes).
    fn compact(inner: &mut Inner) {
        let mut payloads: Vec<Vec<u8>> = Vec::new();
        let mut keys: Vec<u64> = inner.state.cache.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let mut e = Enc::new();
            e.u8(KIND_CACHE_ENTRY);
            e.u64(key);
            enc_trace_entry(&mut e, &inner.state.cache[&key]);
            payloads.push(e.into_bytes());
        }
        if !inner.state.stats.is_empty() {
            let mut e = Enc::new();
            e.u8(KIND_STATS_DELTA);
            enc_stats(&mut e, &inner.state.stats);
            payloads.push(e.into_bytes());
        }
        for cp in &inner.state.checkpoints {
            payloads.push(enc_checkpoint(cp));
        }
        for t in &inner.state.tenants {
            payloads.push(enc_tenant(t));
        }
        inner.segment.rewrite(&payloads);
        inner.bytes_since_compact = 0;
    }
}

fn enc_checkpoint(cp: &QueryCheckpoint) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(KIND_CHECKPOINT);
    e.u64(cp.id);
    e.str(&cp.tenant);
    e.str(&cp.sql);
    e.opt_f64(cp.budget);
    e.u64(cp.rounds_consumed);
    e.into_bytes()
}

fn enc_tenant(t: &TenantRecord) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(KIND_TENANT);
    e.str(&t.name);
    e.opt_f64(t.budget);
    e.f64(t.spent);
    e.into_bytes()
}

fn apply_record(
    payload: &[u8],
    state: &mut RecoveredState,
    done: &mut Vec<u64>,
    max_id: &mut u64,
) -> Result<(), StoreError> {
    let mut d = Dec::new(payload);
    match d.u8()? {
        KIND_CACHE_ENTRY => {
            let key = d.u64()?;
            let entry = dec_trace_entry(&mut d)?;
            state.cache.entry(key).or_insert(entry);
        }
        KIND_STATS_DELTA => {
            let delta = dec_stats(&mut d)?;
            state.stats.merge(&delta);
        }
        KIND_CHECKPOINT => {
            let cp = QueryCheckpoint {
                id: d.u64()?,
                tenant: d.str()?,
                sql: d.str()?,
                budget: d.opt_f64()?,
                rounds_consumed: d.u64()?,
            };
            *max_id = (*max_id).max(cp.id);
            state.checkpoints.push(cp);
        }
        KIND_ROUNDS => {
            let id = d.u64()?;
            let rounds = d.u64()?;
            if let Some(cp) = state.checkpoints.iter_mut().find(|c| c.id == id) {
                cp.rounds_consumed = cp.rounds_consumed.max(rounds);
            }
        }
        KIND_QUERY_DONE => {
            let id = d.u64()?;
            done.push(id);
            *max_id = (*max_id).max(id);
        }
        KIND_TENANT => {
            let rec = TenantRecord {
                name: d.str()?,
                budget: d.opt_f64()?,
                spent: d.f64()?,
            };
            match state.tenants.iter_mut().find(|t| t.name == rec.name) {
                Some(t) => *t = rec,
                None => state.tenants.push(rec),
            }
        }
        kind => return Err(StoreError::corrupt(format!("unknown record kind {kind}"))),
    }
    d.finish()
}

/// Convenience alias used by the wiring layers.
pub type SharedStore = Arc<DurableStore>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::TraceAssignment;
    use crate::store::fault::CrashPoint;
    use crate::store::testutil::tmp_store_path;
    use qurk_crowd::{Answer, WorkerId};

    fn entry(tag: u64) -> TraceEntry {
        TraceEntry {
            question_count: 1,
            assignments: vec![TraceAssignment {
                worker: WorkerId(tag as usize),
                answers: vec![Answer::Bool(tag.is_multiple_of(2))],
                accept_delay_secs: 1.0,
                submit_delay_secs: 2.0,
            }],
        }
    }

    #[test]
    fn full_state_survives_reopen() {
        let path = tmp_store_path("durable-roundtrip");
        let store = DurableStore::open(&path).unwrap();
        store.append_cache_entry(11, &entry(1));
        store.append_cache_entry(22, &entry(2));
        let mut delta = StatisticsStore::new();
        delta.record_filter("isTall", 10, 4);
        store.append_stats_delta(&delta);
        let q1 = store.append_checkpoint("alice", "SELECT 1", Some(2.0));
        let q2 = store.append_checkpoint("bob", "SELECT 2", None);
        store.append_rounds(q1, 3);
        store.append_query_done(q2);
        store.append_tenant("alice", Some(5.0), 1.25);
        store.append_tenant("alice", Some(5.0), 1.75); // latest wins
        drop(store);

        let store = DurableStore::open(&path).unwrap();
        assert_eq!(store.cache_keys(), vec![11, 22]);
        assert_eq!(store.cache_snapshot()[&11], entry(1));
        assert_eq!(
            store.stats_snapshot().filter_selectivity("isTall"),
            Some(0.4)
        );
        let live = store.live_checkpoints();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].id, q1);
        assert_eq!(live[0].tenant, "alice");
        assert_eq!(live[0].rounds_consumed, 3);
        assert_eq!(live[0].budget, Some(2.0));
        let tenants = store.tenants_snapshot();
        assert_eq!(tenants.len(), 1);
        assert_eq!(tenants[0].spent, 1.75);
        assert!(store.next_query_id() > q2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_preserves_state_and_shrinks_the_log() {
        let path = tmp_store_path("durable-compact");
        let store = DurableStore::open(&path).unwrap().with_compact_threshold(1);
        let q = store.append_checkpoint("alice", "SELECT 1", None);
        store.append_query_done(q); // threshold 1: every append compacts
        for k in 0..20 {
            store.append_cache_entry(k, &entry(k));
            store.append_cache_entry(k, &entry(k + 100)); // duplicate: first wins
        }
        let compacted_len = store.len_bytes();
        drop(store);
        let store = DurableStore::open(&path).unwrap();
        assert_eq!(store.len_bytes(), compacted_len);
        assert_eq!(store.cache_keys().len(), 20);
        assert_eq!(store.cache_snapshot()[&3], entry(3)); // not entry(103)
        assert!(store.live_checkpoints().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_output_is_deterministic_bytes() {
        let p1 = tmp_store_path("durable-det1");
        let p2 = tmp_store_path("durable-det2");
        for p in [&p1, &p2] {
            let store = DurableStore::open(p).unwrap();
            // Insert in different orders per path.
            let keys: Vec<u64> = if p == &p1 {
                (0..12).collect()
            } else {
                (0..12).rev().collect()
            };
            for k in keys {
                store.append_cache_entry(k, &entry(k));
            }
            store.append_tenant("bob", None, 0.5);
            store.append_tenant("alice", Some(1.0), 0.25);
            store.compact_now();
        }
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        std::fs::remove_file(&p1).unwrap();
        std::fs::remove_file(&p2).unwrap();
    }

    #[test]
    fn a_dead_store_loses_only_unflushed_tail() {
        let path = tmp_store_path("durable-dead");
        let plan = FaultPlan::at(CrashPoint::AppendDone).on_occurrence(2);
        let store = DurableStore::open_with_faults(&path, plan).unwrap();
        store.append_cache_entry(1, &entry(1));
        store.append_cache_entry(2, &entry(2)); // dies right after this flush
        assert!(store.is_dead());
        assert_eq!(
            store.health(),
            StoreHealth::FaultInjected(CrashPoint::AppendDone)
        );
        store.append_cache_entry(3, &entry(3)); // lost
        drop(store);
        let store = DurableStore::open(&path).unwrap();
        assert_eq!(store.cache_keys(), vec![1, 2]);
        std::fs::remove_file(&path).unwrap();
    }
}
