//! Adaptive mechanisms sketched in the paper's §6 (future work),
//! implemented here as extensions:
//!
//! * [`AdaptiveVotes`] — "algorithms for adaptively deciding whether
//!   another answer is needed" (§2.1): instead of a fixed 5
//!   assignments, collect votes in rounds and stop early once one
//!   answer has a decisive margin.
//! * [`BatchSizeSearch`] — "such an algorithm performs a binary search
//!   on the batch size, reducing the size when workers refuse to do
//!   work or accuracy drops, and increasing the size when no noticeable
//!   change to latency and accuracy is observed" (§6).

use qurk_crowd::question::{HitKind, Question};
use qurk_crowd::{HitSpec, ItemId};

use crate::backend::CrowdBackend;
use crate::error::Result;
use crate::ops::common::{Round, DEFAULT_ROUND_LIMIT_SECS};

/// Early-stopping vote collection for binary questions.
#[derive(Debug, Clone)]
pub struct AdaptiveVotes {
    /// Minimum votes before any decision.
    pub min_votes: u32,
    /// Hard ceiling on votes per item.
    pub max_votes: u32,
    /// Required lead (|yes − no|) to stop early.
    pub margin: u32,
}

impl Default for AdaptiveVotes {
    fn default() -> Self {
        AdaptiveVotes {
            min_votes: 3,
            max_votes: 9,
            margin: 2,
        }
    }
}

/// Result of an adaptive filter run.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    pub decisions: Vec<bool>,
    /// Votes actually spent per item.
    pub votes_used: Vec<u32>,
    pub hits_posted: usize,
}

impl AdaptiveVotes {
    /// Evaluate `predicate` over `items`, requesting votes in rounds
    /// and dropping items once decided. Compared to a fixed 5-vote
    /// scheme this spends fewer assignments on easy items and more on
    /// contested ones.
    ///
    /// **Drive this against a non-caching backend.** Rounds after the
    /// first post byte-identical specs for still-contested items, so a
    /// [`crate::backend::CachingBackend`] would replay the previous
    /// round's answers instead of collecting fresh votes — the margin
    /// never grows and the same workers' votes are counted repeatedly.
    pub fn run_filter<B: CrowdBackend + ?Sized>(
        &self,
        backend: &mut B,
        predicate: &str,
        items: &[ItemId],
    ) -> Result<AdaptiveOutcome> {
        assert!(self.min_votes >= 1 && self.max_votes >= self.min_votes);
        let n = items.len();
        let mut yes = vec![0u32; n];
        let mut no = vec![0u32; n];
        let mut open: Vec<usize> = (0..n).collect();
        let mut hits_posted = 0usize;

        let mut round_votes = self.min_votes;
        while !open.is_empty() {
            let specs: Vec<HitSpec> = open
                .iter()
                .map(|&i| {
                    HitSpec::new(
                        vec![Question::Filter {
                            item: items[i],
                            predicate: predicate.to_owned(),
                        }],
                        HitKind::Filter,
                    )
                })
                .collect();
            hits_posted += specs.len();
            let round = Round::post(backend, specs, Some(round_votes));
            let group = round.group();
            let by_hit = round.complete(backend, DEFAULT_ROUND_LIMIT_SECS)?;
            for (k, hit_id) in backend.group_hits(group).into_iter().enumerate() {
                let i = open[k];
                let Some(assignments) = by_hit.get(&hit_id) else {
                    continue;
                };
                for a in assignments {
                    if let Some(b) = a.answers[0].as_bool() {
                        if b {
                            yes[i] += 1;
                        } else {
                            no[i] += 1;
                        }
                    }
                }
            }
            open.retain(|&i| {
                let total = yes[i] + no[i];
                let lead = yes[i].abs_diff(no[i]);
                total < self.max_votes && lead < self.margin
            });
            round_votes = 2; // subsequent rounds add votes two at a time
        }

        Ok(AdaptiveOutcome {
            decisions: (0..n).map(|i| yes[i] > no[i]).collect(),
            votes_used: (0..n).map(|i| yes[i] + no[i]).collect(),
            hits_posted,
        })
    }
}

/// One probe of a candidate batch size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeResult {
    /// Did the probe batch complete within the latency target?
    pub completed: bool,
    /// Observed accuracy on gold-standard questions, if measured.
    pub accuracy: Option<f64>,
}

/// Binary search over batch sizes (§6).
#[derive(Debug, Clone)]
pub struct BatchSizeSearch {
    pub min_size: usize,
    pub max_size: usize,
    /// Accuracy floor below which a batch size is rejected.
    pub accuracy_floor: f64,
}

impl Default for BatchSizeSearch {
    fn default() -> Self {
        BatchSizeSearch {
            min_size: 1,
            max_size: 32,
            accuracy_floor: 0.75,
        }
    }
}

impl BatchSizeSearch {
    /// Find the largest acceptable batch size, probing with the given
    /// closure (which posts a probe group and reports completion /
    /// accuracy). Classic binary search: grow on success, shrink on
    /// refusal or accuracy drop.
    pub fn search(&self, mut probe: impl FnMut(usize) -> ProbeResult) -> usize {
        let mut lo = self.min_size;
        let mut hi = self.max_size;
        let mut best = self.min_size;
        while lo <= hi {
            let mid = lo + (hi - lo) / 2;
            let result = probe(mid);
            let ok = result.completed && result.accuracy.is_none_or(|a| a >= self.accuracy_floor);
            if ok {
                best = mid;
                lo = mid + 1;
            } else {
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
        }
        best
    }

    /// Probe a real marketplace with comparison groups of the given
    /// batch size and a virtual-time target (used by the ablation
    /// bench; §4.2.2's stalled group-size-20 experiment is exactly a
    /// failed probe).
    pub fn probe_compare_batch<B: CrowdBackend + ?Sized>(
        backend: &mut B,
        items: &[ItemId],
        dimension: &str,
        group_size: usize,
        target_secs: f64,
    ) -> ProbeResult {
        let group: Vec<ItemId> = items.iter().take(group_size).copied().collect();
        if group.len() < 2 {
            return ProbeResult {
                completed: true,
                accuracy: None,
            };
        }
        let spec = HitSpec::new(
            vec![Question::CompareGroup {
                items: group,
                dimension: dimension.to_owned(),
            }],
            HitKind::SortCompare,
        );
        let round = Round::post(backend, vec![spec], None);
        // Run out the probe window; judge THIS round only — earlier
        // stalled probes (or unrelated groups) may legitimately remain
        // outstanding on the same marketplace.
        let (completed, _) = round.try_complete(backend, target_secs);
        ProbeResult {
            completed,
            accuracy: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurk_crowd::truth::{DimensionParams, PredicateTruth};
    use qurk_crowd::{CrowdConfig, GroundTruth, Marketplace};

    fn market(n: usize, err: f64) -> (Marketplace, Vec<ItemId>) {
        let mut gt = GroundTruth::new();
        gt.define_dimension("d", DimensionParams::crisp(0.02));
        let items = gt.new_items(n);
        for (i, &it) in items.iter().enumerate() {
            gt.set_predicate(
                it,
                "p",
                PredicateTruth {
                    value: i % 2 == 0,
                    error_rate: err,
                },
            );
            gt.set_score(it, "d", i as f64);
        }
        (
            Marketplace::new(&CrowdConfig::default().honest(), gt),
            items,
        )
    }

    #[test]
    fn adaptive_votes_decide_correctly() {
        let (mut m, items) = market(20, 0.03);
        let out = AdaptiveVotes::default()
            .run_filter(&mut m, "p", &items)
            .unwrap();
        let correct = out
            .decisions
            .iter()
            .enumerate()
            .filter(|(i, &d)| d == (i % 2 == 0))
            .count();
        assert!(correct >= 19, "correct={correct}/20");
    }

    #[test]
    fn adaptive_votes_spend_less_on_easy_items() {
        let (mut m, items) = market(20, 0.02);
        let adaptive = AdaptiveVotes::default();
        let out = adaptive.run_filter(&mut m, "p", &items).unwrap();
        let avg: f64 = out.votes_used.iter().sum::<u32>() as f64 / out.votes_used.len() as f64;
        // Crisp items should mostly stop at the 3-vote minimum,
        // beating the fixed 5-vote default.
        assert!(avg < 5.0, "avg votes={avg}");
        assert!(out.votes_used.iter().all(|&v| v <= adaptive.max_votes));
    }

    #[test]
    fn contested_items_get_more_votes() {
        let (mut m, items) = market(12, 0.45); // extremely noisy
        let adaptive = AdaptiveVotes {
            min_votes: 3,
            max_votes: 11,
            margin: 4,
        };
        let out = adaptive.run_filter(&mut m, "p", &items).unwrap();
        let avg: f64 = out.votes_used.iter().sum::<u32>() as f64 / out.votes_used.len() as f64;
        assert!(avg > 5.0, "avg votes={avg}");
    }

    #[test]
    fn batch_search_finds_threshold() {
        // Synthetic probe: accepts up to 12.
        let search = BatchSizeSearch {
            min_size: 1,
            max_size: 32,
            accuracy_floor: 0.75,
        };
        let best = search.search(|b| ProbeResult {
            completed: b <= 12,
            accuracy: None,
        });
        assert_eq!(best, 12);
    }

    #[test]
    fn batch_search_respects_accuracy_floor() {
        let search = BatchSizeSearch::default();
        // Completion always fine, accuracy degrades with size.
        let best = search.search(|b| ProbeResult {
            completed: true,
            accuracy: Some(1.0 - 0.03 * b as f64),
        });
        // 1 - 0.03b >= 0.75 -> b <= 8.
        assert_eq!(best, 8);
    }

    #[test]
    fn probe_real_market_refuses_huge_groups() {
        let (mut m, items) = market(25, 0.03);
        let small = BatchSizeSearch::probe_compare_batch(&mut m, &items, "d", 5, 4.0 * 3600.0);
        assert!(small.completed);
        let (mut m2, items2) = market(25, 0.03);
        let large = BatchSizeSearch::probe_compare_batch(&mut m2, &items2, "d", 20, 4.0 * 3600.0);
        assert!(!large.completed, "20-item compare groups should stall");
    }
}
