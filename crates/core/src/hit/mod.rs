//! HIT generation machinery (§2.5–§2.6).
//!
//! * [`compiler`] — renders task templates plus tuples into the HTML
//!   forms Qurk posted to MTurk (Figure 2 / Figure 5 interfaces).
//! * [`batch`] — the two batching transformations: *merging* (one HIT,
//!   many tuples) and *combining* (one HIT, many tasks per tuple).
//!
//! The Task Cache of Figure 1 now lives at the backend boundary: see
//! [`crate::backend::CachingBackend`].

pub mod batch;
pub mod compiler;

pub use batch::{combine_questions, merge_into_hits};
pub use compiler::HitCompiler;
