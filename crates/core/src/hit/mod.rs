//! HIT generation machinery (§2.5–§2.6).
//!
//! * [`compiler`] — renders task templates plus tuples into the HTML
//!   forms Qurk posted to MTurk (Figure 2 / Figure 5 interfaces).
//! * [`batch`] — the two batching transformations: *merging* (one HIT,
//!   many tuples) and *combining* (one HIT, many tasks per tuple).
//! * [`cache`] — the Task Cache of Figure 1: identical questions are
//!   answered once and reused.

pub mod batch;
pub mod cache;
pub mod compiler;

pub use batch::{combine_questions, merge_into_hits};
pub use cache::TaskCache;
pub use compiler::HitCompiler;
