//! Batching transformations (§2.6).
//!
//! "Our system automatically applies two types of batching to tasks:
//! **merging**, where we generate a single HIT that applies a given
//! task (operator) to multiple tuples, and **combining**, where we
//! generate a single HIT that applies several tasks (generally only
//! filters and generative tasks) to the same tuple."

use qurk_crowd::question::{HitKind, Question};
use qurk_crowd::HitSpec;

/// *Merging*: chunk per-tuple questions into HITs of `batch_size`
/// questions each.
///
/// # Panics
/// Panics if `batch_size == 0`.
pub fn merge_into_hits(questions: Vec<Question>, batch_size: usize, kind: HitKind) -> Vec<HitSpec> {
    assert!(batch_size > 0, "batch size must be positive");
    questions
        .chunks(batch_size)
        .map(|chunk| HitSpec::new(chunk.to_vec(), kind))
        .collect()
}

/// *Combining*: interleave several per-tuple question streams (one per
/// task) so each tuple's questions land in the same HIT, then merge by
/// tuple count. `per_task[t][i]` is task `t`'s question for tuple `i`.
///
/// # Panics
/// Panics if the streams have different lengths or `tuples_per_hit == 0`.
pub fn combine_questions(
    per_task: Vec<Vec<Question>>,
    tuples_per_hit: usize,
    kind: HitKind,
) -> Vec<HitSpec> {
    assert!(tuples_per_hit > 0, "tuples_per_hit must be positive");
    let Some(first) = per_task.first() else {
        return Vec::new();
    };
    let n = first.len();
    assert!(
        per_task.iter().all(|v| v.len() == n),
        "all task streams must cover the same tuples"
    );
    let mut hits = Vec::with_capacity(n.div_ceil(tuples_per_hit));
    let mut current: Vec<Question> = Vec::new();
    for i in 0..n {
        for stream in &per_task {
            current.push(stream[i].clone());
        }
        if (i + 1) % tuples_per_hit == 0 {
            hits.push(HitSpec::new(std::mem::take(&mut current), kind));
        }
    }
    if !current.is_empty() {
        hits.push(HitSpec::new(current, kind));
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurk_crowd::ItemId;

    fn filt(i: u64) -> Question {
        Question::Filter {
            item: ItemId(i),
            predicate: "p".into(),
        }
    }

    fn feat(i: u64, f: &str) -> Question {
        Question::Feature {
            item: ItemId(i),
            feature: f.into(),
            num_options: 2,
        }
    }

    #[test]
    fn merging_chunks_evenly() {
        let hits = merge_into_hits((0..10).map(filt).collect(), 5, HitKind::Filter);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| h.questions.len() == 5));
    }

    #[test]
    fn merging_keeps_remainder() {
        let hits = merge_into_hits((0..7).map(filt).collect(), 3, HitKind::Filter);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[2].questions.len(), 1);
    }

    #[test]
    fn merging_empty_is_empty() {
        assert!(merge_into_hits(vec![], 4, HitKind::Filter).is_empty());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn merging_rejects_zero_batch() {
        merge_into_hits(vec![filt(0)], 0, HitKind::Filter);
    }

    #[test]
    fn combining_groups_per_tuple() {
        // 3 features of the same 4 tuples, 2 tuples per HIT -> 2 HITs
        // of 6 questions each, tuple-contiguous.
        let streams = vec![
            (0..4).map(|i| feat(i, "gender")).collect(),
            (0..4).map(|i| feat(i, "hair")).collect(),
            (0..4).map(|i| feat(i, "skin")).collect(),
        ];
        let hits = combine_questions(streams, 2, HitKind::FeatureCombined);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].questions.len(), 6);
        // First three questions of the first HIT are tuple 0's.
        for q in &hits[0].questions[..3] {
            assert_eq!(q.items(), vec![ItemId(0)]);
        }
    }

    #[test]
    fn combining_with_remainder() {
        let streams = vec![(0..3).map(|i| feat(i, "g")).collect::<Vec<_>>()];
        let hits = combine_questions(streams, 2, HitKind::FeatureCombined);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[1].questions.len(), 1);
    }

    #[test]
    #[should_panic(expected = "same tuples")]
    fn combining_rejects_ragged_streams() {
        let streams = vec![vec![feat(0, "a")], vec![feat(0, "b"), feat(1, "b")]];
        combine_questions(streams, 1, HitKind::FeatureCombined);
    }

    #[test]
    fn combining_empty() {
        assert!(combine_questions(vec![], 2, HitKind::Filter).is_empty());
    }
}
