//! The Task Cache (Figure 1).
//!
//! "These tasks are sent to the Task Manager … which first checks to
//! see if the HIT is cached and if not generates HTML for the HIT and
//! dispatches it to the crowd. As answers come back, they are cached."
//!
//! The cache key is the question's full content; the value is the
//! *combined* answer for that question, so re-running a query (or a
//! later operator re-asking the same question) costs zero HITs.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use qurk_crowd::question::Question;
use qurk_crowd::Answer;

/// Content-addressed combined-answer cache.
#[derive(Debug, Default, Clone)]
pub struct TaskCache {
    entries: HashMap<u64, Answer>,
    hits: u64,
    misses: u64,
}

fn key_of(q: &Question) -> u64 {
    // Question doesn't implement Hash (contains f64-free variants but
    // also Vec fields); the debug form is stable, content-complete and
    // cheap at our scale.
    let mut h = DefaultHasher::new();
    format!("{q:?}").hash(&mut h);
    h.finish()
}

impl TaskCache {
    pub fn new() -> Self {
        TaskCache::default()
    }

    /// Look up a combined answer. Tracks hit/miss statistics.
    pub fn get(&mut self, q: &Question) -> Option<Answer> {
        match self.entries.get(&key_of(q)) {
            Some(a) => {
                self.hits += 1;
                Some(a.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a combined answer.
    pub fn put(&mut self, q: &Question, answer: Answer) {
        self.entries.insert(key_of(q), answer);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    pub fn clear(&mut self) {
        self.entries.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurk_crowd::ItemId;

    fn q(i: u64) -> Question {
        Question::Filter {
            item: ItemId(i),
            predicate: "p".into(),
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut c = TaskCache::new();
        assert_eq!(c.get(&q(1)), None);
        c.put(&q(1), Answer::Bool(true));
        assert_eq!(c.get(&q(1)), Some(Answer::Bool(true)));
        assert_eq!(c.stats(), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn distinct_questions_distinct_entries() {
        let mut c = TaskCache::new();
        c.put(&q(1), Answer::Bool(true));
        c.put(&q(2), Answer::Bool(false));
        assert_eq!(c.get(&q(2)), Some(Answer::Bool(false)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn same_item_different_predicate_is_different() {
        let mut c = TaskCache::new();
        c.put(&q(1), Answer::Bool(true));
        let other = Question::Filter {
            item: ItemId(1),
            predicate: "different".into(),
        };
        assert_eq!(c.get(&other), None);
    }

    #[test]
    fn clear_resets() {
        let mut c = TaskCache::new();
        c.put(&q(1), Answer::Bool(true));
        c.get(&q(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), (0, 0));
    }
}
