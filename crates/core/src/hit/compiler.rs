//! The HIT HTML compiler.
//!
//! Qurk compiled every task into an HTML form posted to MTurk (§2.6's
//! "Task Cache/Model/HIT Compiler"). The simulated marketplace answers
//! structured [`Question`](qurk_crowd::question::Question)s instead,
//! but the compiler is retained faithfully: batching semantics
//! (concatenated forms), the Figure 2 join interfaces, and the Figure 5
//! sort interfaces are all rendered, and the HTML is what a real MTurk
//! backend would post.

use crate::lang::ast::{Template, TupleVar};
use crate::schema::Schema;
use crate::task::{TaskDef, TaskType};
use crate::tuple::Tuple;
use crate::value::Value;

/// Renders task templates + tuples into HIT HTML.
#[derive(Debug, Default, Clone)]
pub struct HitCompiler;

impl HitCompiler {
    pub fn new() -> Self {
        HitCompiler
    }

    fn render_template(
        template: &Template,
        schema: &Schema,
        tuple: &Tuple,
        tuple2: Option<(&Schema, &Tuple)>,
    ) -> String {
        template.render(|var, field| {
            let v: Option<&Value> = match (var, tuple2) {
                (TupleVar::Tuple | TupleVar::Tuple1, _) => tuple.field(schema, field),
                (TupleVar::Tuple2, Some((s2, t2))) => t2.field(s2, field),
                (TupleVar::Tuple2, None) => None,
            };
            v.map(Value::render).unwrap_or_else(|| "?".to_owned())
        })
    }

    /// Filter form (§2.1): prompt + Yes/No buttons, one block per
    /// batched tuple.
    pub fn compile_filter(&self, task: &TaskDef, schema: &Schema, tuples: &[&Tuple]) -> String {
        assert_eq!(task.ty, TaskType::Filter, "not a filter task");
        let prompt = task.prompt.as_ref().expect("validated filter has prompt");
        let mut html = String::from("<form class='qurk filter'>\n");
        for (i, t) in tuples.iter().enumerate() {
            let body = Self::render_template(prompt, schema, t, None);
            html.push_str(&format!(
                "<div class='q' id='q{i}'>{body}\
                 <br><input type='radio' name='a{i}' value='yes'>{}\
                 <input type='radio' name='a{i}' value='no'>{}</div>\n",
                task.yes_text, task.no_text
            ));
        }
        html.push_str("<input type='submit'></form>");
        html
    }

    /// Generative form (§2.2): prompt + one input per field.
    pub fn compile_generative(&self, task: &TaskDef, schema: &Schema, tuples: &[&Tuple]) -> String {
        assert_eq!(task.ty, TaskType::Generative, "not a generative task");
        let prompt = task
            .prompt
            .as_ref()
            .expect("validated generative has prompt");
        let mut html = String::from("<form class='qurk generative'>\n");
        for (i, t) in tuples.iter().enumerate() {
            let body = Self::render_template(prompt, schema, t, None);
            html.push_str(&format!("<div class='q' id='q{i}'>{body}"));
            for f in &task.fields {
                match &f.response {
                    crate::lang::ast::ResponseSpec::Text { label } => {
                        html.push_str(&format!(
                            "<br>{label}: <input type='text' name='{}_{i}'>",
                            f.name
                        ));
                    }
                    crate::lang::ast::ResponseSpec::Radio { label, options } => {
                        html.push_str(&format!("<br>{label}: "));
                        for o in options {
                            let v = match o {
                                crate::lang::ast::ResponseOption::Value(v) => v.as_str(),
                                crate::lang::ast::ResponseOption::Unknown => "UNKNOWN",
                            };
                            html.push_str(&format!(
                                "<input type='radio' name='{}_{i}' value='{v}'>{v} ",
                                f.name
                            ));
                        }
                    }
                }
            }
            html.push_str("</div>\n");
        }
        html.push_str("<input type='submit'></form>");
        html
    }

    /// SimpleJoin / NaiveBatch interface (Figures 2a, 2b): stacked
    /// pairs with Yes/No radios.
    pub fn compile_join_pairs(
        &self,
        task: &TaskDef,
        left_schema: &Schema,
        right_schema: &Schema,
        pairs: &[(&Tuple, &Tuple)],
    ) -> String {
        assert_eq!(task.ty, TaskType::EquiJoin, "not a join task");
        let noun = task.singular_name.as_deref().unwrap_or("item");
        let mut html = String::from("<form class='qurk join'>\n");
        for (i, (l, r)) in pairs.iter().enumerate() {
            let lh = task
                .left_normal
                .as_ref()
                .map(|t| Self::render_template(t, left_schema, l, None))
                .unwrap_or_else(|| "?".into());
            let rh = task
                .right_normal
                .as_ref()
                .map(|t| Self::render_template(t, right_schema, r, Some((right_schema, r))))
                .unwrap_or_else(|| "?".into());
            html.push_str(&format!(
                "<div class='pair' id='p{i}'><table><tr><td>{lh}</td><td>{rh}</td>\
                 <td>Is this the same {noun}?\
                 <input type='radio' name='a{i}' value='yes'>Yes\
                 <input type='radio' name='a{i}' value='no'>No</td></tr></table></div>\n"
            ));
        }
        html.push_str("<input type='submit'></form>");
        html
    }

    /// SmartBatch grid (Figure 2c): two columns of preview images,
    /// click matching pairs, or tick "no matches".
    pub fn compile_join_grid(
        &self,
        task: &TaskDef,
        left_schema: &Schema,
        right_schema: &Schema,
        left: &[&Tuple],
        right: &[&Tuple],
    ) -> String {
        assert_eq!(task.ty, TaskType::EquiJoin, "not a join task");
        let noun = task.plural_name.as_deref().unwrap_or("items");
        let render_col =
            |tpl: Option<&Template>, schema: &Schema, tuples: &[&Tuple], side: &str| {
                let mut s = format!("<div class='col {side}'>");
                for (i, t) in tuples.iter().enumerate() {
                    let body = tpl
                        .map(|tp| Self::render_template(tp, schema, t, Some((schema, t))))
                        .unwrap_or_else(|| "?".into());
                    s.push_str(&format!("<div class='cell' data-idx='{i}'>{body}</div>"));
                }
                s.push_str("</div>");
                s
            };
        let mut html = String::from("<form class='qurk smartjoin'>\n");
        html.push_str(&render_col(
            task.left_preview.as_ref(),
            left_schema,
            left,
            "left",
        ));
        html.push_str(&render_col(
            task.right_preview.as_ref(),
            right_schema,
            right,
            "right",
        ));
        html.push_str(&format!(
            "<div class='controls'>Click pairs of matching {noun}. \
             <label><input type='checkbox' name='nomatch'>No {noun} match</label></div>\n"
        ));
        html.push_str("<input type='submit'></form>");
        html
    }

    /// Comparison sort interface (Figure 5a): order a group of items.
    pub fn compile_compare(&self, task: &TaskDef, schema: &Schema, group: &[&Tuple]) -> String {
        assert_eq!(task.ty, TaskType::Rank, "not a rank task");
        let dim = task.order_dimension.as_deref().unwrap_or("order");
        let plural = task.plural_name.as_deref().unwrap_or("items");
        let least = task.least_name.as_deref().unwrap_or("least");
        let most = task.most_name.as_deref().unwrap_or("most");
        let mut html = format!(
            "<form class='qurk compare'>\n<p>Drag the {plural} in order of {dim}, \
             from {least} to {most}.</p>\n<ol class='sortable'>\n"
        );
        for (i, t) in group.iter().enumerate() {
            let body = task
                .html
                .as_ref()
                .map(|tp| Self::render_template(tp, schema, t, None))
                .unwrap_or_else(|| "?".into());
            html.push_str(&format!("<li data-idx='{i}'>{body}</li>\n"));
        }
        html.push_str("</ol><input type='submit'></form>");
        html
    }

    /// Rating interface (Figure 5b): one item, 7-point Likert scale,
    /// with a strip of random context items.
    pub fn compile_rate(
        &self,
        task: &TaskDef,
        schema: &Schema,
        item: &Tuple,
        context: &[&Tuple],
        scale: u8,
    ) -> String {
        assert_eq!(task.ty, TaskType::Rank, "not a rank task");
        let dim = task.order_dimension.as_deref().unwrap_or("order");
        let singular = task.singular_name.as_deref().unwrap_or("item");
        let least = task.least_name.as_deref().unwrap_or("least");
        let most = task.most_name.as_deref().unwrap_or("most");
        let mut html = String::from("<form class='qurk rate'>\n<div class='context'>");
        for c in context {
            let body = task
                .html
                .as_ref()
                .map(|tp| Self::render_template(tp, schema, c, None))
                .unwrap_or_else(|| "?".into());
            html.push_str(&format!("<span class='ctx'>{body}</span>"));
        }
        html.push_str("</div>\n");
        let body = task
            .html
            .as_ref()
            .map(|tp| Self::render_template(tp, schema, item, None))
            .unwrap_or_else(|| "?".into());
        html.push_str(&format!(
            "<div class='target'>{body}</div>\n<p>Rate this {singular} by {dim} \
             (1 = {least}, {scale} = {most}):</p>\n"
        ));
        for v in 1..=scale {
            html.push_str(&format!(
                "<input type='radio' name='rating' value='{v}'>{v} "
            ));
        }
        html.push_str("\n<input type='submit'></form>");
        html
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse_tasks;
    use crate::schema::ValueType;
    use crate::task::TaskDef;

    fn filter_task() -> TaskDef {
        let asts = parse_tasks(
            r#"TASK isFemale(img) TYPE Filter:
                Prompt: "<img src='%s'> Is the person a woman?", tuple[img]
                YesText: "Yes!"
                NoText: "Nope"
            "#,
        )
        .unwrap();
        TaskDef::from_ast(&asts[0]).unwrap()
    }

    fn rank_task() -> TaskDef {
        let asts = parse_tasks(
            r#"TASK squareSorter(img) TYPE Rank:
                SingularName: "square"
                PluralName: "squares"
                OrderDimensionName: "area"
                LeastName: "smallest"
                MostName: "largest"
                Html: "<img src='%s' class=lgImg>", tuple[img]
            "#,
        )
        .unwrap();
        TaskDef::from_ast(&asts[0]).unwrap()
    }

    fn join_task() -> TaskDef {
        let asts = parse_tasks(
            r#"TASK samePerson(img, img2) TYPE EquiJoin:
                SingularName: "celebrity"
                PluralName: "celebrities"
                LeftPreview: "<img src='%s' class=smImg>", tuple1[img]
                LeftNormal: "<img src='%s' class=lgImg>", tuple1[img]
                RightPreview: "<img src='%s' class=smImg>", tuple2[img]
                RightNormal: "<img src='%s' class=lgImg>", tuple2[img]
            "#,
        )
        .unwrap();
        TaskDef::from_ast(&asts[0]).unwrap()
    }

    fn schema() -> Schema {
        Schema::new(&[("name", ValueType::Text), ("img", ValueType::Item)])
    }

    fn tuple(n: u64) -> Tuple {
        Tuple::new(vec![
            Value::text(format!("n{n}")),
            Value::Item(qurk_crowd::ItemId(n)),
        ])
    }

    #[test]
    fn filter_html_substitutes_and_batches() {
        let c = HitCompiler::new();
        let s = schema();
        let (t1, t2) = (tuple(1), tuple(2));
        let html = c.compile_filter(&filter_task(), &s, &[&t1, &t2]);
        assert!(html.contains("item://1"));
        assert!(html.contains("item://2"));
        assert!(html.contains("Yes!"));
        assert!(html.contains("Nope"));
        assert_eq!(html.matches("class='q'").count(), 2);
    }

    #[test]
    fn join_pair_html_renders_both_sides() {
        let c = HitCompiler::new();
        let s = schema();
        let (l, r) = (tuple(1), tuple(9));
        let html = c.compile_join_pairs(&join_task(), &s, &s, &[(&l, &r)]);
        assert!(html.contains("item://1"));
        assert!(html.contains("item://9"));
        assert!(html.contains("same celebrity"));
    }

    #[test]
    fn smart_grid_has_columns_and_no_match_box() {
        let c = HitCompiler::new();
        let s = schema();
        let l1 = tuple(1);
        let l2 = tuple(2);
        let r1 = tuple(3);
        let html = c.compile_join_grid(&join_task(), &s, &s, &[&l1, &l2], &[&r1]);
        assert!(html.contains("class='col left'"));
        assert!(html.contains("class='col right'"));
        assert!(html.contains("nomatch"));
        assert_eq!(html.matches("class='cell'").count(), 3);
    }

    #[test]
    fn compare_html_lists_group() {
        let c = HitCompiler::new();
        let s = schema();
        let ts: Vec<Tuple> = (0..5).map(tuple).collect();
        let refs: Vec<&Tuple> = ts.iter().collect();
        let html = c.compile_compare(&rank_task(), &s, &refs);
        assert!(html.contains("order of area"));
        assert!(html.contains("from smallest to largest"));
        assert_eq!(html.matches("<li").count(), 5);
    }

    #[test]
    fn rate_html_has_likert_and_context() {
        let c = HitCompiler::new();
        let s = schema();
        let target = tuple(0);
        let ctx: Vec<Tuple> = (1..11).map(tuple).collect();
        let refs: Vec<&Tuple> = ctx.iter().collect();
        let html = c.compile_rate(&rank_task(), &s, &target, &refs, 7);
        assert_eq!(html.matches("type='radio'").count(), 7);
        assert_eq!(html.matches("class='ctx'").count(), 10);
        assert!(html.contains("1 = smallest, 7 = largest"));
    }

    #[test]
    #[should_panic(expected = "not a filter task")]
    fn type_mismatch_panics() {
        let c = HitCompiler::new();
        let s = schema();
        let t = tuple(0);
        c.compile_filter(&rank_task(), &s, &[&t]);
    }
}
