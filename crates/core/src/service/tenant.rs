//! The shared marketplace and the per-query backends that feed it.
//!
//! One [`SharedMarket`] wraps the real backend (behind the session
//! cache layer, a [`CachingBackend`]) in a mutex and is shared by
//! every tenant's query. Each running query talks to it through its
//! own [`TenantBackend`], which
//!
//! * **stages** posts locally during the parallel machine phase —
//!   between yields, query threads run concurrently, so posts buffer
//!   under local group ids ([`StagedPost`]) and travel with the
//!   [`SchedulerEvent::NeedCrowd`] yield; the scheduler commits them
//!   to the shared market in deterministic policy order at the
//!   barrier, metering which of the query's specs were served live
//!   vs. from the shared cache (including piggybacking on another
//!   tenant's identical in-flight spec), and
//! * turns [`CrowdBackend::run`] into the cooperative **yield point**:
//!   instead of driving the clock itself, the query flushes its staged
//!   posts, parks on a rendezvous channel, and the scheduler advances
//!   the one shared marketplace for everybody.
//!
//! Per-query dollar attribution is exact: every completed live
//! assignment belongs to exactly one query's group, and both the
//! simulator and the replay backend price assignments uniformly, so
//! `Σ query_spend(q) == shared backend total spend` (tested in
//! `tests/service_multi_tenant.rs`).

use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use qurk_crowd::market::{Assignment, HitGroupId, HitId, RunOutcome};
use qurk_crowd::sim::SimTime;
use qurk_crowd::{HitSpec, WorkerId};

use crate::backend::{CachingBackend, CrowdBackend};
use crate::service::scheduler::{Resume, SchedulerEvent};

/// Per-query usage meter inside the shared market.
#[derive(Debug, Clone, Default)]
struct QueryMeter {
    /// (group, live assignments requested, posted at) per round.
    groups: Vec<(HitGroupId, u64, SimTime)>,
    /// HIT specs this query posted live (it owns their cost).
    live_hits: u64,
    /// HIT specs served from the cache or shared in flight.
    cached_hits: u64,
    /// Assignments the cache saved this query (cached specs × the
    /// assignment count they would have requested).
    saved_assignments: u64,
}

struct MarketInner<B> {
    backend: CachingBackend<B>,
    queries: Vec<QueryMeter>,
}

/// One marketplace, one task cache, many tenants. All access is
/// serialized through a mutex; queries hold it only for individual
/// backend calls, never across a yield.
pub struct SharedMarket<B> {
    inner: Mutex<MarketInner<B>>,
}

impl<B: CrowdBackend> SharedMarket<B> {
    pub fn new(backend: B) -> Self {
        Self::with_caching(CachingBackend::new(backend))
    }

    /// A market over a pre-built cache layer — how
    /// [`QueryService::with_store`](crate::service::QueryService::with_store)
    /// injects a journaled, recovery-preloaded
    /// [`CachingBackend::with_journal`].
    pub fn with_caching(backend: CachingBackend<B>) -> Self {
        SharedMarket {
            inner: Mutex::new(MarketInner {
                backend,
                queries: Vec::new(),
            }),
        }
    }

    /// Every metered quantity is consistent on its own, so a panicked
    /// holder (a dying query thread) leaves nothing torn worth
    /// poisoning the whole service for.
    fn lock(&self) -> MutexGuard<'_, MarketInner<B>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register a new query; the returned id keys its meter.
    pub fn register_query(&self) -> usize {
        let mut m = self.lock();
        m.queries.push(QueryMeter::default());
        m.queries.len() - 1
    }

    /// Post a group on behalf of `query`, metering the live/cached
    /// split.
    pub fn post(&self, query: usize, specs: Vec<HitSpec>, assignments: Option<u32>) -> HitGroupId {
        let mut m = self.lock();
        let n_eff = u64::from(assignments.unwrap_or_else(|| m.backend.default_assignments()));
        let (h0, mi0) = m.backend.stats();
        let posted_at = m.backend.now();
        let group = m.backend.post(specs, assignments);
        let (h1, mi1) = m.backend.stats();
        let q = &mut m.queries[query];
        q.cached_hits += h1 - h0;
        q.live_hits += mi1 - mi0;
        q.saved_assignments += (h1 - h0) * n_eff;
        q.groups.push((group, (mi1 - mi0) * n_eff, posted_at));
        group
    }

    /// Advance the shared clock (the scheduler's marketplace step).
    pub fn run(&self, limit_secs: f64) -> RunOutcome {
        self.lock().backend.run(limit_secs)
    }

    pub fn now(&self) -> SimTime {
        self.lock().backend.now()
    }

    /// Dollars per completed assignment (uniform in both the simulator
    /// and the replay backend); 0 until anything completes.
    fn unit_price(m: &MarketInner<B>) -> f64 {
        let done = m.backend.assignments_completed();
        if done == 0 {
            0.0
        } else {
            m.backend.spend_dollars() / done as f64
        }
    }

    fn completed_live(m: &MarketInner<B>, query: usize) -> u64 {
        m.queries[query]
            .groups
            .iter()
            .map(|&(g, requested, _)| {
                requested.saturating_sub(u64::from(m.backend.live_outstanding(g)))
            })
            .sum()
    }

    /// Live assignments completed so far on this query's behalf.
    pub fn query_assignments(&self, query: usize) -> u64 {
        let m = self.lock();
        Self::completed_live(&m, query)
    }

    /// Dollars attributable to this query (its completed live
    /// assignments at the uniform rate).
    pub fn query_spend(&self, query: usize) -> f64 {
        let m = self.lock();
        Self::completed_live(&m, query) as f64 * Self::unit_price(&m)
    }

    /// Dollars the shared cache saved this query.
    pub fn query_saved(&self, query: usize) -> f64 {
        let m = self.lock();
        m.queries[query].saved_assignments as f64 * Self::unit_price(&m)
    }

    /// HIT specs this query posted live.
    pub fn query_live_hits(&self, query: usize) -> u64 {
        self.lock().queries[query].live_hits
    }

    /// HIT specs served to this query without posting.
    pub fn query_cached_hits(&self, query: usize) -> u64 {
        self.lock().queries[query].cached_hits
    }

    /// Assignments still outstanding across the query's groups
    /// (counting in-flight work it shares with other queries' groups).
    pub fn query_outstanding(&self, query: usize) -> u32 {
        let m = self.lock();
        m.queries[query]
            .groups
            .iter()
            .map(|&(g, _, _)| m.backend.group_outstanding(g))
            .sum()
    }

    /// Virtual time at which the query's crowd work was done: the max
    /// over its groups of post time + last assignment latency. The gap
    /// between this and the moment the scheduler resumes the query is
    /// its queue wait.
    pub fn completion_time(&self, query: usize) -> f64 {
        let mut m = self.lock();
        let groups = m.queries[query].groups.clone();
        let mut t = 0.0f64;
        for (g, _, posted_at) in groups {
            if m.backend.group_outstanding(g) > 0 {
                continue;
            }
            // Folds freshly completed (and shared) work into the
            // cache so the latencies below are visible.
            let _ = m.backend.assignments(g);
            let last = m
                .backend
                .group_latencies(g)
                .into_iter()
                .fold(0.0f64, f64::max);
            t = t.max(posted_at.secs() + last);
        }
        t
    }

    /// Total dollars spent by the shared backend (all tenants).
    pub fn total_spend(&self) -> f64 {
        self.lock().backend.spend_dollars()
    }

    /// Total HITs posted live to the shared backend (all tenants).
    pub fn total_hits_posted(&self) -> usize {
        self.lock().backend.hits_posted()
    }

    /// (cache hits, cache misses) across all tenants' specs.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.lock().backend.stats()
    }

    /// Cache hits that were in-flight shares (see
    /// [`CachingBackend::shared_hits`]).
    pub fn shared_hits(&self) -> u64 {
        self.lock().backend.shared_hits()
    }

    /// Spec keys posted live but not yet folded into the cache (the
    /// in-flight dedup slots).
    pub fn pending_specs(&self) -> usize {
        self.lock().backend.pending_len()
    }

    /// Fold every completed group of `query` into the shared cache
    /// (and its journal). The scheduler calls this at deterministic
    /// points — barrier resolutions, in policy order — **before**
    /// resuming threads, so journal append order never depends on how
    /// the parallel machine phase's threads interleave.
    pub fn fold_completed(&self, query: usize) {
        let mut m = self.lock();
        let groups: Vec<HitGroupId> = m.queries[query].groups.iter().map(|&(g, _, _)| g).collect();
        for g in groups {
            if m.backend.group_outstanding(g) == 0 {
                let _ = m.backend.assignments(g);
            }
        }
    }

    /// Batch boundary for the shared cache's eviction bound (see
    /// [`CachingBackend::begin_batch`]).
    pub fn begin_batch(&self) {
        self.lock().backend.begin_batch();
    }

    /// Bound the shared task cache to `max` recorded specs, LRU-evicted
    /// at batch boundaries (see [`CachingBackend::set_max_entries`]).
    pub fn set_cache_max_entries(&self, max: Option<usize>) {
        self.lock().backend.set_max_entries(max);
    }

    /// Entries evicted by the shared cache's bound so far.
    pub fn cache_evictions(&self) -> u64 {
        self.lock().backend.evictions()
    }

    /// Number of distinct specs currently resident in the shared cache.
    pub fn cache_len(&self) -> usize {
        self.lock().backend.len()
    }

    /// Release the in-flight dedup slots of every group a **failed**
    /// query posted (see [`CachingBackend::release_in_flight`]):
    /// nobody will drive those rounds to completion, so later
    /// identical specs must re-post instead of piggybacking forever.
    pub fn release_query(&self, query: usize) {
        let mut m = self.lock();
        let groups: Vec<HitGroupId> = m.queries[query].groups.iter().map(|&(g, _, _)| g).collect();
        for g in groups {
            m.backend.release_in_flight(g);
        }
    }

    /// Tear down the service wrapper, returning the inner backend.
    ///
    /// # Panics
    /// Panics if tenant backends still hold the market.
    pub fn into_backend(self) -> B {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .backend
            .into_inner()
    }
}

/// One post buffered during the parallel machine phase, carried to
/// the scheduler by [`SchedulerEvent::NeedCrowd`] and committed to the
/// shared market at the barrier.
#[derive(Debug)]
pub struct StagedPost {
    pub specs: Vec<HitSpec>,
    pub assignments: Option<u32>,
}

/// Local-group bookkeeping for one [`TenantBackend`]: the backend
/// hands out its own dense group ids immediately (operators need an
/// id at post time), and learns the committed shared-market ids from
/// the scheduler's [`Resume::Round`] after the next yield.
#[derive(Debug, Default)]
struct Ledger {
    /// Committed shared-market group id per local id; `None` while the
    /// post is still staged.
    real: Vec<Option<HitGroupId>>,
    /// Live assignments a staged group will request — reported as its
    /// outstanding count until the post is committed.
    requested: Vec<u32>,
    /// Posts buffered since the last yield, parallel to the trailing
    /// `None`s of `real`.
    staged: Vec<StagedPost>,
}

/// A query's private handle on the [`SharedMarket`]: a full
/// [`CrowdBackend`] whose posts stage locally until `run`, whose `run`
/// yields to the scheduler instead of driving the clock, and whose
/// usage counters report the *query's attributed share* of the market
/// (so per-query metering, budgets and reports work unchanged).
pub struct TenantBackend<B> {
    shared: Arc<SharedMarket<B>>,
    /// Market-side id (keys the meter; unique across batches).
    query: usize,
    /// Scheduler-side index within the current batch.
    task: usize,
    /// Rendezvous with the scheduler. Mutex-wrapped only to keep the
    /// backend `Sync` (each backend is owned by exactly one query
    /// thread; the locks are never contended).
    yield_tx: Mutex<Sender<SchedulerEvent>>,
    resume_rx: Mutex<Receiver<Resume>>,
    ledger: Mutex<Ledger>,
}

impl<B: CrowdBackend> TenantBackend<B> {
    /// Wire a new tenant backend to the market and its scheduler
    /// channels (the scheduler keeps the other ends).
    pub(crate) fn new(
        shared: Arc<SharedMarket<B>>,
        query: usize,
        task: usize,
        yield_tx: Sender<SchedulerEvent>,
        resume_rx: Receiver<Resume>,
    ) -> Self {
        TenantBackend {
            shared,
            query,
            task,
            yield_tx: Mutex::new(yield_tx),
            resume_rx: Mutex::new(resume_rx),
            ledger: Mutex::new(Ledger::default()),
        }
    }

    /// The market-side query id this backend posts as.
    pub fn query_id(&self) -> usize {
        self.query
    }

    fn ledger(&self) -> MutexGuard<'_, Ledger> {
        self.ledger.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Buffer a post under a fresh local group id. Nothing touches the
    /// shared market (beyond reading its default assignment count):
    /// during the parallel machine phase many query threads post
    /// concurrently, and commit order must be the scheduler's choice,
    /// not the thread scheduler's.
    fn stage_post(&self, specs: Vec<HitSpec>, assignments: Option<u32>) -> HitGroupId {
        let per_spec = assignments
            .unwrap_or_else(|| self.shared.lock().backend.default_assignments())
            .max(1);
        let requested = (specs.len() as u32).saturating_mul(per_spec);
        let mut l = self.ledger();
        let local = HitGroupId(l.real.len());
        l.real.push(None);
        l.requested.push(requested);
        l.staged.push(StagedPost { specs, assignments });
        local
    }

    /// The committed shared-market id behind a local group id, if the
    /// post has been flushed.
    fn translate(&self, group: HitGroupId) -> Option<HitGroupId> {
        self.ledger().real.get(group.0).copied().flatten()
    }
}

impl<B: CrowdBackend> CrowdBackend for TenantBackend<B> {
    fn post_group(&mut self, specs: Vec<HitSpec>) -> HitGroupId {
        self.stage_post(specs, None)
    }

    fn post_group_with_assignments(&mut self, specs: Vec<HitSpec>, assignments: u32) -> HitGroupId {
        self.stage_post(specs, Some(assignments))
    }

    /// The cooperative yield: flush staged posts to the scheduler and
    /// park this query until the shared marketplace has run far enough
    /// to resolve its round. The barrier answers with the committed
    /// group ids ([`Resume::Round`]), which fill the local ledger
    /// before the operator reads any results. A closed channel
    /// (scheduler gone) reads as a timeout, which the operator
    /// surfaces as
    /// [`QurkError::CrowdIncomplete`](crate::error::QurkError::CrowdIncomplete).
    fn run(&mut self, limit_secs: f64) -> RunOutcome {
        let posts: Vec<StagedPost> = self.ledger().staged.drain(..).collect();
        let sent = {
            let tx = self.yield_tx.lock().unwrap_or_else(PoisonError::into_inner);
            tx.send(SchedulerEvent::NeedCrowd {
                query: self.task,
                limit_secs,
                posts,
            })
        };
        if sent.is_err() {
            return RunOutcome::TimedOut;
        }
        let received = {
            let rx = self
                .resume_rx
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            rx.recv()
        };
        match received {
            Ok(Resume::Round { outcome, groups }) => {
                let mut l = self.ledger();
                let mut committed = groups.into_iter();
                for slot in l.real.iter_mut().filter(|s| s.is_none()) {
                    let Some(g) = committed.next() else { break };
                    *slot = Some(g);
                }
                outcome
            }
            // `Start` is consumed by the query thread before this
            // backend exists; seeing it here means the scheduler is
            // confused — fail the round rather than hang. An invalid
            // deadline also lands here: the scheduler refuses to
            // commit the round's posts and resumes with `TimedOut`, so
            // the operator fails fast instead of waiting forever.
            Ok(Resume::Start) | Err(_) => RunOutcome::TimedOut,
        }
    }

    fn assignments(&mut self, group: HitGroupId) -> Vec<Assignment> {
        match self.translate(group) {
            Some(g) => self.shared.lock().backend.assignments(g),
            None => Vec::new(),
        }
    }

    fn group_hits(&self, group: HitGroupId) -> Vec<HitId> {
        match self.translate(group) {
            Some(g) => self.shared.lock().backend.group_hits(g),
            None => Vec::new(),
        }
    }

    fn group_latencies(&self, group: HitGroupId) -> Vec<f64> {
        match self.translate(group) {
            Some(g) => self.shared.lock().backend.group_latencies(g),
            None => Vec::new(),
        }
    }

    fn group_outstanding(&self, group: HitGroupId) -> u32 {
        match self.translate(group) {
            Some(g) => self.shared.lock().backend.group_outstanding(g),
            // Staged, uncommitted work is by definition all
            // outstanding — everything the post would request.
            None => self.ledger().requested.get(group.0).copied().unwrap_or(0),
        }
    }

    fn hit_question_count(&self, hit: HitId) -> usize {
        self.shared.lock().backend.hit_question_count(hit)
    }

    fn ban_workers(&mut self, workers: Vec<WorkerId>) {
        self.shared.lock().backend.ban_workers(workers)
    }

    fn now(&self) -> SimTime {
        self.shared.now()
    }

    // The usage counters report this query's attributed share, so the
    // session's metering epochs and budget guard measure the tenant,
    // not the whole market.

    fn hits_posted(&self) -> usize {
        self.shared.query_live_hits(self.query) as usize
    }

    fn spend_dollars(&self) -> f64 {
        self.shared.query_spend(self.query)
    }

    fn assignments_completed(&self) -> u64 {
        self.shared.query_assignments(self.query)
    }

    fn default_assignments(&self) -> u32 {
        self.shared.lock().backend.default_assignments()
    }
}
