//! The qurk-serve wire protocol: length-prefixed text frames.
//!
//! Frames are `<decimal byte length>\n<body>`, UTF-8, with no frame
//! terminator beyond the counted bytes — trivially parseable from a
//! socket or a shell script. Request bodies:
//!
//! ```text
//! TENANT <name> [BUDGET <dollars>]   register a tenant (idempotent)
//! QUERY <tenant> <sql ...>           queue a query for the tenant
//! RUN                                execute all queued queries concurrently
//! STATS                              shared-market totals
//! RECOVER                            resume checkpointed queries (needs --store)
//! QUIT                               close the connection
//! SHUTDOWN                           close the connection AND stop the listener
//! ```
//!
//! `QUIT` and `SHUTDOWN` are identical for a stdin/script session; on
//! a TCP listener (`qurk-serve --listen`) `QUIT` ends one connection
//! while `SHUTDOWN` also stops accepting new ones (graceful shutdown).
//!
//! Response bodies (one frame per request; `RUN` answers with one
//! frame per queued query, in submission order, then an `OK` frame):
//!
//! ```text
//! OK [<detail>]
//! ERR <message>
//! RESULT <tenant> <rows> rows $<spend> [<detail>]
//! STATS <posted> posted <hits>/<misses> cache $<spend>
//! BYE
//! ```
//!
//! Dollar amounts are always formatted with three decimals so scripted
//! sessions diff stably (the CI smoke job relies on this).

use std::io::{self, BufRead, Write};

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `TENANT <name> [BUDGET <dollars>]`
    Tenant { name: String, budget: Option<f64> },
    /// `QUERY <tenant> <sql ...>`
    Query { tenant: String, sql: String },
    /// `RUN`
    Run,
    /// `STATS`
    Stats,
    /// `RECOVER`
    Recover,
    /// `QUIT`
    Quit,
    /// `SHUTDOWN` — like `QUIT`, but a TCP listener also stops
    /// accepting new connections.
    Shutdown,
}

impl Request {
    /// Parse a frame body. Errors name the offending token.
    pub fn parse(body: &str) -> Result<Request, String> {
        let trimmed = body.trim_end_matches(['\n', '\r']);
        let mut words = trimmed.splitn(2, ' ');
        let verb = words.next().unwrap_or_default();
        let rest = words.next().unwrap_or("").trim();
        match verb {
            "TENANT" => {
                let mut parts = rest.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| "TENANT requires a name".to_owned())?
                    .to_owned();
                let budget = match (parts.next(), parts.next()) {
                    (None, _) => None,
                    (Some("BUDGET"), Some(d)) => Some(
                        d.parse::<f64>()
                            .map_err(|_| format!("bad BUDGET amount {d:?}"))?,
                    ),
                    (Some(tok), _) => return Err(format!("unexpected token {tok:?}")),
                };
                Ok(Request::Tenant { name, budget })
            }
            "QUERY" => {
                let mut parts = rest.splitn(2, ' ');
                let tenant = parts
                    .next()
                    .filter(|t| !t.is_empty())
                    .ok_or_else(|| "QUERY requires a tenant".to_owned())?
                    .to_owned();
                let sql = parts.next().unwrap_or("").trim().to_owned();
                if sql.is_empty() {
                    return Err("QUERY requires SQL text".to_owned());
                }
                Ok(Request::Query { tenant, sql })
            }
            "RUN" if rest.is_empty() => Ok(Request::Run),
            "STATS" if rest.is_empty() => Ok(Request::Stats),
            "RECOVER" if rest.is_empty() => Ok(Request::Recover),
            "QUIT" if rest.is_empty() => Ok(Request::Quit),
            "SHUTDOWN" if rest.is_empty() => Ok(Request::Shutdown),
            other => Err(format!("unknown request {other:?}")),
        }
    }
}

/// Largest frame body [`read_frame`] will accept. A length prefix
/// above this is treated as a framing error (most likely garbage on
/// the stream), not an allocation request.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// One read off the wire: a frame body, a framing error, or EOF.
///
/// Framing errors are **data**, not [`io::Error`]s, so a server can
/// answer `ERR ...` and decide whether the stream is still usable:
/// after a bad length line, an oversized prefix, or a truncated body
/// the reader has lost frame sync (`resync: false`) and the only safe
/// move is to close; after a well-framed body that merely is not UTF-8
/// the counted bytes were fully consumed and the next frame parses
/// normally (`resync: true`).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A complete, UTF-8 frame body.
    Body(String),
    /// A framing violation. `resync` says whether the reader is still
    /// aligned on a frame boundary and may keep reading.
    Malformed { reason: String, resync: bool },
    /// Clean end of stream (before any length byte).
    Eof,
}

/// Write one `<len>\n<body>` frame.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, body: &str) -> io::Result<()> {
    write!(w, "{}\n{}", body.len(), body)?;
    w.flush()
}

/// Read one `<len>\n<body>` frame. Blank lines between frames are
/// skipped, so a scripted session can separate frames for readability.
/// Malformed input is reported as [`Frame::Malformed`] (see [`Frame`]
/// for which cases are recoverable); `Err` is reserved for real I/O
/// failures on the underlying reader.
pub fn read_frame<R: BufRead + ?Sized>(r: &mut R) -> io::Result<Frame> {
    let mut len_line = String::new();
    loop {
        len_line.clear();
        if r.read_line(&mut len_line)? == 0 {
            return Ok(Frame::Eof);
        }
        if !len_line.trim().is_empty() {
            break;
        }
    }
    let Ok(len) = len_line.trim().parse::<usize>() else {
        return Ok(Frame::Malformed {
            reason: format!("bad frame length {:?}", len_line.trim()),
            resync: false,
        });
    };
    if len > MAX_FRAME_BYTES {
        return Ok(Frame::Malformed {
            reason: format!("frame length {len} exceeds limit {MAX_FRAME_BYTES}"),
            resync: false,
        });
    }
    let mut body = vec![0u8; len];
    if let Err(e) = r.read_exact(&mut body) {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            return Ok(Frame::Malformed {
                reason: format!("truncated frame: stream ended inside a {len}-byte body"),
                resync: false,
            });
        }
        return Err(e);
    }
    match String::from_utf8(body) {
        Ok(s) => Ok(Frame::Body(s)),
        // The counted bytes were consumed, so the stream is still
        // frame-aligned — the caller may answer ERR and keep going.
        Err(_) => Ok(Frame::Malformed {
            reason: "frame body is not UTF-8".to_owned(),
            resync: true,
        }),
    }
}

/// Stable money formatting for responses (three decimals).
pub fn fmt_dollars(d: f64) -> String {
    format!("${d:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn body(f: Frame) -> String {
        match f {
            Frame::Body(s) => s,
            other => panic!("expected a body frame, got {other:?}"),
        }
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "TENANT alice BUDGET 2.5").unwrap();
        write_frame(&mut buf, "RUN").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(body(read_frame(&mut r).unwrap()), "TENANT alice BUDGET 2.5");
        assert_eq!(body(read_frame(&mut r).unwrap()), "RUN");
        assert_eq!(read_frame(&mut r).unwrap(), Frame::Eof);
    }

    #[test]
    fn blank_lines_between_frames_are_skipped() {
        let mut r = Cursor::new("\n\n3\nRUN\n\n4\nQUIT\n");
        assert_eq!(body(read_frame(&mut r).unwrap()), "RUN");
        assert_eq!(body(read_frame(&mut r).unwrap()), "QUIT");
        assert_eq!(read_frame(&mut r).unwrap(), Frame::Eof);
    }

    #[test]
    fn bad_length_line_is_fatal_malformed() {
        let mut r = Cursor::new("banana\nRUN\n");
        match read_frame(&mut r).unwrap() {
            Frame::Malformed { reason, resync } => {
                assert!(reason.contains("bad frame length"), "{reason}");
                assert!(!resync);
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_fatal_malformed() {
        let mut r = Cursor::new(format!("{}\nRUN", MAX_FRAME_BYTES + 1));
        match read_frame(&mut r).unwrap() {
            Frame::Malformed { reason, resync } => {
                assert!(reason.contains("exceeds limit"), "{reason}");
                assert!(!resync);
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_fatal_malformed() {
        let mut r = Cursor::new("10\nRUN");
        match read_frame(&mut r).unwrap() {
            Frame::Malformed { reason, resync } => {
                assert!(reason.contains("truncated frame"), "{reason}");
                assert!(!resync);
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn invalid_utf8_body_is_recoverable_malformed() {
        let mut bytes = b"4\n".to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe, 0x41, 0x42]);
        bytes.extend_from_slice(b"4\nQUIT");
        let mut r = Cursor::new(bytes);
        match read_frame(&mut r).unwrap() {
            Frame::Malformed { reason, resync } => {
                assert!(reason.contains("not UTF-8"), "{reason}");
                assert!(resync, "counted bytes were consumed; stream is aligned");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        // The next frame parses normally: the bad bytes were consumed.
        assert_eq!(body(read_frame(&mut r).unwrap()), "QUIT");
        assert_eq!(read_frame(&mut r).unwrap(), Frame::Eof);
    }

    #[test]
    fn parse_accepts_the_grammar() {
        assert_eq!(
            Request::parse("TENANT alice"),
            Ok(Request::Tenant {
                name: "alice".into(),
                budget: None
            })
        );
        assert_eq!(
            Request::parse("TENANT bob BUDGET 1.25"),
            Ok(Request::Tenant {
                name: "bob".into(),
                budget: Some(1.25)
            })
        );
        assert_eq!(
            Request::parse("QUERY alice SELECT * FROM people WHERE isTall(p)"),
            Ok(Request::Query {
                tenant: "alice".into(),
                sql: "SELECT * FROM people WHERE isTall(p)".into()
            })
        );
        assert_eq!(Request::parse("RUN"), Ok(Request::Run));
        assert_eq!(Request::parse("STATS"), Ok(Request::Stats));
        assert_eq!(Request::parse("RECOVER"), Ok(Request::Recover));
        assert_eq!(Request::parse("QUIT"), Ok(Request::Quit));
        assert_eq!(Request::parse("SHUTDOWN"), Ok(Request::Shutdown));
    }

    #[test]
    fn parse_rejects_malformed_requests() {
        assert!(Request::parse("TENANT").is_err());
        assert!(Request::parse("TENANT a EXTRA").is_err());
        assert!(Request::parse("TENANT a BUDGET lots").is_err());
        assert!(Request::parse("QUERY alice").is_err());
        assert!(Request::parse("QUERY").is_err());
        assert!(Request::parse("EXPLODE now").is_err());
        assert!(Request::parse("RUN now").is_err());
        assert!(Request::parse("SHUTDOWN now").is_err());
    }

    #[test]
    fn dollars_are_stable() {
        assert_eq!(fmt_dollars(0.0), "$0.000");
        assert_eq!(fmt_dollars(1.0 / 3.0), "$0.333");
    }
}
