//! The qurk-serve wire protocol: length-prefixed text frames.
//!
//! Frames are `<decimal byte length>\n<body>`, UTF-8, with no frame
//! terminator beyond the counted bytes — trivially parseable from a
//! socket or a shell script. Request bodies:
//!
//! ```text
//! TENANT <name> [BUDGET <dollars>]   register a tenant (idempotent)
//! QUERY <tenant> <sql ...>           queue a query for the tenant
//! RUN                                execute all queued queries concurrently
//! STATS                              shared-market totals
//! QUIT                               close the connection
//! ```
//!
//! Response bodies (one frame per request; `RUN` answers with one
//! frame per queued query, in submission order, then an `OK` frame):
//!
//! ```text
//! OK [<detail>]
//! ERR <message>
//! RESULT <tenant> <rows> rows $<spend> [<detail>]
//! STATS <posted> posted <hits>/<misses> cache $<spend>
//! BYE
//! ```
//!
//! Dollar amounts are always formatted with three decimals so scripted
//! sessions diff stably (the CI smoke job relies on this).

use std::io::{self, BufRead, Write};

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `TENANT <name> [BUDGET <dollars>]`
    Tenant { name: String, budget: Option<f64> },
    /// `QUERY <tenant> <sql ...>`
    Query { tenant: String, sql: String },
    /// `RUN`
    Run,
    /// `STATS`
    Stats,
    /// `QUIT`
    Quit,
}

impl Request {
    /// Parse a frame body. Errors name the offending token.
    pub fn parse(body: &str) -> Result<Request, String> {
        let trimmed = body.trim_end_matches(['\n', '\r']);
        let mut words = trimmed.splitn(2, ' ');
        let verb = words.next().unwrap_or_default();
        let rest = words.next().unwrap_or("").trim();
        match verb {
            "TENANT" => {
                let mut parts = rest.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| "TENANT requires a name".to_owned())?
                    .to_owned();
                let budget = match (parts.next(), parts.next()) {
                    (None, _) => None,
                    (Some("BUDGET"), Some(d)) => Some(
                        d.parse::<f64>()
                            .map_err(|_| format!("bad BUDGET amount {d:?}"))?,
                    ),
                    (Some(tok), _) => return Err(format!("unexpected token {tok:?}")),
                };
                Ok(Request::Tenant { name, budget })
            }
            "QUERY" => {
                let mut parts = rest.splitn(2, ' ');
                let tenant = parts
                    .next()
                    .filter(|t| !t.is_empty())
                    .ok_or_else(|| "QUERY requires a tenant".to_owned())?
                    .to_owned();
                let sql = parts.next().unwrap_or("").trim().to_owned();
                if sql.is_empty() {
                    return Err("QUERY requires SQL text".to_owned());
                }
                Ok(Request::Query { tenant, sql })
            }
            "RUN" if rest.is_empty() => Ok(Request::Run),
            "STATS" if rest.is_empty() => Ok(Request::Stats),
            "QUIT" if rest.is_empty() => Ok(Request::Quit),
            other => Err(format!("unknown request {other:?}")),
        }
    }
}

/// Write one `<len>\n<body>` frame.
pub fn write_frame<W: Write>(w: &mut W, body: &str) -> io::Result<()> {
    write!(w, "{}\n{}", body.len(), body)?;
    w.flush()
}

/// Read one `<len>\n<body>` frame; `Ok(None)` at a clean EOF (before
/// any length byte). Blank lines between frames are skipped, so a
/// scripted session can separate frames for readability.
pub fn read_frame<R: BufRead>(r: &mut R) -> io::Result<Option<String>> {
    let mut len_line = String::new();
    loop {
        len_line.clear();
        if r.read_line(&mut len_line)? == 0 {
            return Ok(None);
        }
        if !len_line.trim().is_empty() {
            break;
        }
    }
    let len: usize = len_line
        .trim()
        .parse()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad frame length"))?;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame body is not UTF-8"))
}

/// Stable money formatting for responses (three decimals).
pub fn fmt_dollars(d: f64) -> String {
    format!("${d:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "TENANT alice BUDGET 2.5").unwrap();
        write_frame(&mut buf, "RUN").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("TENANT alice BUDGET 2.5")
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("RUN"));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn blank_lines_between_frames_are_skipped() {
        let mut r = Cursor::new("\n\n3\nRUN\n\n4\nQUIT\n");
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("RUN"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("QUIT"));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn parse_accepts_the_grammar() {
        assert_eq!(
            Request::parse("TENANT alice"),
            Ok(Request::Tenant {
                name: "alice".into(),
                budget: None
            })
        );
        assert_eq!(
            Request::parse("TENANT bob BUDGET 1.25"),
            Ok(Request::Tenant {
                name: "bob".into(),
                budget: Some(1.25)
            })
        );
        assert_eq!(
            Request::parse("QUERY alice SELECT * FROM people WHERE isTall(p)"),
            Ok(Request::Query {
                tenant: "alice".into(),
                sql: "SELECT * FROM people WHERE isTall(p)".into()
            })
        );
        assert_eq!(Request::parse("RUN"), Ok(Request::Run));
        assert_eq!(Request::parse("STATS"), Ok(Request::Stats));
        assert_eq!(Request::parse("QUIT"), Ok(Request::Quit));
    }

    #[test]
    fn parse_rejects_malformed_requests() {
        assert!(Request::parse("TENANT").is_err());
        assert!(Request::parse("TENANT a EXTRA").is_err());
        assert!(Request::parse("TENANT a BUDGET lots").is_err());
        assert!(Request::parse("QUERY alice").is_err());
        assert!(Request::parse("QUERY").is_err());
        assert!(Request::parse("EXPLODE now").is_err());
        assert!(Request::parse("RUN now").is_err());
    }

    #[test]
    fn dollars_are_stable() {
        assert_eq!(fmt_dollars(0.0), "$0.000");
        assert_eq!(fmt_dollars(1.0 / 3.0), "$0.333");
    }
}
