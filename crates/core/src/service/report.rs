//! Per-query service accounting: what multi-tenancy did to a query.
//!
//! A query run through [`crate::service::QueryService`] shares the
//! marketplace clock, the task cache, and the crowd's attention with
//! every other tenant's queries. [`ServiceStats`] makes that sharing
//! observable on the [`QueryReport`](crate::session::QueryReport):
//! how long the query sat waiting on rounds it did not own, how many
//! of its rounds overlapped other tenants', and how many dollars the
//! shared cache saved it.

/// Multi-tenant accounting attached to a
/// [`QueryReport`](crate::session::QueryReport) by the service
/// scheduler (absent for queries run outside the service).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Tenant that submitted the query.
    pub tenant: String,
    /// Virtual seconds the query spent resumable-but-not-resumed:
    /// time between its own crowd work completing and the scheduler
    /// handing control back (it was waiting on the shared clock, not
    /// on its own HITs).
    pub queue_wait_secs: f64,
    /// Crowd rounds this query yielded for (one per HIT group wait).
    pub rounds: u64,
    /// Rounds during which at least one other tenant's query was also
    /// waiting on the same marketplace step.
    pub rounds_shared: u64,
    /// HIT specs served from the shared cache (or by piggybacking on
    /// another tenant's identical in-flight spec) instead of posting.
    pub shared_cache_hits: u64,
    /// Dollars the shared cache saved this query: assignments it would
    /// have paid for, priced at the marketplace's per-assignment rate.
    pub saved_dollars: f64,
    /// The scheduler barrier at which the query's thread was admitted
    /// (0 = it started with the batch). Non-zero means the fairness
    /// policy's concurrency caps held it queued while earlier queries
    /// ran — the batch-relative measure of scheduling delay.
    pub admitted_round: u64,
    /// True when the query was resumed from a persisted checkpoint
    /// after a restart ([`QueryService::recover`](crate::service::QueryService::recover))
    /// rather than submitted in this process's lifetime.
    pub resumed: bool,
}

impl ServiceStats {
    /// Render as an EXPLAIN block section (appended by
    /// [`QueryReport::explain_full`](crate::session::QueryReport::explain_full)).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("\nservice:\n");
        out.push_str(&format!("  tenant          {}\n", self.tenant));
        out.push_str(&format!("  queue wait      {:.1}s\n", self.queue_wait_secs));
        out.push_str(&format!(
            "  rounds          {} ({} shared with other tenants)\n",
            self.rounds, self.rounds_shared
        ));
        out.push_str(&format!(
            "  cache           {} specs served without posting (${:.3} saved)\n",
            self.shared_cache_hits, self.saved_dollars
        ));
        if self.admitted_round > 0 {
            out.push_str(&format!(
                "  admitted        at scheduler barrier {} (held by fairness caps)\n",
                self.admitted_round
            ));
        }
        if self.resumed {
            out.push_str("  resumed         from a persisted checkpoint after restart\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_mentions_every_field() {
        let s = ServiceStats {
            tenant: "alice".into(),
            queue_wait_secs: 12.5,
            rounds: 3,
            rounds_shared: 2,
            shared_cache_hits: 7,
            saved_dollars: 0.525,
            admitted_round: 0,
            resumed: false,
        };
        let text = s.render();
        assert!(text.contains("alice"));
        assert!(text.contains("12.5s"));
        assert!(text.contains("3 (2 shared"));
        assert!(text.contains("7 specs"));
        assert!(text.contains("$0.525"));
        assert!(!text.contains("resumed"));
        assert!(!text.contains("admitted"));
        let resumed = ServiceStats {
            resumed: true,
            ..s.clone()
        };
        assert!(resumed.render().contains("resumed"));
        let held = ServiceStats {
            admitted_round: 4,
            ..s
        };
        assert!(held.render().contains("barrier 4"));
    }
}
