//! The deterministic cooperative scheduler.
//!
//! No async runtime is available (dependencies are vendored), so
//! concurrency is plain threads in **strict rendezvous**: every query
//! runs on its own OS thread, but the scheduler resumes exactly one
//! thread at a time and blocks until that thread either *yields* (its
//! next crowd round is posted and it needs the marketplace to run —
//! [`TenantBackend`]'s `run` sends [`SchedulerEvent::NeedCrowd`]) or
//! *finishes*. At any instant at most one query executes, so a batch
//! of N concurrent queries is a deterministic interleaving — byte-
//! identical results to sequential execution on a replayed crowd
//! (tested in `tests/service_multi_tenant.rs`).
//!
//! The scheduler alternates two phases:
//!
//! 1. **Poll** — resume runnable queries in submission order. A query
//!    that yields with all its groups already complete (fully cached
//!    round) becomes runnable again immediately, no marketplace step.
//! 2. **Marketplace** — every running query is parked on a posted
//!    round. Run the one shared backend in stages toward the waiting
//!    queries' deadlines (nearest first) and stop as soon as any
//!    query's round resolves: complete (its outstanding work hit
//!    zero) or timed out (the shared clock passed its deadline).
//!    Queries resolved while ≥ 2 were parked count the round as
//!    *shared* — one marketplace step served several tenants.
//!
//! Statistics follow **snapshot isolation** (see
//! [`SharedStatistics`]): each query learns into a private copy seeded
//! from the batch-start snapshot, and deltas are committed in
//! submission order after the batch — concurrent queries never see
//! each other's half-finished evidence, and what a batch learns only
//! steers the *next* batch's plans.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;

use qurk_crowd::market::RunOutcome;

use crate::analyze::{analyze_query, LintPolicy};
use crate::backend::{CachingBackend, CrowdBackend};
use crate::catalog::Catalog;
use crate::error::{QurkError, Result};
use crate::lang::parser::parse_query;
use crate::opt::stats::{SharedStatistics, StatisticsStore};
use crate::service::report::ServiceStats;
use crate::service::tenant::{SharedMarket, TenantBackend};
use crate::session::{ExecConfig, QueryReport, Session};
use crate::store::DurableStore;

/// Wake-up message from scheduler to a parked query thread.
#[derive(Debug)]
pub enum Resume {
    /// Begin executing (sent exactly once, before the session runs).
    Start,
    /// The marketplace step for the query's posted round finished with
    /// this outcome.
    Round(RunOutcome),
}

/// What a query thread sends the scheduler.
#[derive(Debug)]
pub enum SchedulerEvent {
    /// The query posted a round and yields until the shared
    /// marketplace has run for up to `limit_secs` of virtual time.
    NeedCrowd { query: usize, limit_secs: f64 },
    /// The query finished (successfully or not).
    Done { query: usize, msg: Box<DoneMsg> },
}

/// A finished query's payload.
#[derive(Debug)]
pub struct DoneMsg {
    pub result: Result<QueryReport>,
    /// What the query learned beyond the batch-start snapshot.
    pub stats_delta: StatisticsStore,
}

/// One registered tenant.
#[derive(Debug, Clone)]
struct TenantState {
    name: String,
    /// Cumulative dollar cap across all the tenant's queries.
    budget: Option<f64>,
    /// Dollars attributed so far.
    spent: f64,
}

/// One admitted, not-yet-executed query.
struct Submission {
    tenant: usize,
    sql: String,
    budget: Option<f64>,
    /// Durable checkpoint id when the service has a store attached.
    persist_id: Option<u64>,
    /// Resubmitted by [`QueryService::recover`] after a restart.
    resumed: bool,
}

/// Deadline slack: a round whose deadline the clock has reached within
/// this tolerance counts as expired (guards float accumulation across
/// staged runs).
const DEADLINE_EPS: f64 = 1e-9;

/// A multi-tenant query service over one shared marketplace.
///
/// ```text
/// let mut svc = QueryService::new(&catalog, backend);
/// svc.register_tenant("alice", Some(5.0));
/// svc.register_tenant("bob", None);
/// svc.submit("alice", "SELECT ...")?;
/// svc.submit("bob", "SELECT ...")?;
/// let reports = svc.run_pending();   // concurrent, deterministic
/// ```
///
/// Queries admitted by [`Self::submit`] execute concurrently on the
/// next [`Self::run_pending`], sharing the marketplace clock, the
/// task cache (identical specs across tenants are paid for once) and
/// the statistics store.
pub struct QueryService<'c, B: CrowdBackend> {
    catalog: &'c Catalog,
    shared: Arc<SharedMarket<B>>,
    stats: SharedStatistics,
    config: ExecConfig,
    tenants: Vec<TenantState>,
    pending: Vec<Submission>,
    /// Durable state (task cache, statistics, checkpoints, tenants) —
    /// attached via [`Self::with_store`], absent otherwise.
    store: Option<Arc<DurableStore>>,
}

impl<'c, B: CrowdBackend> QueryService<'c, B> {
    /// A service with default execution configuration.
    pub fn new(catalog: &'c Catalog, backend: B) -> Self {
        Self::with_config(catalog, backend, ExecConfig::default())
    }

    /// A service whose sessions run under `config` (lint policy,
    /// operator defaults, optimizer mode).
    pub fn with_config(catalog: &'c Catalog, backend: B, config: ExecConfig) -> Self {
        QueryService {
            catalog,
            shared: Arc::new(SharedMarket::new(backend)),
            stats: SharedStatistics::default(),
            config,
            tenants: Vec::new(),
            pending: Vec::new(),
            store: None,
        }
    }

    /// A durable service: open-on-start recovery of the task cache,
    /// learned statistics and tenant registrations from `store`, with
    /// every paid round, admission and completion journaled back.
    /// In-flight queries from a previous process are *not* re-queued
    /// automatically — call [`Self::recover`] to resume them.
    pub fn with_store(
        catalog: &'c Catalog,
        backend: B,
        config: ExecConfig,
        store: Arc<DurableStore>,
    ) -> Self {
        let caching = CachingBackend::with_journal(backend, Arc::clone(&store));
        let tenants = store
            .tenants_snapshot()
            .into_iter()
            .map(|t| TenantState {
                name: t.name,
                budget: t.budget,
                spent: t.spent,
            })
            .collect();
        QueryService {
            catalog,
            shared: Arc::new(SharedMarket::with_caching(caching)),
            stats: SharedStatistics::new(store.stats_snapshot()),
            config,
            tenants,
            pending: Vec::new(),
            store: Some(store),
        }
    }

    /// The attached durable store, if any.
    pub fn store(&self) -> Option<&Arc<DurableStore>> {
        self.store.as_ref()
    }

    /// Re-queue every live checkpoint (a query admitted but not
    /// finished when the previous process died) for the next
    /// [`Self::run_pending`], keeping its original checkpoint id and
    /// budget. The resumed query replays its already-paid rounds from
    /// the recovered cache instead of re-posting them, and its report
    /// is flagged [`ServiceStats::resumed`]. Returns how many queries
    /// were re-queued. No-op without a store.
    pub fn recover(&mut self) -> usize {
        let Some(store) = self.store.clone() else {
            return 0;
        };
        let mut resumed = 0;
        for cp in store.live_checkpoints() {
            match self.tenant_index(&cp.tenant) {
                Ok(tenant) => {
                    self.pending.push(Submission {
                        tenant,
                        sql: cp.sql,
                        budget: cp.budget,
                        persist_id: Some(cp.id),
                        resumed: true,
                    });
                    resumed += 1;
                }
                Err(_) => {
                    // The checkpoint's tenant is gone from the log
                    // (registrations are journaled, so this means a
                    // truncated tail). Retire it rather than resurrect
                    // an unattributable query on every restart.
                    store.append_query_done(cp.id);
                }
            }
        }
        resumed
    }

    /// Register (or re-budget) a tenant. `budget` caps the tenant's
    /// cumulative attributed spend across all its queries; `None`
    /// means uncapped.
    pub fn register_tenant(&mut self, name: &str, budget: Option<f64>) {
        if let Some(t) = self.tenants.iter_mut().find(|t| t.name == name) {
            t.budget = budget;
        } else {
            self.tenants.push(TenantState {
                name: name.to_owned(),
                budget,
                spent: 0.0,
            });
        }
        if let Some(store) = &self.store {
            let t = self
                .tenants
                .iter()
                .find(|t| t.name == name)
                .expect("tenant was just inserted above");
            store.append_tenant(&t.name, t.budget, t.spent);
        }
    }

    fn tenant_index(&self, name: &str) -> Result<usize> {
        self.tenants
            .iter()
            .position(|t| t.name == name)
            .ok_or_else(|| QurkError::Other(format!("unknown tenant {name:?}")))
    }

    /// Dollars attributed to a tenant so far.
    pub fn tenant_spent(&self, name: &str) -> Result<f64> {
        Ok(self.tenants[self.tenant_index(name)?].spent)
    }

    /// Admit a query for a tenant. Admission runs the pre-flight
    /// analyzer ([`crate::analyze`]) against the current shared
    /// statistics: under [`LintPolicy::Deny`] a query with error-level
    /// diagnostics is rejected here, before anything is queued.
    /// Returns the submission's position in the next
    /// [`Self::run_pending`] batch.
    pub fn submit(&mut self, tenant: &str, sql: &str) -> Result<usize> {
        self.submit_with_budget(tenant, sql, None)
    }

    /// [`Self::submit`] with a per-query dollar budget (combined with
    /// the tenant budget: the query runs under the tighter of the two).
    pub fn submit_with_budget(
        &mut self,
        tenant: &str,
        sql: &str,
        budget: Option<f64>,
    ) -> Result<usize> {
        let tenant = self.tenant_index(tenant)?;
        let parsed = parse_query(sql)?;
        if self.config.lint.policy != LintPolicy::Allow {
            let snapshot = self.stats.snapshot();
            let diagnostics =
                analyze_query(sql, &parsed, self.catalog, &self.config, &snapshot, budget)?;
            if self.config.lint.policy == LintPolicy::Deny
                && diagnostics.iter().any(crate::analyze::Diagnostic::is_error)
            {
                return Err(QurkError::Rejected { diagnostics });
            }
        }
        // Checkpoint write-ahead of the queue push: once admission is
        // acknowledged, a crash before the query finishes leaves a
        // live checkpoint for `recover()` to resume.
        let persist_id = self
            .store
            .as_ref()
            .map(|s| s.append_checkpoint(&self.tenants[tenant].name, sql, budget));
        self.pending.push(Submission {
            tenant,
            sql: sql.to_owned(),
            budget,
            persist_id,
            resumed: false,
        });
        Ok(self.pending.len() - 1)
    }

    /// Number of admitted, not-yet-executed queries.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The shared market (totals, cache stats) — for reporting.
    pub fn market(&self) -> &SharedMarket<B> {
        &self.shared
    }

    /// The shared statistics store.
    pub fn statistics(&self) -> &SharedStatistics {
        &self.stats
    }

    /// Tear down the service, returning the inner backend (e.g. to
    /// export a [`RecordingBackend`](crate::backend::RecordingBackend)
    /// trace after a serving run).
    ///
    /// # Panics
    /// Panics if called while queries are still running (they hold the
    /// shared market). Between [`Self::run_pending`] calls every
    /// tenant backend has been dropped, so this always succeeds.
    pub fn into_backend(self) -> B {
        Arc::try_unwrap(self.shared)
            .ok()
            .expect("tenant backends still hold the shared market")
            .into_backend()
    }

    /// The dollar budget a submission may spend right now: the tighter
    /// of its own budget and what its tenant has left.
    fn effective_budget(&self, job: &Submission) -> Option<f64> {
        let t = &self.tenants[job.tenant];
        let tenant_left = t.budget.map(|b| (b - t.spent).max(0.0));
        match (job.budget, tenant_left) {
            (Some(q), Some(r)) => Some(q.min(r)),
            (Some(q), None) => Some(q),
            (None, r) => r,
        }
    }

    /// Execute every pending query **concurrently** against the shared
    /// marketplace and return their reports in submission order.
    ///
    /// Concurrency is cooperative and deterministic (module docs);
    /// budgets are fixed at batch start, so two same-tenant queries in
    /// one batch can jointly overshoot a tenant budget by at most one
    /// round each — the budget is re-checked before every subsequent
    /// batch.
    pub fn run_pending(&mut self) -> Vec<Result<QueryReport>> {
        let jobs = std::mem::take(&mut self.pending);
        if jobs.is_empty() {
            return Vec::new();
        }
        let snapshot = self.stats.snapshot();
        let budgets: Vec<Option<f64>> = jobs.iter().map(|j| self.effective_budget(j)).collect();

        enum TaskState {
            Runnable(Resume),
            Waiting { deadline: f64 },
            Finished,
        }
        struct TaskCtl {
            resume_tx: Sender<Resume>,
            state: TaskState,
            market_query: usize,
            rounds: u64,
            rounds_shared: u64,
            queue_wait_secs: f64,
            done: Option<Box<DoneMsg>>,
        }

        let (event_tx, event_rx) = channel::<SchedulerEvent>();

        // `tasks` (and its resume senders) must live *inside* the
        // scope: if the scheduler panics, dropping the senders is what
        // unparks the query threads so the scope's implicit join can
        // finish instead of deadlocking.
        let mut tasks = std::thread::scope(|scope| {
            let mut tasks: Vec<TaskCtl> = Vec::new();
            for (i, job) in jobs.iter().enumerate() {
                let market_query = self.shared.register_query();
                let (resume_tx, resume_rx) = channel::<Resume>();
                let shared = Arc::clone(&self.shared);
                let catalog = self.catalog;
                let config = self.config.clone();
                let seed_stats = snapshot.clone();
                let budget = budgets[i];
                let sql = job.sql.clone();
                let tx = event_tx.clone();
                scope.spawn(move || {
                    // Rendezvous: do nothing until the scheduler says
                    // so — at most one query thread runs at a time.
                    if resume_rx.recv().is_err() {
                        return; // scheduler vanished before start
                    }
                    let backend =
                        TenantBackend::new(shared, market_query, i, tx.clone(), resume_rx);
                    let msg = catch_unwind(AssertUnwindSafe(|| {
                        let mut session = Session::builder()
                            .catalog(catalog)
                            .backend(backend)
                            .config(config)
                            .statistics(seed_stats.clone())
                            .build();
                        let builder = session.query(&sql);
                        let builder = match budget {
                            Some(b) => builder.budget_dollars(b),
                            None => builder,
                        };
                        let result = builder.report();
                        let stats_delta = session.statistics().diff(&seed_stats);
                        DoneMsg {
                            result,
                            stats_delta,
                        }
                    }))
                    .unwrap_or_else(|_| DoneMsg {
                        result: Err(QurkError::Other("query thread panicked".to_owned())),
                        stats_delta: StatisticsStore::new(),
                    });
                    let _ = tx.send(SchedulerEvent::Done {
                        query: i,
                        msg: Box::new(msg),
                    });
                });
                tasks.push(TaskCtl {
                    resume_tx,
                    state: TaskState::Runnable(Resume::Start),
                    market_query,
                    rounds: 0,
                    rounds_shared: 0,
                    queue_wait_secs: 0.0,
                    done: None,
                });
            }
            // The scheduler's own sender would keep `event_rx` alive
            // past the last Done; the threads hold their clones.
            drop(event_tx);

            let mut finished = 0usize;
            while finished < tasks.len() {
                // ---- poll phase: resume runnable queries in order.
                if let Some(i) = tasks
                    .iter()
                    .position(|t| matches!(t.state, TaskState::Runnable(_)))
                {
                    let resume = match std::mem::replace(&mut tasks[i].state, TaskState::Finished) {
                        TaskState::Runnable(r) => r,
                        _ => unreachable!("guarded by the position() match above"),
                    };
                    // A failed send means the thread already finished;
                    // its Done event is queued and consumed below.
                    let _ = tasks[i].resume_tx.send(resume);
                    match event_rx.recv() {
                        Ok(SchedulerEvent::NeedCrowd { query, limit_secs }) => {
                            tasks[query].rounds += 1;
                            // Journal consumed rounds as they happen so
                            // a crash mid-query leaves an accurate
                            // checkpoint (its paid work is already in
                            // the cache records).
                            if let (Some(store), Some(id)) = (&self.store, jobs[query].persist_id) {
                                store.append_rounds(id, tasks[query].rounds);
                            }
                            if self.shared.query_outstanding(tasks[query].market_query) == 0 {
                                // Fully cached/complete round: runnable
                                // again without a marketplace step.
                                tasks[query].state =
                                    TaskState::Runnable(Resume::Round(RunOutcome::Completed));
                            } else {
                                tasks[query].state = TaskState::Waiting {
                                    deadline: self.shared.now().secs() + limit_secs,
                                };
                            }
                        }
                        Ok(SchedulerEvent::Done { query, msg }) => {
                            tasks[query].done = Some(msg);
                            tasks[query].state = TaskState::Finished;
                            finished += 1;
                        }
                        Err(_) => {
                            // All threads gone without a Done: every
                            // remaining task is dead.
                            break;
                        }
                    }
                    continue;
                }

                // ---- marketplace phase: everyone is parked on a
                // round. Run the shared clock toward the nearest
                // deadlines, stopping at the first resolution.
                let mut waiting: Vec<(f64, usize)> = tasks
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| match t.state {
                        TaskState::Waiting { deadline } => Some((deadline, i)),
                        _ => None,
                    })
                    .collect();
                if waiting.is_empty() {
                    break; // defensive: nothing runnable, nothing waiting
                }
                waiting.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let shared_round = waiting.len() >= 2;
                let mut stages: Vec<f64> = waiting.iter().map(|&(d, _)| d).collect();
                stages.dedup();
                for stage in stages {
                    let dt = stage - self.shared.now().secs();
                    if dt > 0.0 {
                        let _ = self.shared.run(dt);
                    }
                    let now = self.shared.now().secs();
                    let mut resolved_any = false;
                    for &(deadline, i) in &waiting {
                        if !matches!(tasks[i].state, TaskState::Waiting { .. }) {
                            continue;
                        }
                        let outstanding = self.shared.query_outstanding(tasks[i].market_query);
                        let outcome = if outstanding == 0 {
                            Some(RunOutcome::Completed)
                        } else if now + DEADLINE_EPS >= deadline {
                            Some(RunOutcome::TimedOut)
                        } else {
                            None
                        };
                        let Some(outcome) = outcome else { continue };
                        if outcome == RunOutcome::Completed {
                            let completion = self.shared.completion_time(tasks[i].market_query);
                            tasks[i].queue_wait_secs += (now - completion).max(0.0);
                        }
                        if shared_round {
                            tasks[i].rounds_shared += 1;
                        }
                        tasks[i].state = TaskState::Runnable(Resume::Round(outcome));
                        resolved_any = true;
                    }
                    if resolved_any {
                        break;
                    }
                }
            }
            tasks
        });

        // ---- collect, in submission order: commit learning, attribute
        // spend, attach service stats.
        let mut out = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            let task = &mut tasks[i];
            let msg = task.done.take();
            let spend = self.shared.query_spend(task.market_query);
            self.tenants[job.tenant].spent += spend;
            let result = match msg {
                Some(msg) => {
                    self.stats.commit(&msg.stats_delta);
                    if let Some(store) = &self.store {
                        store.append_stats_delta(&msg.stats_delta);
                    }
                    msg.result.map(|mut report| {
                        report.service = Some(ServiceStats {
                            tenant: self.tenants[job.tenant].name.clone(),
                            queue_wait_secs: task.queue_wait_secs,
                            rounds: task.rounds,
                            rounds_shared: task.rounds_shared,
                            shared_cache_hits: self.shared.query_cached_hits(task.market_query),
                            saved_dollars: self.shared.query_saved(task.market_query),
                            resumed: job.resumed,
                        });
                        report
                    })
                }
                None => Err(QurkError::Other(
                    "query thread terminated without a result".to_owned(),
                )),
            };
            if result.is_err() {
                // A failed query abandons its in-flight rounds: drop
                // its dedup slots so later identical specs re-post
                // instead of piggybacking on work nobody is driving.
                self.shared.release_query(task.market_query);
            }
            if let (Some(store), Some(id)) = (&self.store, job.persist_id) {
                // The query resolved (either way) and its result was
                // delivered: retire the checkpoint so a restart does
                // not re-run it, and persist the tenant's new spend.
                store.append_query_done(id);
                let t = &self.tenants[job.tenant];
                store.append_tenant(&t.name, t.budget, t.spent);
            }
            out.push(result);
        }
        out
    }
}
