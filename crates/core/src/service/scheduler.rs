//! The deterministic scheduler with a parallel machine phase.
//!
//! No async runtime is available (dependencies are vendored), so
//! concurrency is plain threads. Every query runs on its own OS
//! thread; only the **marketplace** is serialized on the one shared
//! clock. Between yield points all runnable query threads execute
//! **concurrently** — planning, EM combining, machine filters and
//! sorts from N tenants genuinely overlap on a multi-core host — and
//! determinism is preserved by a barrier:
//!
//! 1. **Parallel machine phase** — resume *every* runnable query at
//!    once. Each resumed thread runs machine-side until its next yield
//!    and sends exactly one event: [`SchedulerEvent::NeedCrowd`] (its
//!    next crowd round, with the posts it staged locally — see
//!    [`TenantBackend`]) or [`SchedulerEvent::Done`]. The scheduler
//!    collects exactly one event per resumed thread (the barrier),
//!    then processes them in **policy order** (tenant priority, then
//!    submission order): staged posts are committed to the shared
//!    market, rounds journaled, and completed work folded into the
//!    shared cache — all on the scheduler thread, so the marketplace,
//!    the meters and the durable journal never observe thread-timing
//!    nondeterminism. A query whose round is already complete (fully
//!    cached) becomes runnable again immediately.
//! 2. **Marketplace phase** — every running query is parked on a
//!    posted round. Run the one shared backend in stages toward the
//!    waiting queries' deadlines (nearest first) and stop as soon as
//!    any query's round resolves: complete (its outstanding work hit
//!    zero) or timed out (the shared clock passed its deadline).
//!    Queries resolved while ≥ 2 were parked count the round as
//!    *shared* — one marketplace step served several tenants.
//!
//! Because the clock only advances in the marketplace phase and all
//! shared-state writes happen on the scheduler thread in policy order,
//! a batch of N concurrent queries is still byte-identical to running
//! them sequentially on a replayed crowd (tested in
//! `tests/service_multi_tenant.rs` and `tests/service_parallel.rs`).
//!
//! **Fairness** is a [`SchedulePolicy`]: per-tenant priorities order
//! both thread admission and barrier commits; [`PollOrder::RoundRobin`]
//! interleaves tenants when admitting queued queries; `max_active` /
//! `max_per_tenant` cap how many query threads run at once (queries
//! over the cap stay queued and are admitted as slots free up —
//! [`ServiceStats::admitted_round`] records the wait).
//!
//! Statistics follow **snapshot isolation** (see
//! [`SharedStatistics`]): each query learns into a private copy seeded
//! from the batch-start snapshot, and deltas are committed in
//! submission order after the batch — concurrent queries never see
//! each other's half-finished evidence, and what a batch learns only
//! steers the *next* batch's plans.

use std::cmp::Reverse;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;

use qurk_crowd::market::{HitGroupId, RunOutcome};

use crate::analyze::{analyze_query, LintPolicy};
use crate::backend::{CachingBackend, CrowdBackend};
use crate::catalog::Catalog;
use crate::error::{QurkError, Result};
use crate::lang::ast::Query as ParsedQuery;
use crate::lang::parser::parse_query;
use crate::opt::stats::{SharedStatistics, StatisticsStore};
use crate::service::report::ServiceStats;
use crate::service::tenant::{SharedMarket, StagedPost, TenantBackend};
use crate::session::{ExecConfig, QueryReport, Session};
use crate::store::DurableStore;

/// Wake-up message from scheduler to a parked query thread.
#[derive(Debug)]
pub enum Resume {
    /// Begin executing (sent exactly once, before the session runs).
    Start,
    /// The marketplace step for the query's posted round finished with
    /// this outcome. `groups` are the shared-market ids the barrier
    /// assigned to the posts the query staged before yielding, in
    /// staging order (empty when the round was refused — see
    /// [`QurkError::InvalidDeadline`]).
    Round {
        outcome: RunOutcome,
        groups: Vec<HitGroupId>,
    },
}

/// What a query thread sends the scheduler. Exactly one event is sent
/// per resume — that's what makes the barrier sound.
#[derive(Debug)]
pub enum SchedulerEvent {
    /// The query staged `posts` and yields until the shared
    /// marketplace has run for up to `limit_secs` of virtual time.
    NeedCrowd {
        query: usize,
        limit_secs: f64,
        posts: Vec<StagedPost>,
    },
    /// The query finished (successfully or not).
    Done { query: usize, msg: Box<DoneMsg> },
}

/// A finished query's payload.
#[derive(Debug)]
pub struct DoneMsg {
    pub result: Result<QueryReport>,
    /// What the query learned beyond the batch-start snapshot.
    pub stats_delta: StatisticsStore,
}

/// How the scheduler orders queued queries when admitting them to the
/// machine phase (within one priority level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollOrder {
    /// First submitted, first admitted (the historical behavior).
    #[default]
    Submission,
    /// Interleave tenants: the tenant with the fewest queries admitted
    /// this batch goes first, so one tenant flooding `submit()` cannot
    /// starve another tenant's single query behind its queue.
    RoundRobin,
}

/// Fairness knobs for [`QueryService::run_pending`]. The default is
/// fully permissive: submission order, no caps — every admitted query
/// starts immediately and the parallel machine phase runs them all.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulePolicy {
    /// Admission order among queued queries of equal priority.
    pub order: PollOrder,
    /// Cap on concurrently executing queries across all tenants
    /// (`None` = unlimited; `Some(0)` is treated as 1).
    pub max_active: Option<usize>,
    /// Cap on concurrently executing queries per tenant
    /// (`None` = unlimited; `Some(0)` is treated as 1).
    pub max_per_tenant: Option<usize>,
}

/// One registered tenant.
#[derive(Debug, Clone)]
struct TenantState {
    name: String,
    /// Cumulative dollar cap across all the tenant's queries.
    budget: Option<f64>,
    /// Dollars attributed so far.
    spent: f64,
    /// Scheduling priority (higher first; default 0). A process-local
    /// knob — not journaled to the durable store.
    priority: i32,
}

/// One admitted, not-yet-executed query.
struct Submission {
    tenant: usize,
    sql: String,
    /// The AST the admission gate analyzed — the query thread executes
    /// exactly this, never a re-parse of `sql`.
    parsed: ParsedQuery,
    budget: Option<f64>,
    /// Durable checkpoint id when the service has a store attached.
    persist_id: Option<u64>,
    /// Resubmitted by [`QueryService::recover`] after a restart.
    resumed: bool,
}

/// Deadline slack: a round whose deadline the clock has reached within
/// this tolerance counts as expired (guards float accumulation across
/// staged runs).
const DEADLINE_EPS: f64 = 1e-9;

/// A multi-tenant query service over one shared marketplace.
///
/// ```text
/// let mut svc = QueryService::new(&catalog, backend);
/// svc.register_tenant("alice", Some(5.0));
/// svc.register_tenant("bob", None);
/// svc.submit("alice", "SELECT ...")?;
/// svc.submit("bob", "SELECT ...")?;
/// let reports = svc.run_pending();   // concurrent, deterministic
/// ```
///
/// Queries admitted by [`Self::submit`] execute concurrently on the
/// next [`Self::run_pending`], sharing the marketplace clock, the
/// task cache (identical specs across tenants are paid for once) and
/// the statistics store. Machine-side work overlaps on real OS
/// threads; only marketplace steps are serialized (module docs).
pub struct QueryService<'c, B: CrowdBackend> {
    catalog: &'c Catalog,
    shared: Arc<SharedMarket<B>>,
    stats: SharedStatistics,
    config: ExecConfig,
    policy: SchedulePolicy,
    tenants: Vec<TenantState>,
    pending: Vec<Submission>,
    /// Durable state (task cache, statistics, checkpoints, tenants) —
    /// attached via [`Self::with_store`], absent otherwise.
    store: Option<Arc<DurableStore>>,
}

impl<'c, B: CrowdBackend> QueryService<'c, B> {
    /// A service with default execution configuration.
    pub fn new(catalog: &'c Catalog, backend: B) -> Self {
        Self::with_config(catalog, backend, ExecConfig::default())
    }

    /// A service whose sessions run under `config` (lint policy,
    /// operator defaults, optimizer mode).
    pub fn with_config(catalog: &'c Catalog, backend: B, config: ExecConfig) -> Self {
        QueryService {
            catalog,
            shared: Arc::new(SharedMarket::new(backend)),
            stats: SharedStatistics::default(),
            config,
            policy: SchedulePolicy::default(),
            tenants: Vec::new(),
            pending: Vec::new(),
            store: None,
        }
    }

    /// A durable service: open-on-start recovery of the task cache,
    /// learned statistics and tenant registrations from `store`, with
    /// every paid round, admission and completion journaled back.
    /// In-flight queries from a previous process are *not* re-queued
    /// automatically — call [`Self::recover`] to resume them.
    pub fn with_store(
        catalog: &'c Catalog,
        backend: B,
        config: ExecConfig,
        store: Arc<DurableStore>,
    ) -> Self {
        let caching = CachingBackend::with_journal(backend, Arc::clone(&store));
        let tenants = store
            .tenants_snapshot()
            .into_iter()
            .map(|t| TenantState {
                name: t.name,
                budget: t.budget,
                spent: t.spent,
                priority: 0,
            })
            .collect();
        QueryService {
            catalog,
            shared: Arc::new(SharedMarket::with_caching(caching)),
            stats: SharedStatistics::new(store.stats_snapshot()),
            config,
            policy: SchedulePolicy::default(),
            tenants,
            pending: Vec::new(),
            store: Some(store),
        }
    }

    /// The attached durable store, if any.
    pub fn store(&self) -> Option<&Arc<DurableStore>> {
        self.store.as_ref()
    }

    /// The fairness policy for subsequent [`Self::run_pending`] calls.
    pub fn set_policy(&mut self, policy: SchedulePolicy) {
        self.policy = policy;
    }

    /// The current fairness policy.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Set a tenant's scheduling priority (higher runs first; default
    /// 0). Priorities order both admission of queued queries and
    /// barrier commits within a batch.
    pub fn set_tenant_priority(&mut self, name: &str, priority: i32) -> Result<()> {
        let t = self.tenant_index(name)?;
        self.tenants[t].priority = priority;
        Ok(())
    }

    /// Bound the shared task cache to `max` recorded specs, evicting
    /// least-recently-used entries at batch boundaries. Journal-aware:
    /// eviction is memory-only, so durable recovery still replays
    /// every paid round; an evicted spec that is posted again is paid
    /// for again. `None` removes the bound.
    pub fn set_cache_max_entries(&mut self, max: Option<usize>) {
        self.shared.set_cache_max_entries(max);
    }

    /// Re-queue every live checkpoint (a query admitted but not
    /// finished when the previous process died) for the next
    /// [`Self::run_pending`], keeping its original checkpoint id and
    /// budget. Each checkpoint is **re-admitted through the same gate
    /// as [`Self::submit`]** against the recovered statistics: under
    /// [`LintPolicy::Deny`] a checkpoint that would be rejected today
    /// is retired (its checkpoint is marked done) instead of executed —
    /// a crash must not smuggle a query past the admission analyzer.
    /// The resumed queries replay their already-paid rounds from the
    /// recovered cache instead of re-posting them, and their reports
    /// are flagged [`ServiceStats::resumed`]. Returns how many queries
    /// were re-queued. No-op without a store.
    pub fn recover(&mut self) -> usize {
        let Some(store) = self.store.clone() else {
            return 0;
        };
        let mut resumed = 0;
        for cp in store.live_checkpoints() {
            let Ok(tenant) = self.tenant_index(&cp.tenant) else {
                // The checkpoint's tenant is gone from the log
                // (registrations are journaled, so this means a
                // truncated tail). Retire it rather than resurrect
                // an unattributable query on every restart.
                store.append_query_done(cp.id);
                continue;
            };
            match self.admit(&cp.sql, cp.budget) {
                Ok(parsed) => {
                    self.pending.push(Submission {
                        tenant,
                        sql: cp.sql,
                        parsed,
                        budget: cp.budget,
                        persist_id: Some(cp.id),
                        resumed: true,
                    });
                    resumed += 1;
                }
                Err(_) => {
                    // Admission says no under today's statistics and
                    // policy. Retire the checkpoint so the rejected
                    // query is not resurrected on every restart.
                    store.append_query_done(cp.id);
                }
            }
        }
        resumed
    }

    /// Register (or re-budget) a tenant. `budget` caps the tenant's
    /// cumulative attributed spend across all its queries; `None`
    /// means uncapped.
    pub fn register_tenant(&mut self, name: &str, budget: Option<f64>) {
        if let Some(t) = self.tenants.iter_mut().find(|t| t.name == name) {
            t.budget = budget;
        } else {
            self.tenants.push(TenantState {
                name: name.to_owned(),
                budget,
                spent: 0.0,
                priority: 0,
            });
        }
        if let Some(store) = &self.store {
            let t = self
                .tenants
                .iter()
                .find(|t| t.name == name)
                .expect("tenant was just inserted above");
            store.append_tenant(&t.name, t.budget, t.spent);
        }
    }

    fn tenant_index(&self, name: &str) -> Result<usize> {
        self.tenants
            .iter()
            .position(|t| t.name == name)
            .ok_or_else(|| QurkError::Other(format!("unknown tenant {name:?}")))
    }

    /// Dollars attributed to a tenant so far.
    pub fn tenant_spent(&self, name: &str) -> Result<f64> {
        Ok(self.tenants[self.tenant_index(name)?].spent)
    }

    /// The admission gate shared by [`Self::submit`] and
    /// [`Self::recover`]: parse, then run the pre-flight analyzer
    /// against the current shared statistics. Returns the parsed AST —
    /// the exact query that will execute.
    fn admit(&self, sql: &str, budget: Option<f64>) -> Result<ParsedQuery> {
        let parsed = parse_query(sql)?;
        if self.config.lint.policy != LintPolicy::Allow {
            let snapshot = self.stats.snapshot();
            let diagnostics =
                analyze_query(sql, &parsed, self.catalog, &self.config, &snapshot, budget)?;
            if self.config.lint.policy == LintPolicy::Deny
                && diagnostics.iter().any(crate::analyze::Diagnostic::is_error)
            {
                return Err(QurkError::Rejected { diagnostics });
            }
        }
        Ok(parsed)
    }

    /// Admit a query for a tenant. Admission runs the pre-flight
    /// analyzer ([`crate::analyze`]) against the current shared
    /// statistics: under [`LintPolicy::Deny`] a query with error-level
    /// diagnostics is rejected here, before anything is queued.
    /// Returns the submission's position in the next
    /// [`Self::run_pending`] batch.
    pub fn submit(&mut self, tenant: &str, sql: &str) -> Result<usize> {
        self.submit_with_budget(tenant, sql, None)
    }

    /// [`Self::submit`] with a per-query dollar budget (combined with
    /// the tenant budget: the query runs under the tighter of the two).
    pub fn submit_with_budget(
        &mut self,
        tenant: &str,
        sql: &str,
        budget: Option<f64>,
    ) -> Result<usize> {
        let tenant = self.tenant_index(tenant)?;
        let parsed = self.admit(sql, budget)?;
        // Checkpoint write-ahead of the queue push: once admission is
        // acknowledged, a crash before the query finishes leaves a
        // live checkpoint for `recover()` to resume.
        let persist_id = self
            .store
            .as_ref()
            .map(|s| s.append_checkpoint(&self.tenants[tenant].name, sql, budget));
        self.pending.push(Submission {
            tenant,
            sql: sql.to_owned(),
            parsed,
            budget,
            persist_id,
            resumed: false,
        });
        Ok(self.pending.len() - 1)
    }

    /// Test-only: enqueue a submission whose carried AST deliberately
    /// differs from its SQL text, proving execution uses the admitted
    /// AST and never re-parses.
    #[cfg(test)]
    fn push_raw_submission(&mut self, tenant: usize, sql: &str, parsed: ParsedQuery) {
        self.pending.push(Submission {
            tenant,
            sql: sql.to_owned(),
            parsed,
            budget: None,
            persist_id: None,
            resumed: false,
        });
    }

    /// Number of admitted, not-yet-executed queries.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The shared market (totals, cache stats) — for reporting.
    pub fn market(&self) -> &SharedMarket<B> {
        &self.shared
    }

    /// The shared statistics store.
    pub fn statistics(&self) -> &SharedStatistics {
        &self.stats
    }

    /// Tear down the service, returning the inner backend (e.g. to
    /// export a [`RecordingBackend`](crate::backend::RecordingBackend)
    /// trace after a serving run).
    ///
    /// # Panics
    /// Panics if called while queries are still running (they hold the
    /// shared market). Between [`Self::run_pending`] calls every
    /// tenant backend has been dropped, so this always succeeds.
    pub fn into_backend(self) -> B {
        Arc::try_unwrap(self.shared)
            .ok()
            .expect("tenant backends still hold the shared market")
            .into_backend()
    }

    /// The dollar budget a submission may spend right now: the tighter
    /// of its own budget and what its tenant has left.
    fn effective_budget(&self, job: &Submission) -> Option<f64> {
        let t = &self.tenants[job.tenant];
        let tenant_left = t.budget.map(|b| (b - t.spent).max(0.0));
        match (job.budget, tenant_left) {
            (Some(q), Some(r)) => Some(q.min(r)),
            (Some(q), None) => Some(q),
            (None, r) => r,
        }
    }

    /// Execute every pending query **concurrently** against the shared
    /// marketplace and return their reports in submission order.
    ///
    /// Machine-side work runs in parallel on real OS threads; shared
    /// state is only written at barriers and marketplace steps, in
    /// policy order, so results are deterministic (module docs).
    /// Budgets are fixed at batch start, so two same-tenant queries in
    /// one batch can jointly overshoot a tenant budget by at most one
    /// round each — the budget is re-checked before every subsequent
    /// batch.
    pub fn run_pending(&mut self) -> Vec<Result<QueryReport>> {
        let jobs = std::mem::take(&mut self.pending);
        if jobs.is_empty() {
            return Vec::new();
        }
        // Batch boundary for the shared cache's eviction bound.
        self.shared.begin_batch();
        let snapshot = self.stats.snapshot();
        let budgets: Vec<Option<f64>> = jobs.iter().map(|j| self.effective_budget(j)).collect();
        let policy = self.policy;

        enum TaskState {
            /// Admitted; thread not yet started (fairness caps).
            Queued,
            /// Thread parked, waiting for this resume.
            Runnable(Resume),
            /// Resumed; its barrier event has not been collected yet.
            Running,
            /// Parked on a posted round with a marketplace deadline.
            Waiting {
                deadline: f64,
            },
            Finished,
        }
        struct TaskCtl {
            resume_tx: Option<Sender<Resume>>,
            state: TaskState,
            /// Market-side meter id; assigned when the thread starts.
            market_query: Option<usize>,
            rounds: u64,
            rounds_shared: u64,
            queue_wait_secs: f64,
            /// Shared-market ids committed for the query's staged
            /// posts, delivered with its next resume.
            pending_groups: Vec<HitGroupId>,
            /// Barrier index at which the thread was admitted.
            admitted_round: u64,
            /// Set when a round carried an invalid deadline: the round
            /// was refused and this error replaces the query's result.
            poisoned: Option<QurkError>,
            done: Option<Box<DoneMsg>>,
        }

        let (event_tx, event_rx) = channel::<SchedulerEvent>();

        // `tasks` (and its resume senders) must live *inside* the
        // scope: if the scheduler panics, dropping the senders is what
        // unparks the query threads so the scope's implicit join can
        // finish instead of deadlocking.
        let mut tasks = std::thread::scope(|scope| {
            let mut tasks: Vec<TaskCtl> = jobs
                .iter()
                .map(|_| TaskCtl {
                    resume_tx: None,
                    state: TaskState::Queued,
                    market_query: None,
                    rounds: 0,
                    rounds_shared: 0,
                    queue_wait_secs: 0.0,
                    pending_groups: Vec::new(),
                    admitted_round: 0,
                    poisoned: None,
                    done: None,
                })
                .collect();
            let mut active_per_tenant = vec![0usize; self.tenants.len()];
            let mut admitted_per_tenant = vec![0usize; self.tenants.len()];
            let mut total_active = 0usize;
            let mut barrier_no: u64 = 0;
            let mut finished = 0usize;

            while finished < tasks.len() {
                // ---- admission: start queued threads as the fairness
                // caps allow, highest priority first; within a
                // priority, round-robin interleaves tenants by how
                // many queries each has had admitted this batch.
                loop {
                    if let Some(cap) = policy.max_active {
                        if total_active >= cap.max(1) {
                            break;
                        }
                    }
                    let per_tenant_cap = policy.max_per_tenant.map(|c| c.max(1));
                    let next = jobs
                        .iter()
                        .enumerate()
                        .filter(|&(i, job)| {
                            matches!(tasks[i].state, TaskState::Queued)
                                && per_tenant_cap
                                    .is_none_or(|cap| active_per_tenant[job.tenant] < cap)
                        })
                        .min_by_key(|&(i, job)| {
                            let rr = match policy.order {
                                PollOrder::Submission => 0,
                                PollOrder::RoundRobin => admitted_per_tenant[job.tenant],
                            };
                            (Reverse(self.tenants[job.tenant].priority), rr, i)
                        })
                        .map(|(i, _)| i);
                    let Some(i) = next else { break };
                    let job = &jobs[i];
                    let market_query = self.shared.register_query();
                    let (resume_tx, resume_rx) = channel::<Resume>();
                    let shared = Arc::clone(&self.shared);
                    let catalog = self.catalog;
                    let config = self.config.clone();
                    let seed_stats = snapshot.clone();
                    let budget = budgets[i];
                    let sql = job.sql.clone();
                    let parsed = job.parsed.clone();
                    let tx = event_tx.clone();
                    scope.spawn(move || {
                        // Rendezvous: do nothing until the scheduler
                        // says so.
                        if resume_rx.recv().is_err() {
                            return; // scheduler vanished before start
                        }
                        let backend =
                            TenantBackend::new(shared, market_query, i, tx.clone(), resume_rx);
                        let msg = catch_unwind(AssertUnwindSafe(|| {
                            let exec_config = config.clone();
                            let mut session = Session::builder()
                                .catalog(catalog)
                                .backend(backend)
                                .config(config)
                                .statistics(seed_stats.clone())
                                .build();
                            // Execute the AST admission analyzed — the
                            // SQL text is only for diagnostics.
                            let result =
                                session.execute_parsed(&sql, &parsed, &exec_config, budget);
                            let stats_delta = session.statistics().diff(&seed_stats);
                            DoneMsg {
                                result,
                                stats_delta,
                            }
                        }))
                        .unwrap_or_else(|_| DoneMsg {
                            result: Err(QurkError::Other("query thread panicked".to_owned())),
                            stats_delta: StatisticsStore::new(),
                        });
                        let _ = tx.send(SchedulerEvent::Done {
                            query: i,
                            msg: Box::new(msg),
                        });
                    });
                    tasks[i].resume_tx = Some(resume_tx);
                    tasks[i].market_query = Some(market_query);
                    tasks[i].admitted_round = barrier_no;
                    tasks[i].state = TaskState::Runnable(Resume::Start);
                    active_per_tenant[job.tenant] += 1;
                    admitted_per_tenant[job.tenant] += 1;
                    total_active += 1;
                }

                // ---- parallel machine phase: resume every runnable
                // thread at once and collect one event from each.
                let mut resumed = 0usize;
                for task in tasks.iter_mut() {
                    if !matches!(task.state, TaskState::Runnable(_)) {
                        continue;
                    }
                    let resume = match std::mem::replace(&mut task.state, TaskState::Running) {
                        TaskState::Runnable(r) => r,
                        _ => unreachable!("guarded by the matches! above"),
                    };
                    // A failed send means the thread already finished;
                    // its Done event is queued and collected below.
                    let _ = task
                        .resume_tx
                        .as_ref()
                        .expect("runnable tasks have started threads")
                        .send(resume);
                    resumed += 1;
                }
                if resumed > 0 {
                    let mut events = Vec::with_capacity(resumed);
                    let mut dead = false;
                    for _ in 0..resumed {
                        match event_rx.recv() {
                            Ok(ev) => events.push(ev),
                            Err(_) => {
                                // All threads gone without their
                                // events: every remaining task is dead.
                                dead = true;
                                break;
                            }
                        }
                    }
                    barrier_no += 1;
                    // The barrier: process events in policy order —
                    // priority first, then submission order — so every
                    // shared-state write below is deterministic no
                    // matter how the threads interleaved.
                    events.sort_by_key(|ev| {
                        let q = match ev {
                            SchedulerEvent::NeedCrowd { query, .. } => *query,
                            SchedulerEvent::Done { query, .. } => *query,
                        };
                        (Reverse(self.tenants[jobs[q].tenant].priority), q)
                    });
                    // Pass 1: commit staged posts to the shared market
                    // and journal round heartbeats. All posts land
                    // before any completion check, so same-barrier
                    // spec sharing is order-stable.
                    for ev in &mut events {
                        let SchedulerEvent::NeedCrowd {
                            query,
                            limit_secs,
                            posts,
                        } = ev
                        else {
                            continue;
                        };
                        let q = *query;
                        if tasks[q].poisoned.is_some() {
                            continue;
                        }
                        if !(limit_secs.is_finite() && *limit_secs >= 0.0) {
                            // Refuse the round: an infinite deadline
                            // would run the simulation forever, a NaN
                            // made resume order nondeterministic. The
                            // posts are never committed and the query
                            // fails with a typed error.
                            tasks[q].poisoned = Some(QurkError::InvalidDeadline {
                                limit_secs: *limit_secs,
                            });
                            continue;
                        }
                        let mq = tasks[q]
                            .market_query
                            .expect("running tasks have market ids");
                        for post in posts.drain(..) {
                            let g = self.shared.post(mq, post.specs, post.assignments);
                            tasks[q].pending_groups.push(g);
                        }
                        tasks[q].rounds += 1;
                        // Journal consumed rounds as they happen so a
                        // crash mid-query leaves an accurate
                        // checkpoint (its paid work is already in the
                        // cache records).
                        if let (Some(store), Some(id)) = (&self.store, jobs[q].persist_id) {
                            store.append_rounds(id, tasks[q].rounds);
                        }
                    }
                    // Pass 2: classify, in the same order.
                    for ev in events {
                        match ev {
                            SchedulerEvent::NeedCrowd {
                                query, limit_secs, ..
                            } => {
                                if tasks[query].poisoned.is_some() {
                                    tasks[query].state = TaskState::Runnable(Resume::Round {
                                        outcome: RunOutcome::TimedOut,
                                        groups: Vec::new(),
                                    });
                                    continue;
                                }
                                let mq = tasks[query]
                                    .market_query
                                    .expect("running tasks have market ids");
                                if self.shared.query_outstanding(mq) == 0 {
                                    // Fully cached/complete round:
                                    // runnable again without a
                                    // marketplace step. Fold on the
                                    // scheduler thread so the journal
                                    // never sees thread-timing order.
                                    self.shared.fold_completed(mq);
                                    tasks[query].state = TaskState::Runnable(Resume::Round {
                                        outcome: RunOutcome::Completed,
                                        groups: std::mem::take(&mut tasks[query].pending_groups),
                                    });
                                } else {
                                    tasks[query].state = TaskState::Waiting {
                                        deadline: self.shared.now().secs() + limit_secs,
                                    };
                                }
                            }
                            SchedulerEvent::Done { query, msg } => {
                                tasks[query].done = Some(msg);
                                tasks[query].state = TaskState::Finished;
                                finished += 1;
                                total_active -= 1;
                                active_per_tenant[jobs[query].tenant] -= 1;
                            }
                        }
                    }
                    if dead {
                        break;
                    }
                    continue;
                }

                // ---- marketplace phase: everyone is parked on a
                // round. Run the shared clock toward the nearest
                // deadlines, stopping at the first resolution.
                let mut waiting: Vec<(f64, usize)> = tasks
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| match t.state {
                        TaskState::Waiting { deadline } => Some((deadline, i)),
                        _ => None,
                    })
                    .collect();
                if waiting.is_empty() {
                    break; // defensive: nothing runnable, nothing waiting
                }
                // total_cmp: deadlines are validated finite at the
                // barrier, but a total order keeps resume order
                // well-defined no matter what.
                waiting.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                let shared_round = waiting.len() >= 2;
                let mut stages: Vec<f64> = waiting.iter().map(|&(d, _)| d).collect();
                stages.dedup();
                for stage in stages {
                    let dt = stage - self.shared.now().secs();
                    if dt > 0.0 {
                        let _ = self.shared.run(dt);
                    }
                    let now = self.shared.now().secs();
                    let mut resolved_any = false;
                    for &(deadline, i) in &waiting {
                        if !matches!(tasks[i].state, TaskState::Waiting { .. }) {
                            continue;
                        }
                        let mq = tasks[i]
                            .market_query
                            .expect("waiting tasks have market ids");
                        let outstanding = self.shared.query_outstanding(mq);
                        let outcome = if outstanding == 0 {
                            Some(RunOutcome::Completed)
                        } else if now + DEADLINE_EPS >= deadline {
                            Some(RunOutcome::TimedOut)
                        } else {
                            None
                        };
                        let Some(outcome) = outcome else { continue };
                        // Fold whatever completed into the shared
                        // cache *here*, in resolution order — on a
                        // timeout the query may still read its
                        // finished groups, and those folds (journal
                        // appends included) must not race other
                        // threads in the next machine phase.
                        if outcome == RunOutcome::Completed {
                            let completion = self.shared.completion_time(mq);
                            tasks[i].queue_wait_secs += (now - completion).max(0.0);
                        } else {
                            self.shared.fold_completed(mq);
                        }
                        if shared_round {
                            tasks[i].rounds_shared += 1;
                        }
                        tasks[i].state = TaskState::Runnable(Resume::Round {
                            outcome,
                            groups: std::mem::take(&mut tasks[i].pending_groups),
                        });
                        resolved_any = true;
                    }
                    if resolved_any {
                        break;
                    }
                }
            }
            // Wake any still-parked thread (only on abnormal exits) so
            // the scope's implicit join cannot deadlock.
            for task in &mut tasks {
                task.resume_tx = None;
            }
            tasks
        });

        // ---- collect, in submission order: commit learning, attribute
        // spend, attach service stats.
        let mut out = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            let task = &mut tasks[i];
            let msg = task.done.take();
            let spend = task
                .market_query
                .map_or(0.0, |mq| self.shared.query_spend(mq));
            self.tenants[job.tenant].spent += spend;
            let result = match msg {
                Some(msg) => {
                    self.stats.commit(&msg.stats_delta);
                    if let Some(store) = &self.store {
                        store.append_stats_delta(&msg.stats_delta);
                    }
                    // A refused round (invalid deadline) overrides the
                    // thread's own error with the typed cause.
                    let base = match task.poisoned.take() {
                        Some(e) => Err(e),
                        None => msg.result,
                    };
                    base.map(|mut report| {
                        report.service = Some(ServiceStats {
                            tenant: self.tenants[job.tenant].name.clone(),
                            queue_wait_secs: task.queue_wait_secs,
                            rounds: task.rounds,
                            rounds_shared: task.rounds_shared,
                            shared_cache_hits: task
                                .market_query
                                .map_or(0, |mq| self.shared.query_cached_hits(mq)),
                            saved_dollars: task
                                .market_query
                                .map_or(0.0, |mq| self.shared.query_saved(mq)),
                            admitted_round: task.admitted_round,
                            resumed: job.resumed,
                        });
                        report
                    })
                }
                None => Err(QurkError::Other(
                    "query thread terminated without a result".to_owned(),
                )),
            };
            if result.is_err() {
                // A failed query abandons its in-flight rounds: drop
                // its dedup slots so later identical specs re-post
                // instead of piggybacking on work nobody is driving.
                if let Some(mq) = task.market_query {
                    self.shared.release_query(mq);
                }
            }
            if let (Some(store), Some(id)) = (&self.store, job.persist_id) {
                // The query resolved (either way) and its result was
                // delivered: retire the checkpoint so a restart does
                // not re-run it, and persist the tenant's new spend.
                store.append_query_done(id);
                let t = &self.tenants[job.tenant];
                store.append_tenant(&t.name, t.budget, t.spent);
            }
            out.push(result);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Relation, Schema, Value, ValueType};
    use qurk_crowd::{CrowdConfig, GroundTruth, Marketplace};

    /// The query thread must execute the AST the admission gate
    /// analyzed, never a re-parse of the SQL text. The submission
    /// below carries SQL naming a table that does not exist — if
    /// execution re-parsed, planning would fail with UnknownTable.
    #[test]
    fn execution_uses_the_admitted_ast_not_a_reparse() {
        let mut catalog = Catalog::new();
        let mut rel = Relation::new(Schema::new(&[("id", ValueType::Int)]));
        for i in 0..4 {
            rel.push(vec![Value::Int(i)]).unwrap();
        }
        catalog.register_table("nums", rel);
        let market = Marketplace::new(&CrowdConfig::default().with_seed(1), GroundTruth::new());
        let mut svc = QueryService::new(&catalog, market);
        svc.register_tenant("t", None);
        let parsed = parse_query("SELECT n.id FROM nums AS n").unwrap();
        svc.push_raw_submission(0, "SELECT x.id FROM nosuch AS x", parsed);
        let report = svc
            .run_pending()
            .pop()
            .unwrap()
            .expect("the admitted AST plans and executes");
        assert_eq!(report.relation.len(), 4);
        assert_eq!(report.hits_posted, 0);
    }
}
