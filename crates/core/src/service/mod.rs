//! Multi-tenant query service: concurrent sessions over one shared
//! marketplace clock.
//!
//! Standalone [`Session`](crate::session::Session)s each own a
//! backend, so two users' queries run against *separate* simulated
//! marketplaces — separate clocks, separate caches, double pay for
//! identical work. This module multiplexes many queries, from many
//! tenants, onto **one** marketplace:
//!
//! ```text
//!   tenant A ──┐                              ┌────────────────────┐
//!   tenant B ──┼─ submit ─► QueryService ───► │ deterministic      │
//!   tenant C ──┘  (admission: lint gate,      │ cooperative        │
//!                  per-tenant budgets)        │ scheduler          │
//!                                             └───────┬────────────┘
//!                       one thread per query,         │ one
//!                       resumed one at a time         ▼ marketplace step
//!                  ┌──────────────┐  post   ┌────────────────────┐
//!                  │ TenantBackend │ ──────► │ SharedMarket       │
//!                  │ (yields on    │ ◄────── │ (CachingBackend:   │
//!                  │  `run`)       │ results │  cross-tenant      │
//!                  └──────────────┘          │  dedup, one clock) │
//!                                            └────────────────────┘
//! ```
//!
//! * [`scheduler`] — [`QueryService`](scheduler::QueryService): admission,
//!   tenant budgets, and the rendezvous scheduler that interleaves
//!   query rounds deterministically (N concurrent queries produce
//!   byte-identical results to running them sequentially).
//! * [`tenant`] — [`SharedMarket`](tenant::SharedMarket) (the one
//!   mutex-guarded backend + per-query meters) and
//!   [`TenantBackend`](tenant::TenantBackend) (a query's yielding
//!   handle on it).
//! * [`report`] — [`ServiceStats`](report::ServiceStats), the
//!   multi-tenancy accounting attached to each
//!   [`QueryReport`](crate::session::QueryReport).
//! * [`protocol`] — the length-prefixed text wire protocol spoken by
//!   the `qurk-serve` binary.
//!
//! See `docs/service.md` for the full design.

pub mod protocol;
pub mod report;
pub mod scheduler;
pub mod tenant;

pub use protocol::Request;
pub use report::ServiceStats;
pub use scheduler::QueryService;
pub use tenant::{SharedMarket, TenantBackend};
