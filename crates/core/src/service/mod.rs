//! Multi-tenant query service: concurrent sessions over one shared
//! marketplace clock.
//!
//! Standalone [`Session`](crate::session::Session)s each own a
//! backend, so two users' queries run against *separate* simulated
//! marketplaces — separate clocks, separate caches, double pay for
//! identical work. This module multiplexes many queries, from many
//! tenants, onto **one** marketplace:
//!
//! ```text
//!   tenant A ──┐                              ┌────────────────────┐
//!   tenant B ──┼─ submit ─► QueryService ───► │ deterministic      │
//!   tenant C ──┘  (admission: lint gate,      │ barrier scheduler  │
//!                  budgets, fairness policy)  │ (commits in policy │
//!                                             │  order)            │
//!                                             └───────┬────────────┘
//!             machine phase: ALL runnable            │ marketplace
//!             query threads run in PARALLEL,         ▼ phase: one
//!             then barrier on their events             shared clock
//!                  ┌──────────────┐  stage   ┌────────────────────┐
//!                  │ TenantBackend │ ──────► │ SharedMarket       │
//!                  │ (stages posts,│ ◄────── │ (CachingBackend:   │
//!                  │  yields on    │ results │  cross-tenant      │
//!                  │  `run`)       │         │  dedup, LRU bound, │
//!                  └──────────────┘          │  one clock)        │
//!                                            └────────────────────┘
//! ```
//!
//! * [`scheduler`] — [`QueryService`](scheduler::QueryService): admission,
//!   tenant budgets, fairness ([`SchedulePolicy`](scheduler::SchedulePolicy)),
//!   and the barrier scheduler: between yield points all runnable
//!   query threads execute concurrently (machine-side work genuinely
//!   overlaps on multi-core hosts); shared-state writes happen only at
//!   barriers, in policy order, so N concurrent queries still produce
//!   byte-identical results to running them sequentially.
//! * [`tenant`] — [`SharedMarket`](tenant::SharedMarket) (the one
//!   mutex-guarded backend + per-query meters) and
//!   [`TenantBackend`](tenant::TenantBackend) (a query's yielding
//!   handle on it).
//! * [`report`] — [`ServiceStats`](report::ServiceStats), the
//!   multi-tenancy accounting attached to each
//!   [`QueryReport`](crate::session::QueryReport).
//! * [`protocol`] — the length-prefixed text wire protocol spoken by
//!   the `qurk-serve` binary.
//!
//! See `docs/service.md` for the full design.

pub mod protocol;
pub mod report;
pub mod scheduler;
pub mod tenant;

pub use protocol::Request;
pub use report::ServiceStats;
pub use scheduler::{PollOrder, QueryService, SchedulePolicy};
pub use tenant::{SharedMarket, StagedPost, TenantBackend};
